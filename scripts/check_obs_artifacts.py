#!/usr/bin/env python
"""Validate the observability artifacts a CLI run produced.

CI runs the d695 pipeline with ``--trace``/``--report`` and then this
script against the outputs: it asserts the trace is structurally valid
Chrome trace-event JSON carrying spans from all four pipeline stages
plus at least one worker lane, and that the report matches the
``run-report`` schema with internally consistent numbers.

It also validates the hot-path benchmark artifact
(``scripts/bench_hotpath.py`` output): schema, internal consistency of
the latency numbers, and -- crucially -- that the fast and scalar
stacks produced identical plans, without which the speedups would
compare apples to oranges.

Bench artifacts are dispatched by their ``kind`` field:
``bench-hotpath`` (``scripts/bench_hotpath.py``), ``bench-search``
(``scripts/bench_search.py``, the architecture-search backend
throughput/quality record on the many-core synthetic workload),
``bench-serve`` (``scripts/loadtest_serve.py``, the planning-service
load test with its telemetry-overhead gate), and ``bench-packing``
(``scripts/bench_packing.py``, fixed-width partitions vs the
flexible-width rectangle packer across the benchmark designs, gated
on at least one design never being worse packed).

Usage::

    python scripts/check_obs_artifacts.py TRACE.json REPORT.json
    python scripts/check_obs_artifacts.py --bench BENCH_hotpath.json
    python scripts/check_obs_artifacts.py --bench BENCH_search.json
    python scripts/check_obs_artifacts.py --bench BENCH_serve.json
    python scripts/check_obs_artifacts.py --bench BENCH_packing.json

Exit status 0 when the artifacts check out; 1 with a message on
stderr otherwise.  ``check_trace`` / ``check_report`` /
``check_bench_hotpath`` / ``check_bench_search`` are importable for
tests.
"""

from __future__ import annotations

import json
import sys
from typing import Any

STAGES = ("wrapper", "decompressor", "architecture", "schedule")


class ArtifactError(ValueError):
    """A structural problem in a trace or report artifact."""


def _fail(message: str) -> None:
    raise ArtifactError(message)


def check_trace(doc: Any, *, expect_workers: bool = True) -> dict[str, int]:
    """Validate Chrome trace-event JSON; returns summary counts."""
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        _fail("trace: top level must be an object with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        _fail("trace: 'traceEvents' must be a non-empty list")
    complete = [e for e in events if e.get("ph") == "X"]
    for event in events:
        ph = event.get("ph")
        if ph not in ("M", "X", "i"):
            _fail(f"trace: unexpected event phase {ph!r}")
        if ph == "M":
            continue
        for key in ("name", "ts", "pid", "tid"):
            if key not in event:
                _fail(f"trace: {ph!r} event missing {key!r}")
        if event["ts"] < 0:
            _fail("trace: negative timestamp (normalization broken)")
        if ph == "X" and event.get("dur", -1) < 0:
            _fail("trace: complete event without a non-negative 'dur'")
        if "path" not in event.get("args", {}):
            _fail("trace: span event missing args.path")
    names = {e["name"] for e in complete}
    for stage in STAGES:
        if stage not in names:
            _fail(f"trace: no span for pipeline stage {stage!r}")
    pids = {e["pid"] for e in complete}
    if expect_workers and len(pids) < 2:
        _fail("trace: expected worker-process lanes, found a single pid")
    metadata_pids = {e["pid"] for e in events if e.get("ph") == "M"}
    if not pids <= metadata_pids:
        _fail("trace: some pid lacks a process_name metadata record")
    return {"events": len(events), "spans": len(complete), "pids": len(pids)}


def check_report(data: Any) -> dict[str, int]:
    """Validate a run-report JSON document; returns summary counts."""
    if not isinstance(data, dict):
        _fail("report: top level must be an object")
    if data.get("kind") != "run-report":
        _fail(f"report: kind must be 'run-report', got {data.get('kind')!r}")
    if data.get("schema") != 1:
        _fail(f"report: unknown schema {data.get('schema')!r}")
    for key in (
        "soc", "pipeline", "width_budget", "compression", "strategy",
        "test_time", "test_data_volume", "partitions_evaluated",
        "cpu_seconds", "stage_timings", "metrics", "caches",
        "tam_utilization", "event_counts",
    ):
        if key not in data:
            _fail(f"report: missing field {key!r}")
    if data["test_time"] <= 0:
        _fail("report: test_time must be positive")
    stages = [entry["stage"] for entry in data["stage_timings"]]
    if stages != list(STAGES):
        _fail(f"report: stage_timings {stages} != {list(STAGES)}")
    if any(entry["seconds"] < 0 for entry in data["stage_timings"]):
        _fail("report: negative stage timing")
    metrics = data["metrics"]
    for section in ("counters", "gauges", "histograms"):
        if section not in metrics:
            _fail(f"report: metrics missing {section!r}")
    for name, hist in metrics["histograms"].items():
        if len(hist["counts"]) != len(hist["boundaries"]) + 1:
            _fail(f"report: histogram {name!r} counts/boundaries mismatch")
        if sum(hist["counts"]) != hist["count"]:
            _fail(f"report: histogram {name!r} count total mismatch")
    for row in data["tam_utilization"]:
        wasted = (row["total_cycles"] - row["busy_cycles"]) * row["width"]
        if row["wire_cycles_wasted"] != wasted:
            _fail(
                f"report: TAM {row['tam']} wire_cycles_wasted "
                f"{row['wire_cycles_wasted']} != {wasted}"
            )
        if not 0.0 <= row["utilization"] <= 1.0:
            _fail(f"report: TAM {row['tam']} utilization out of [0, 1]")
    if "wrapper_lru" not in data["caches"]:
        _fail("report: caches missing 'wrapper_lru'")
    return {
        "counters": len(metrics["counters"]),
        "tams": len(data["tam_utilization"]),
    }


def check_bench_hotpath(data: Any) -> dict[str, Any]:
    """Validate a ``bench-hotpath`` JSON document; returns a summary.

    Checks the schema envelope, every run's required fields, that the
    recorded speedup equals ``scalar_seconds / fast_seconds``, and that
    both stacks planned identically (``identical`` is recorded by the
    bench runner from the actual plan outputs).
    """
    if not isinstance(data, dict):
        _fail("bench: top level must be an object")
    if data.get("kind") != "bench-hotpath":
        _fail(f"bench: kind must be 'bench-hotpath', got {data.get('kind')!r}")
    if data.get("schema") != 1:
        _fail(f"bench: unknown schema {data.get('schema')!r}")
    for key in ("width_budget", "repeats", "python", "numpy", "runs"):
        if key not in data:
            _fail(f"bench: missing field {key!r}")
    runs = data["runs"]
    if not isinstance(runs, list) or not runs:
        _fail("bench: 'runs' must be a non-empty list")
    speedups: dict[str, float] = {}
    for run in runs:
        design = run.get("design")
        if not isinstance(design, str) or not design:
            _fail("bench: run without a design name")
        for key in (
            "fast_seconds", "scalar_seconds", "speedup", "identical",
            "test_time", "test_data_volume", "tam_widths",
            "kernel_seconds", "stage_seconds",
        ):
            if key not in run:
                _fail(f"bench: run {design!r} missing field {key!r}")
        if run["fast_seconds"] <= 0 or run["scalar_seconds"] <= 0:
            _fail(f"bench: run {design!r} has non-positive latency")
        ratio = run["scalar_seconds"] / run["fast_seconds"]
        if abs(ratio - run["speedup"]) > 0.011 * ratio:
            _fail(
                f"bench: run {design!r} speedup {run['speedup']} "
                f"inconsistent with latencies ({ratio:.2f})"
            )
        if run["identical"] is not True:
            _fail(f"bench: run {design!r} fast/scalar plans differ")
        if run["test_time"] <= 0:
            _fail(f"bench: run {design!r} test_time must be positive")
        for section in ("kernel_seconds", "stage_seconds"):
            timings = run[section]
            if not isinstance(timings, dict):
                _fail(f"bench: run {design!r} {section} must be an object")
            for name, value in timings.items():
                if not isinstance(value, (int, float)) or value < 0:
                    _fail(
                        f"bench: run {design!r} {section}[{name!r}] "
                        "must be a non-negative number"
                    )
        speedups[design] = run["speedup"]
    return {"runs": len(runs), "speedups": speedups}


SCHEMA_KIND_SEARCH = "bench-search"

#: Required backends in a ``bench-search`` document -- the metaheuristic
#: pair the search layer was built for, plus the greedy baseline.
SEARCH_BACKENDS = ("greedy", "anneal", "evolutionary")


def check_bench_search(data: Any) -> dict[str, Any]:
    """Validate a ``bench-search`` JSON document; returns a summary.

    Checks the schema envelope, that the greedy/anneal/evolutionary
    backends are all present, and every run's internal consistency:
    positive latency, ``evals_per_sec`` matching
    ``evaluations / seconds``, a feasible width vector, and a positive
    best makespan.
    """
    if not isinstance(data, dict):
        _fail("bench: top level must be an object")
    if data.get("kind") != SCHEMA_KIND_SEARCH:
        _fail(f"bench: kind must be 'bench-search', got {data.get('kind')!r}")
    if data.get("schema") != 1:
        _fail(f"bench: unknown schema {data.get('schema')!r}")
    for key in (
        "design", "width_budget", "seed", "cores", "analysis_seconds",
        "python", "numpy", "runs",
    ):
        if key not in data:
            _fail(f"bench: missing field {key!r}")
    runs = data["runs"]
    if not isinstance(runs, list) or not runs:
        _fail("bench: 'runs' must be a non-empty list")
    width_budget = data["width_budget"]
    seen: dict[str, int] = {}
    for run in runs:
        backend = run.get("backend")
        if not isinstance(backend, str) or not backend:
            _fail("bench: run without a backend name")
        for key in (
            "options", "seconds", "evaluations", "evals_per_sec",
            "best_makespan", "tam_widths",
        ):
            if key not in run:
                _fail(f"bench: run {backend!r} missing field {key!r}")
        if not isinstance(run["options"], dict):
            _fail(f"bench: run {backend!r} options must be an object")
        if run["seconds"] <= 0:
            _fail(f"bench: run {backend!r} has non-positive latency")
        if not isinstance(run["evaluations"], int) or run["evaluations"] < 1:
            _fail(f"bench: run {backend!r} needs a positive evaluation count")
        rate = run["evaluations"] / run["seconds"]
        if abs(rate - run["evals_per_sec"]) > 0.02 * rate:
            _fail(
                f"bench: run {backend!r} evals_per_sec "
                f"{run['evals_per_sec']} inconsistent with "
                f"{run['evaluations']} evals / {run['seconds']}s"
            )
        if run["best_makespan"] <= 0:
            _fail(f"bench: run {backend!r} best_makespan must be positive")
        widths = run["tam_widths"]
        if not isinstance(widths, list) or not widths:
            _fail(f"bench: run {backend!r} tam_widths must be non-empty")
        if any(not isinstance(w, int) or w < 1 for w in widths):
            _fail(f"bench: run {backend!r} has a non-positive TAM width")
        if sum(widths) > width_budget:
            _fail(
                f"bench: run {backend!r} widths {widths} exceed the "
                f"budget {width_budget}"
            )
        seen[backend] = run["best_makespan"]
    for backend in SEARCH_BACKENDS:
        if backend not in seen:
            _fail(f"bench: no run for required backend {backend!r}")
    return {"runs": len(runs), "best_makespans": seen}


SCHEMA_KIND_PACKING = "bench-packing"

#: Designs a ``bench-packing`` document must cover: the paper's six
#: benchmark SOCs.  At least one synthetic ``synth<N>`` design is
#: additionally required (the many-core regime).
PACKING_DESIGNS = (
    "d695",
    "d2758",
    "System1",
    "System2",
    "System3",
    "System4",
)


def check_bench_packing(data: Any) -> dict[str, Any]:
    """Validate a ``bench-packing`` JSON document; returns a summary.

    Checks the schema envelope, that every required design appears (the
    six benchmark SOCs plus a synthetic one), each run's internal
    consistency (positive makespans, a verified packed plan,
    utilization in ``(0, 1]``, the recorded ratio matching the two
    makespans), that ``never_worse_designs`` matches the runs -- and
    the headline gate: at least one design is never worse packed than
    fixed at any recorded width.
    """
    if not isinstance(data, dict):
        _fail("bench: top level must be an object")
    if data.get("kind") != SCHEMA_KIND_PACKING:
        _fail(f"bench: kind must be 'bench-packing', got {data.get('kind')!r}")
    if data.get("schema") != 1:
        _fail(f"bench: unknown schema {data.get('schema')!r}")
    for key in (
        "designs", "widths", "python", "numpy", "runs",
        "never_worse_designs",
    ):
        if key not in data:
            _fail(f"bench: missing field {key!r}")
    runs = data["runs"]
    if not isinstance(runs, list) or not runs:
        _fail("bench: 'runs' must be a non-empty list")
    covered = {run.get("design") for run in runs}
    for design in PACKING_DESIGNS:
        if design not in covered:
            _fail(f"bench: no run for required design {design!r}")
    if not any(
        isinstance(d, str) and d.startswith("synth") for d in covered
    ):
        _fail("bench: no synthetic (synth<N>) design covered")
    worst: dict[str, float] = {}
    for run in runs:
        design = run.get("design")
        if not isinstance(design, str) or not design:
            _fail("bench: run without a design name")
        label = f"{design}@W={run.get('width')}"
        for key in ("width", "cores", "fixed", "packed", "ratio"):
            if key not in run:
                _fail(f"bench: run {label!r} missing field {key!r}")
        fixed, packed = run["fixed"], run["packed"]
        for key in ("makespan", "strategy", "partitions_evaluated", "seconds"):
            if key not in fixed:
                _fail(f"bench: run {label!r} fixed missing {key!r}")
        for key in (
            "makespan", "heuristic", "placements_evaluated",
            "utilization", "seconds", "verified",
        ):
            if key not in packed:
                _fail(f"bench: run {label!r} packed missing {key!r}")
        if fixed["makespan"] <= 0 or packed["makespan"] <= 0:
            _fail(f"bench: run {label!r} has a non-positive makespan")
        if packed["verified"] is not True:
            _fail(f"bench: run {label!r} packed plan is not verified")
        if not 0.0 < packed["utilization"] <= 1.0:
            _fail(f"bench: run {label!r} utilization out of (0, 1]")
        ratio = packed["makespan"] / fixed["makespan"]
        if abs(ratio - run["ratio"]) > 0.001 * ratio + 1e-9:
            _fail(
                f"bench: run {label!r} ratio {run['ratio']} inconsistent "
                f"with the makespans ({ratio:.4f})"
            )
        worst[design] = max(worst.get(design, 0.0), ratio)
    never_worse = sorted(d for d, r in worst.items() if r <= 1.0)
    if sorted(data["never_worse_designs"]) != never_worse:
        _fail(
            f"bench: never_worse_designs {data['never_worse_designs']} "
            f"inconsistent with the runs ({never_worse})"
        )
    if not never_worse:
        _fail(
            "bench: packing gate failed: no design is never worse packed "
            "than fixed"
        )
    return {
        "runs": len(runs),
        "designs": len(covered),
        "never_worse": never_worse,
        "worst_ratio": round(max(worst.values()), 3),
    }


SCHEMA_KIND_SERVE = "bench-serve"

#: Telemetry-on throughput must stay at least this fraction of the
#: telemetry-off run for the artifact to be accepted: the "within
#: noise" overhead gate of the live-telemetry layer.
SERVE_OVERHEAD_FLOOR = 0.70


def check_bench_serve(data: Any) -> dict[str, Any]:
    """Validate a ``bench-serve`` JSON document; returns a summary.

    Checks the schema envelope, that exactly one telemetry-on and one
    telemetry-off pass are present, each pass's internal consistency
    (request accounting, server-counter conservation, monotone latency
    quantiles, throughput arithmetic), that the workload really was
    duplicate-heavy, and the overhead gate: telemetry-on sustained
    throughput no worse than ``SERVE_OVERHEAD_FLOOR`` of telemetry-off.
    """
    if not isinstance(data, dict):
        _fail("bench: top level must be an object")
    if data.get("kind") != SCHEMA_KIND_SERVE:
        _fail(f"bench: kind must be 'bench-serve', got {data.get('kind')!r}")
    if data.get("schema") != 1:
        _fail(f"bench: unknown schema {data.get('schema')!r}")
    for key in (
        "clients", "requests_per_client", "workers", "workload",
        "python", "passes", "throughput_ratio",
    ):
        if key not in data:
            _fail(f"bench: missing field {key!r}")
    if not isinstance(data["clients"], int) or data["clients"] < 1:
        _fail("bench: 'clients' must be a positive integer")
    workload = data["workload"]
    if not isinstance(workload, list) or not workload:
        _fail("bench: 'workload' must be a non-empty list")
    passes = data["passes"]
    if not isinstance(passes, list) or len(passes) != 2:
        _fail("bench: exactly two passes required (telemetry off and on)")
    by_telemetry: dict[bool, dict] = {}
    for record in passes:
        label = "on" if record.get("telemetry") else "off"
        for key in (
            "telemetry", "wall_seconds", "requests", "completed",
            "deduped", "rejected", "failed", "submit_attempts",
            "requests_per_s", "plans_per_s", "latency_s", "server",
        ):
            if key not in record:
                _fail(f"bench: pass {label!r} missing field {key!r}")
        if record["telemetry"] in by_telemetry:
            _fail(f"bench: duplicate telemetry={record['telemetry']} pass")
        by_telemetry[bool(record["telemetry"])] = record
        expected = data["clients"] * data["requests_per_client"]
        if record["requests"] != expected:
            _fail(
                f"bench: pass {label!r} requests {record['requests']} != "
                f"clients x requests_per_client ({expected})"
            )
        settled = (
            record["completed"] + record["rejected"] + record["failed"]
        )
        if settled != record["requests"]:
            _fail(
                f"bench: pass {label!r} accounting broken: "
                f"{settled} settled != {record['requests']} requests"
            )
        if record["completed"] < 1:
            _fail(f"bench: pass {label!r} completed no requests")
        if record["wall_seconds"] <= 0:
            _fail(f"bench: pass {label!r} has non-positive wall clock")
        rate = record["requests"] / record["wall_seconds"]
        if abs(rate - record["requests_per_s"]) > 0.02 * rate:
            _fail(
                f"bench: pass {label!r} requests_per_s "
                f"{record['requests_per_s']} inconsistent with "
                f"{record['requests']} reqs / {record['wall_seconds']}s"
            )
        counters = record["server"].get("counters", {})
        conserved = (
            counters.get("jobs_submitted", 0)
            + counters.get("jobs_deduped", 0)
            + counters.get("jobs_rejected", 0)
        )
        if conserved != record["submit_attempts"]:
            _fail(
                f"bench: pass {label!r} server counters "
                f"({conserved}) do not conserve the "
                f"{record['submit_attempts']} submit attempts"
            )
        latency = record["latency_s"]
        for key in ("mean", "p50", "p95", "p99", "max"):
            if key not in latency:
                _fail(f"bench: pass {label!r} latency missing {key!r}")
            if latency[key] < 0:
                _fail(f"bench: pass {label!r} negative latency {key}")
        if not (
            latency["p50"] <= latency["p95"]
            <= latency["p99"] <= latency["max"]
        ):
            _fail(f"bench: pass {label!r} latency quantiles not monotone")
        if record.get("metrics_consistent") is False:
            _fail(
                f"bench: pass {label!r} exposition diverged from the "
                "authoritative stats counters"
            )
    if set(by_telemetry) != {True, False}:
        _fail("bench: need one telemetry-on and one telemetry-off pass")
    if max(p["deduped"] for p in passes) < 1:
        _fail("bench: workload was not duplicate-heavy (no dedup hits)")
    on, off = by_telemetry[True], by_telemetry[False]
    ratio = on["requests_per_s"] / off["requests_per_s"]
    if abs(ratio - data["throughput_ratio"]) > 0.02 * ratio + 1e-9:
        _fail(
            f"bench: throughput_ratio {data['throughput_ratio']} "
            f"inconsistent with the recorded passes ({ratio:.3f})"
        )
    if ratio < SERVE_OVERHEAD_FLOOR:
        _fail(
            f"bench: telemetry overhead gate failed: on/off throughput "
            f"ratio {ratio:.3f} < {SERVE_OVERHEAD_FLOOR}"
        )
    return {
        "runs": len(passes),
        "ratio": round(ratio, 3),
        "on_rps": on["requests_per_s"],
        "off_rps": off["requests_per_s"],
        "p99_on_ms": round(on["latency_s"]["p99"] * 1000, 1),
    }


#: ``kind`` -> (validator, one-line renderer) for ``--bench`` files.
BENCH_CHECKERS = {
    "bench-hotpath": (
        check_bench_hotpath,
        lambda s: ", ".join(
            f"{design} {speedup:.1f}x"
            for design, speedup in s["speedups"].items()
        ),
    ),
    SCHEMA_KIND_SEARCH: (
        check_bench_search,
        lambda s: ", ".join(
            f"{backend} best {makespan}"
            for backend, makespan in s["best_makespans"].items()
        ),
    ),
    SCHEMA_KIND_SERVE: (
        check_bench_serve,
        lambda s: (
            f"telemetry on {s['on_rps']}/s vs off {s['off_rps']}/s "
            f"(ratio {s['ratio']}, p99 {s['p99_on_ms']}ms)"
        ),
    ),
    SCHEMA_KIND_PACKING: (
        check_bench_packing,
        lambda s: (
            f"{s['designs']} designs, never worse packed: "
            f"{', '.join(s['never_worse'])} "
            f"(worst ratio {s['worst_ratio']})"
        ),
    ),
}


def main(argv: list[str]) -> int:
    if len(argv) == 2 and argv[0] == "--bench":
        try:
            with open(argv[1], "r", encoding="utf-8") as handle:
                doc = json.load(handle)
            kind = doc.get("kind") if isinstance(doc, dict) else None
            if kind not in BENCH_CHECKERS:
                _fail(
                    f"bench: unknown artifact kind {kind!r} (known: "
                    f"{', '.join(sorted(BENCH_CHECKERS))})"
                )
            checker, render = BENCH_CHECKERS[kind]
            summary = checker(doc)
        except (OSError, json.JSONDecodeError, ArtifactError, KeyError) as error:
            print(f"FAIL: {error}", file=sys.stderr)
            return 1
        print(f"OK: {kind} with {summary['runs']} run(s): {render(summary)}")
        return 0
    if len(argv) != 2:
        print(
            "usage: check_obs_artifacts.py TRACE.json REPORT.json\n"
            "       check_obs_artifacts.py --bench BENCH_hotpath.json",
            file=sys.stderr,
        )
        return 2
    trace_path, report_path = argv
    try:
        with open(trace_path, "r", encoding="utf-8") as handle:
            trace_summary = check_trace(json.load(handle))
        with open(report_path, "r", encoding="utf-8") as handle:
            report_summary = check_report(json.load(handle))
    except (OSError, json.JSONDecodeError, ArtifactError, KeyError) as error:
        print(f"FAIL: {error}", file=sys.stderr)
        return 1
    print(
        f"OK: trace has {trace_summary['spans']} spans across "
        f"{trace_summary['pids']} process lanes; report carries "
        f"{report_summary['counters']} counters over "
        f"{report_summary['tams']} TAMs"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
