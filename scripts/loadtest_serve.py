#!/usr/bin/env python
"""Load-test the planning service and record ``BENCH_serve.json``.

Two identical duplicate-heavy passes against a real ``repro-soc serve``
subprocess -- one with live telemetry (the default), one with
``--no-telemetry --no-log`` (the zero-overhead configuration).  Each
pass fires ``--clients`` concurrent clients, every client submitting
``--requests`` plans drawn round-robin from a small (design, width)
pool, so most submissions coalesce onto in-flight jobs and the dedup
window stays hot.  Per pass the harness records the sustained request
throughput, the plan completion rate from the server's own counters,
and the client-observed submit->result latency distribution
(p50/p95/p99).

The telemetry pass also cross-checks the exposition: the
``repro_serve_jobs_submitted_total`` series scraped over the
``metrics`` op must equal the authoritative ``stats`` counter, proving
the mirror cannot drift.

The result is written as versioned JSON so CI can archive it and
``benchmarks/test_bench_serve.py`` can validate the committed copy --
including the overhead gate: telemetry-on throughput must stay within
noise of telemetry-off::

    python scripts/loadtest_serve.py --clients 64 --requests 4 \
        --out benchmarks/results/BENCH_serve.json

``--smoke`` shrinks the load (8 clients x 2 requests) for CI's quick
end-to-end check.  Validation lives in
``scripts/check_obs_artifacts.py`` (``--bench`` dispatches on the
document's ``kind``).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs.expo import parse_openmetrics  # noqa: E402
from repro.pipeline import RunConfig  # noqa: E402
from repro.serve import (  # noqa: E402
    BackpressureError,
    ServiceError,
    connect_with_retry,
)

SCHEMA_KIND = "bench-serve"
SCHEMA_VERSION = 1

READY_DEADLINE_S = 60.0
EXIT_DEADLINE_S = 120.0
RESULT_TIMEOUT_S = 600.0
MAX_SUBMIT_RETRIES = 8

#: The duplicate-heavy submission pool.  Deliberately much smaller than
#: the request count so concurrent clients keep racing the same
#: fingerprints into the dedup window.
WORKLOAD: tuple[tuple[str, int], ...] = (
    ("d695", 8),
    ("d695", 12),
    ("d695", 16),
    ("synth20", 16),
    ("synth20", 24),
    ("synth30", 24),
)


class LoadTestError(RuntimeError):
    pass


def spawn_server(*, telemetry: bool, workers: int) -> tuple[Any, dict]:
    """Start ``repro-soc serve --port 0``; returns (proc, ready dict)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    # No result cache: the workers must execute every unique plan, or
    # the second pass would measure disk reads instead of the service.
    env["REPRO_NO_CACHE"] = "1"
    argv = [
        sys.executable, "-m", "repro.cli", "serve",
        "--port", "0",
        "--jobs", str(workers),
        "--queue-depth", "64",
    ]
    if not telemetry:
        argv += ["--no-telemetry", "--no-log"]
    proc = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
        cwd=REPO,
    )
    deadline = time.monotonic() + READY_DEADLINE_S
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if line.strip():
            ready = json.loads(line)
            if ready.get("event") != "ready":
                raise LoadTestError(f"bad ready line: {ready}")
            return proc, ready
        if proc.poll() is not None:
            raise LoadTestError("server exited before announcing readiness")
    proc.kill()
    raise LoadTestError("server never announced readiness")


def quantile(sorted_values: list[float], q: float) -> float:
    """(n-1)*q positional interpolation over pre-sorted samples."""
    if not sorted_values:
        return 0.0
    rank = (len(sorted_values) - 1) * q
    lo = int(rank)
    hi = min(lo + 1, len(sorted_values) - 1)
    fraction = rank - lo
    return sorted_values[lo] + (sorted_values[hi] - sorted_values[lo]) * fraction


class ClientStats:
    """Thread-safe accumulator shared by all client threads."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.latencies: list[float] = []
        self.completed = 0
        self.deduped = 0
        self.rejected = 0
        self.failed = 0
        self.submit_attempts = 0
        self.errors: list[str] = []


def client_main(
    index: int,
    host: str,
    port: int,
    requests: int,
    workload: tuple[tuple[str, int], ...],
    stats: ClientStats,
    start: threading.Barrier,
) -> None:
    config = RunConfig(compression="none", use_cache=False)
    try:
        with connect_with_retry(host, port) as client:
            start.wait(timeout=60)
            for i in range(requests):
                design, width = workload[(index + i) % len(workload)]
                began = time.perf_counter()
                ticket = None
                for attempt in range(MAX_SUBMIT_RETRIES):
                    with stats.lock:
                        stats.submit_attempts += 1
                    try:
                        ticket = client.submit(design, width, config)
                        break
                    except BackpressureError as error:
                        time.sleep(max(error.retry_after, 0.05))
                if ticket is None:
                    with stats.lock:
                        stats.rejected += 1
                    continue
                try:
                    # Raises with the job's error code on failure; the
                    # return value is the result export itself.
                    client.result(ticket.job_id, timeout_s=RESULT_TIMEOUT_S)
                except ServiceError:
                    ok = False
                else:
                    ok = True
                seconds = time.perf_counter() - began
                with stats.lock:
                    if ok:
                        stats.completed += 1
                        stats.latencies.append(seconds)
                    else:
                        stats.failed += 1
                    if ticket.deduped:
                        stats.deduped += 1
    except Exception as error:  # noqa: BLE001 -- recorded, fails the run
        with stats.lock:
            stats.errors.append(f"client {index}: {error!r}")


def run_pass(
    *,
    telemetry: bool,
    clients: int,
    requests: int,
    workers: int,
    workload: tuple[tuple[str, int], ...],
) -> dict[str, Any]:
    """One full load pass against a fresh server; returns the record."""
    label = "telemetry on" if telemetry else "telemetry off"
    print(f"[{label}] starting server ({workers} workers)...", flush=True)
    proc, ready = spawn_server(telemetry=telemetry, workers=workers)
    host, port = ready["host"], ready["port"]
    stats = ClientStats()
    start = threading.Barrier(clients + 1)
    threads = [
        threading.Thread(
            target=client_main,
            args=(i, host, port, requests, workload, stats, start),
        )
        for i in range(clients)
    ]
    try:
        for thread in threads:
            thread.start()
        start.wait(timeout=60)
        began = time.perf_counter()
        for thread in threads:
            thread.join(timeout=RESULT_TIMEOUT_S)
        wall = time.perf_counter() - began
        if stats.errors:
            raise LoadTestError("; ".join(stats.errors[:3]))
        if any(thread.is_alive() for thread in threads):
            raise LoadTestError("client threads still running at deadline")

        with connect_with_retry(host, port) as probe:
            server_stats = probe.stats()
            metrics_consistent = None
            if telemetry:
                series = parse_openmetrics(probe.metrics())
                metrics_consistent = series.get(
                    "repro_serve_jobs_submitted_total"
                ) == server_stats["counters"].get("jobs_submitted", 0)
                health = probe.health()
                if health["status"] != "ok":
                    raise LoadTestError(
                        f"unhealthy after load: {health['status']}"
                    )
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=EXIT_DEADLINE_S)
        except subprocess.TimeoutExpired:
            proc.kill()

    total = clients * requests
    latencies = sorted(stats.latencies)
    record = {
        "telemetry": telemetry,
        "wall_seconds": round(wall, 4),
        "requests": total,
        "completed": stats.completed,
        "deduped": stats.deduped,
        "rejected": stats.rejected,
        "failed": stats.failed,
        "submit_attempts": stats.submit_attempts,
        "requests_per_s": round(total / wall, 3),
        "plans_per_s": round(
            server_stats["counters"].get("jobs_completed", 0) / wall, 3
        ),
        "latency_s": {
            "mean": round(sum(latencies) / len(latencies), 5)
            if latencies
            else 0.0,
            "p50": round(quantile(latencies, 0.50), 5),
            "p95": round(quantile(latencies, 0.95), 5),
            "p99": round(quantile(latencies, 0.99), 5),
            "max": round(latencies[-1], 5) if latencies else 0.0,
        },
        "server": {
            "counters": dict(server_stats["counters"]),
            "queue_capacity": server_stats["queue_capacity"],
            "workers": server_stats["workers"],
        },
        "metrics_consistent": metrics_consistent,
    }
    print(
        f"[{label}] {record['requests_per_s']}/s sustained, "
        f"p50 {record['latency_s']['p50'] * 1000:.1f}ms, "
        f"p99 {record['latency_s']['p99'] * 1000:.1f}ms, "
        f"{stats.deduped}/{total} deduped",
        flush=True,
    )
    return record


def measure(
    clients: int,
    requests: int,
    workers: int,
    workload: tuple[tuple[str, int], ...] = WORKLOAD,
) -> dict[str, Any]:
    """The full bench document: telemetry-off pass, then -on."""
    off = run_pass(
        telemetry=False,
        clients=clients,
        requests=requests,
        workers=workers,
        workload=workload,
    )
    on = run_pass(
        telemetry=True,
        clients=clients,
        requests=requests,
        workers=workers,
        workload=workload,
    )
    ratio = (
        on["requests_per_s"] / off["requests_per_s"]
        if off["requests_per_s"]
        else 0.0
    )
    return {
        "kind": SCHEMA_KIND,
        "schema": SCHEMA_VERSION,
        "generated_by": "scripts/loadtest_serve.py",
        "clients": clients,
        "requests_per_client": requests,
        "workers": workers,
        "workload": [list(item) for item in workload],
        "python": platform.python_version(),
        "passes": [off, on],
        "throughput_ratio": round(ratio, 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=64)
    parser.add_argument(
        "--requests", type=int, default=4, help="submissions per client"
    )
    parser.add_argument(
        "--jobs", type=int, default=4, help="server worker slots"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI configuration: 8 clients x 2 requests, 2 workers",
    )
    parser.add_argument("--out", default=None, help="artifact path")
    args = parser.parse_args(argv)

    clients, requests, workers = args.clients, args.requests, args.jobs
    if args.smoke:
        clients, requests, workers = 8, 2, 2

    try:
        doc = measure(clients, requests, workers)
    except LoadTestError as error:
        print(f"FAIL: {error}", file=sys.stderr)
        return 1

    text = json.dumps(doc, indent=2, sort_keys=True)
    if args.out:
        Path(args.out).write_text(text + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        print(text)
    print(
        f"throughput ratio (on/off): {doc['throughput_ratio']:.3f}  "
        f"[{doc['passes'][1]['requests_per_s']}/s vs "
        f"{doc['passes'][0]['requests_per_s']}/s]"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
