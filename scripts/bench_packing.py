#!/usr/bin/env python
"""Benchmark flexible-width rectangle packing against fixed partitions.

The ``repro.pack`` backend trades the paper's fixed-width TAM partition
for a 2D strip packing: each core is a width x time rectangle whose
shape the packer may choose, and rectangles time-share the ATE wires.
This script measures what that buys on every benchmark design: per
design/width it plans the same lookup tables both ways -- the
architecture-search baseline (``repro.search``, strategy auto) and the
rectangle packer (``repro.pack``, heuristic auto) -- and records both
makespans, the packed plan's utilization, and the packed-over-fixed
ratio.  Every packed plan is independently re-checked with
:func:`repro.verify.verify_packed` before it may enter the document.

The result is written as versioned JSON (``BENCH_packing.json``) so CI
can record it as an artifact and ``benchmarks/test_bench_packing.py``
can validate the committed copy::

    python scripts/bench_packing.py --out benchmarks/results/BENCH_packing.json

Validation lives in ``scripts/check_obs_artifacts.py`` (``--bench``
dispatches on the document's ``kind``); the headline gate is that at
least one design is *never worse* packed than fixed at any width.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any

SCHEMA_KIND = "bench-packing"
SCHEMA_VERSION = 1

#: The benchmark sweep: the paper's six designs plus the many-core
#: synthetic workload the search layer targets.
DEFAULT_DESIGNS = (
    "d695",
    "d2758",
    "System1",
    "System2",
    "System3",
    "System4",
    "synth120",
)

DEFAULT_WIDTHS = (16, 32)


def build_tables(design: str, width: int):
    """(core names, lookup tables, analysis seconds) for one design."""
    from repro.pipeline.config import RunConfig
    from repro.pipeline.events import EventRecorder
    from repro.pipeline.stages import (
        DecompressorStage,
        PlanContext,
        WrapperStage,
    )
    from repro.soc.industrial import load_design

    soc = load_design(design)
    ctx = PlanContext(soc, width, RunConfig(use_cache=False), EventRecorder())
    began = time.perf_counter()
    WrapperStage().run(ctx)
    DecompressorStage().run(ctx)
    seconds = time.perf_counter() - began
    assert ctx.tables is not None
    return ctx.names, ctx.tables, seconds


def bench_pair(
    design: str, names: list[str], tables: Any, width: int
) -> dict[str, Any]:
    """Fixed-vs-packed record for one design at one width budget."""
    from repro.pack import core_rectangles, pack_rectangles
    from repro.search import run_search
    from repro.verify import verify_packed

    began = time.perf_counter()
    search = run_search(names, width, tables.time_of)
    fixed_seconds = time.perf_counter() - began

    began = time.perf_counter()
    families = core_rectangles(names, tables.time_of, width)
    plan = pack_rectangles(design, families, width, heuristic="auto")
    packed_seconds = time.perf_counter() - began
    report = verify_packed(plan, names, tables.time_of)
    if not report.ok:
        raise SystemExit(
            f"packed plan for {design} at W={width} failed verification:\n"
            + report.summary()
        )
    return {
        "design": design,
        "width": width,
        "cores": len(names),
        "fixed": {
            "makespan": search.makespan,
            "strategy": search.strategy,
            "partitions_evaluated": search.partitions_evaluated,
            "seconds": round(fixed_seconds, 4),
        },
        "packed": {
            "makespan": plan.makespan,
            "heuristic": plan.heuristic,
            "placements_evaluated": plan.placements_evaluated,
            "utilization": round(plan.utilization, 4),
            "seconds": round(packed_seconds, 4),
            "verified": True,
        },
        "ratio": round(plan.makespan / search.makespan, 4),
    }


def never_worse_designs(runs: list[dict[str, Any]]) -> list[str]:
    """Designs where packed beats-or-ties fixed at *every* width."""
    worst: dict[str, float] = {}
    for run in runs:
        ratio = run["packed"]["makespan"] / run["fixed"]["makespan"]
        worst[run["design"]] = max(worst.get(run["design"], 0.0), ratio)
    return sorted(d for d, ratio in worst.items() if ratio <= 1.0)


def measure(
    designs: tuple[str, ...] = DEFAULT_DESIGNS,
    widths: tuple[int, ...] = DEFAULT_WIDTHS,
) -> dict[str, Any]:
    """The full bench document for one design x width sweep."""
    import numpy

    runs: list[dict[str, Any]] = []
    for design in designs:
        names, tables, analysis_seconds = build_tables(design, max(widths))
        print(
            f"{design}: {len(names)} cores analyzed "
            f"in {analysis_seconds:.1f}s"
        )
        for width in widths:
            run = bench_pair(design, names, tables, width)
            runs.append(run)
            print(
                f"  W={width}: fixed {run['fixed']['makespan']} "
                f"({run['fixed']['strategy']}) vs packed "
                f"{run['packed']['makespan']} "
                f"({run['packed']['heuristic']}, util "
                f"{run['packed']['utilization']:.2f}) -> "
                f"ratio {run['ratio']:.3f}"
            )
    return {
        "kind": SCHEMA_KIND,
        "schema": SCHEMA_VERSION,
        "generated_by": "scripts/bench_packing.py",
        "designs": list(designs),
        "widths": list(widths),
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "runs": runs,
        "never_worse_designs": never_worse_designs(runs),
    }


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--designs",
        default=",".join(DEFAULT_DESIGNS),
        help="comma-separated design names",
    )
    parser.add_argument(
        "--widths",
        default=",".join(str(w) for w in DEFAULT_WIDTHS),
        help="comma-separated W_TAM budgets",
    )
    parser.add_argument("--out", default="")
    args = parser.parse_args(argv)

    designs = tuple(d for d in args.designs.split(",") if d)
    widths = tuple(int(w) for w in args.widths.split(",") if w)
    doc = measure(designs, widths)
    print(
        f"never worse packed: {', '.join(doc['never_worse_designs']) or '-'}"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=False)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, "src")
    raise SystemExit(main(sys.argv[1:]))
