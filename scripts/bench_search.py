#!/usr/bin/env python
"""Benchmark the architecture-search backends on a many-core SOC.

The ``repro.search`` refactor exists for the regime where the partition
space is not enumerable (``synth150`` at ``W_TAM = 128`` has ~588k
partitions at the default six-TAM cap, an order of magnitude past
``AUTO_PARTITION_LIMIT``).  This script measures what each backend
does with that budget: per backend it records the wall-clock of the
*search itself* (per-core analysis excluded -- it is identical for
every backend and timed once), the evaluation count, the throughput
in evaluations/second, and the best makespan found, under a fixed
seed so the numbers are reproducible.

The result is written as versioned JSON (``BENCH_search.json``) so CI
can record it as an artifact and ``benchmarks/test_bench_search.py``
can validate the committed copy::

    python scripts/bench_search.py --design synth150 --width 128 \
        --out benchmarks/results/BENCH_search.json

Validation lives in ``scripts/check_obs_artifacts.py`` (``--bench``
dispatches on the document's ``kind``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Mapping

SCHEMA_KIND = "bench-search"
SCHEMA_VERSION = 1

#: Backend -> fixed hyperparameters benchmarked (seed is injected).
#: Exhaustive is deliberately absent: the workload is chosen so the
#: partition space is *not* enumerable -- that is the point.
BACKEND_OPTIONS: dict[str, dict[str, Any]] = {
    "greedy": {},
    "anneal": {"iterations": 4000},
    "evolutionary": {"generations": 20, "population": 24},
}

SEEDED = ("anneal", "evolutionary")


def build_tables(design: str, width: int):
    """(core names, lookup tables, analysis seconds) for one design."""
    from repro.pipeline.config import RunConfig
    from repro.pipeline.events import EventRecorder
    from repro.pipeline.stages import (
        DecompressorStage,
        PlanContext,
        WrapperStage,
    )
    from repro.soc.industrial import load_design

    soc = load_design(design)
    ctx = PlanContext(soc, width, RunConfig(use_cache=False), EventRecorder())
    began = time.perf_counter()
    WrapperStage().run(ctx)
    DecompressorStage().run(ctx)
    seconds = time.perf_counter() - began
    assert ctx.tables is not None
    return ctx.names, ctx.tables, seconds


def bench_backend(
    names: list[str],
    tables: Any,
    width: int,
    backend: str,
    options: Mapping[str, Any],
) -> dict[str, Any]:
    """Time one backend's search over the shared lookup tables."""
    from repro.search import run_search

    began = time.perf_counter()
    result = run_search(
        names, width, tables.time_of, strategy=backend, options=dict(options)
    )
    seconds = time.perf_counter() - began
    return {
        "backend": backend,
        "options": dict(options),
        "seconds": round(seconds, 4),
        "evaluations": result.partitions_evaluated,
        "evals_per_sec": round(result.partitions_evaluated / seconds, 1),
        "best_makespan": result.makespan,
        "tam_widths": list(result.widths),
    }


def measure(design: str, width: int, seed: int) -> dict[str, Any]:
    """The full bench document for one design/width/seed triple."""
    import numpy

    names, tables, analysis_seconds = build_tables(design, width)
    runs = []
    for backend, options in BACKEND_OPTIONS.items():
        opts = dict(options)
        if backend in SEEDED:
            opts["seed"] = seed
        run = bench_backend(names, tables, width, backend, opts)
        runs.append(run)
        print(
            f"{backend}: best {run['best_makespan']} cycles  "
            f"{run['evaluations']} evals in {run['seconds']:.2f}s  "
            f"({run['evals_per_sec']:.0f} evals/s)"
        )
    return {
        "kind": SCHEMA_KIND,
        "schema": SCHEMA_VERSION,
        "generated_by": "scripts/bench_search.py",
        "design": design,
        "width_budget": width,
        "seed": seed,
        "cores": len(names),
        "analysis_seconds": round(analysis_seconds, 4),
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "runs": runs,
    }


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--design", default="synth150")
    parser.add_argument("--width", type=int, default=128)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="")
    args = parser.parse_args(argv)

    doc = measure(args.design, args.width, args.seed)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=False)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, "src")
    raise SystemExit(main(sys.argv[1:]))
