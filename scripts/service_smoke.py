#!/usr/bin/env python
"""Live integration smoke of the planning service, as CI runs it.

Starts ``repro-soc serve --port 0`` as a real subprocess, fires eight
concurrent d695 submissions (three of them identical, held in flight
by the fault hook so the dedup window is deterministic), and asserts
the service's whole contract in one pass:

* the three duplicates coalesce onto one job (``jobs_deduped >= 2``),
* fewer executions than submissions (``jobs_submitted == 6``),
* every job completes and duplicate fetches return equal results,
* the coalesced plan is semantically identical to a clean one,
* SIGTERM produces a graceful drain: exit code 0 and a ``stopped``
  event whose counters show no cancelled work.

Usage::

    python scripts/service_smoke.py

Exit status 0 on success; 1 with a message on stderr otherwise.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.pipeline import RunConfig  # noqa: E402
from repro.serve import connect_with_retry  # noqa: E402

READY_DEADLINE_S = 60.0
EXIT_DEADLINE_S = 120.0


class SmokeError(AssertionError):
    pass


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeError(message)


def _spawn_server() -> tuple[subprocess.Popen, dict]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--jobs",
            "2",
            "--queue-depth",
            "16",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
        cwd=REPO,
    )
    deadline = time.monotonic() + READY_DEADLINE_S
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if line.strip():
            ready = json.loads(line)
            _check(ready.get("event") == "ready", f"bad ready line: {ready}")
            return proc, ready
        if proc.poll() is not None:
            raise SmokeError(f"server exited early:\n{proc.stderr.read()}")
    raise SmokeError("server never announced readiness")


def main() -> int:
    proc, ready = _spawn_server()
    host, port = ready["host"], ready["port"]
    config = RunConfig(compression="none")
    fault = {"sleep_s": 2.0}  # holds the shared job in flight

    try:
        def submit(width, with_fault):
            with connect_with_retry(host, port) as client:
                return client.submit(
                    "d695", width, config, fault=fault if with_fault else None
                )

        with ThreadPoolExecutor(max_workers=8) as pool:
            duplicates = list(
                pool.map(lambda _: submit(8, True), range(3))
            )
            uniques = list(
                pool.map(lambda w: submit(w, False), [10, 12, 14, 16, 18])
            )

        shared_ids = {t.job_id for t in duplicates}
        _check(
            len(shared_ids) == 1,
            f"duplicates did not coalesce: {shared_ids}",
        )
        deduped = sum(t.deduped for t in duplicates)
        _check(deduped == 2, f"expected 2 deduped tickets, got {deduped}")
        shared_id = shared_ids.pop()

        with connect_with_retry(host, port) as client:
            first = client.result(shared_id, timeout_s=300)
            second = client.result(shared_id, timeout_s=300)
            _check(first == second, "duplicate fetches differ")
            for ticket in uniques:
                client.result(ticket.job_id, timeout_s=300)
            counters = client.stats()["counters"]
            _check(
                counters["jobs_deduped"] >= 2,
                f"jobs_deduped={counters.get('jobs_deduped')}",
            )
            _check(
                counters["jobs_submitted"] == 6,
                f"jobs_submitted={counters.get('jobs_submitted')} "
                "(expected 6 executions for 8 submissions)",
            )
            _check(
                counters["jobs_completed"] == 6,
                f"jobs_completed={counters.get('jobs_completed')}",
            )
            clean_ticket = client.submit("d695", 8, config)
            _check(not clean_ticket.deduped, "fault leaked out of identity")
            clean = client.result(clean_ticket.job_id, timeout_s=300)
            for field in ("soc", "test_time", "test_data_volume", "tams"):
                _check(
                    first[field] == clean[field],
                    f"coalesced plan differs from clean plan on {field}",
                )

        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=EXIT_DEADLINE_S)
        stderr = proc.stderr.read()
        _check(proc.returncode == 0, f"exit {proc.returncode}:\n{stderr}")
        stopped = json.loads(stderr.strip().splitlines()[-1])
        _check(stopped.get("event") == "stopped", f"no stopped event: {stopped}")
        _check(
            stopped["counters"].get("jobs_cancelled", 0) == 0,
            f"drain cancelled work: {stopped['counters']}",
        )
        print(
            "service smoke OK: 9 submissions, "
            f"{stopped['counters']['jobs_completed']} executions, "
            f"{stopped['counters']['jobs_deduped']} coalesced, "
            "graceful drain"
        )
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except SmokeError as error:
        print(f"service smoke FAILED: {error}", file=sys.stderr)
        sys.exit(1)
