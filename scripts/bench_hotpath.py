#!/usr/bin/env python
"""Measure the vectorized single-plan hot path against the scalar stack.

For every requested benchmark design the script runs one *cold* plan in
a fresh subprocess twice -- once on the vectorized fast path and once
with ``REPRO_SCALAR_KERNELS=1`` (the retained scalar reference
kernels) -- and records, per run:

* the cold single-plan latency (the ``plan()`` call, imports excluded,
  best of ``--repeats`` subprocesses);
* per-kernel timings, aggregated from the observability tracer's spans
  (the batch kernels are bracketed with ``kernel.*`` spans, the
  pipeline stages with their stage names);
* the plan outputs of both stacks, which must be identical -- a latency
  number for a *different* plan would be meaningless.

The result is written as versioned JSON (``BENCH_hotpath.json``) so CI
can record it as an artifact and ``benchmarks/test_bench_hotpath.py``
can validate the committed copy::

    python scripts/bench_hotpath.py --designs d695 \
        --out benchmarks/results/BENCH_hotpath.json

Validation lives in ``scripts/check_obs_artifacts.py`` (``--bench``).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time

SCHEMA_KIND = "bench-hotpath"
SCHEMA_VERSION = 1

#: Span names aggregated into the per-kernel timing section.
KERNEL_SPANS = (
    "kernel.exact-totals",
    "kernel.estimate-batch",
    "kernel.wrapper-batch",
    "kernel.schedule-batch",
)
PIPELINE_STAGES = ("wrapper", "decompressor", "architecture", "schedule")

DEFAULT_DESIGNS = ("d695", "d2758", "System1", "System2")


def _child(design: str, width: int) -> int:
    """One cold plan in this process; prints a JSON record to stdout."""
    from repro import obs
    from repro.pipeline import RunConfig, plan
    from repro.soc.industrial import load_design

    soc = load_design(design)
    config = RunConfig(use_cache=False)
    with obs.enabled() as active:
        began = time.perf_counter()
        result = plan(soc, width, config)
        seconds = time.perf_counter() - began

    # Kernel spans nest: the schedule batch's lazy time-table fills run
    # the other kernels inside its span.  Attribute each nested kernel's
    # time to its innermost enclosing kernel span (self-time), so the
    # per-kernel numbers add up instead of double-counting.
    kernels = [s for s in active.tracer.spans if s.name in KERNEL_SPANS]
    self_seconds = {id(s): s.end - s.start for s in kernels}
    for span in kernels:
        parent = None
        for candidate in kernels:
            if span.path.startswith(candidate.path + "/") and (
                parent is None or len(candidate.path) > len(parent.path)
            ):
                parent = candidate
        if parent is not None:
            self_seconds[id(parent)] -= span.end - span.start
    kernel_seconds: dict[str, float] = {}
    for span in kernels:
        kernel_seconds[span.name] = (
            kernel_seconds.get(span.name, 0.0) + self_seconds[id(span)]
        )
    stage_seconds: dict[str, float] = {}
    for span in active.tracer.spans:
        if span.name in PIPELINE_STAGES:
            stage_seconds[span.name] = stage_seconds.get(span.name, 0.0) + (
                span.end - span.start
            )
    record = {
        "design": design,
        "seconds": seconds,
        "scalar": bool(os.environ.get("REPRO_SCALAR_KERNELS")),
        "kernel_seconds": {
            name: kernel_seconds[name]
            for name in KERNEL_SPANS
            if name in kernel_seconds
        },
        "stage_seconds": {
            name: stage_seconds[name]
            for name in PIPELINE_STAGES
            if name in stage_seconds
        },
        "plan": {
            "test_time": result.test_time,
            "test_data_volume": result.test_data_volume,
            "tam_widths": list(result.tam_widths),
            "partitions_evaluated": result.partitions_evaluated,
            "strategy": result.strategy,
        },
    }
    json.dump(record, sys.stdout)
    return 0


def _run_child(design: str, width: int, *, scalar: bool) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    if scalar:
        env["REPRO_SCALAR_KERNELS"] = "1"
    else:
        env.pop("REPRO_SCALAR_KERNELS", None)
    proc = subprocess.run(
        [
            sys.executable,
            os.path.abspath(__file__),
            "--child",
            design,
            "--width",
            str(width),
        ],
        env=env,
        check=True,
        capture_output=True,
        text=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def bench_design(design: str, width: int, repeats: int) -> dict:
    """Fast/scalar latency pair for one design (best-of-``repeats``)."""
    fast_runs = [
        _run_child(design, width, scalar=False) for _ in range(repeats)
    ]
    scalar_runs = [
        _run_child(design, width, scalar=True) for _ in range(repeats)
    ]
    fast = min(fast_runs, key=lambda r: r["seconds"])
    scalar = min(scalar_runs, key=lambda r: r["seconds"])
    identical = all(r["plan"] == fast["plan"] for r in fast_runs + scalar_runs)
    return {
        "design": design,
        "fast_seconds": round(fast["seconds"], 4),
        "scalar_seconds": round(scalar["seconds"], 4),
        "speedup": round(scalar["seconds"] / fast["seconds"], 2),
        "identical": identical,
        "test_time": fast["plan"]["test_time"],
        "test_data_volume": fast["plan"]["test_data_volume"],
        "tam_widths": fast["plan"]["tam_widths"],
        "kernel_seconds": {
            name: round(value, 4)
            for name, value in fast["kernel_seconds"].items()
        },
        "stage_seconds": {
            name: round(value, 4)
            for name, value in fast["stage_seconds"].items()
        },
        "scalar_stage_seconds": {
            name: round(value, 4)
            for name, value in scalar["stage_seconds"].items()
        },
    }


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--designs", default=",".join(DEFAULT_DESIGNS))
    parser.add_argument("--width", type=int, default=64)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--out", default="")
    parser.add_argument("--child", default="", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.child:
        return _child(args.child, args.width)

    import numpy

    runs = []
    for design in args.designs.split(","):
        design = design.strip()
        if not design:
            continue
        run = bench_design(design, args.width, args.repeats)
        runs.append(run)
        print(
            f"{design}: fast {run['fast_seconds']:.2f}s  "
            f"scalar {run['scalar_seconds']:.2f}s  "
            f"speedup {run['speedup']:.1f}x  "
            f"identical={run['identical']}"
        )
    doc = {
        "kind": SCHEMA_KIND,
        "schema": SCHEMA_VERSION,
        "generated_by": "scripts/bench_hotpath.py",
        "width_budget": args.width,
        "repeats": args.repeats,
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "runs": runs,
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=False)
            handle.write("\n")
        print(f"wrote {args.out}")
    if not all(run["identical"] for run in runs):
        print("FAIL: fast and scalar stacks produced different plans",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
