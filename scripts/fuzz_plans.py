#!/usr/bin/env python
"""Cross-planner fuzz run: random SOCs through every planner + checker.

Each seed is one self-contained scenario (see ``repro.verify.fuzz``);
any failure prints the seed so it can be replayed exactly::

    python scripts/fuzz_plans.py --seeds 500
    python scripts/fuzz_plans.py --start 1234 --seeds 1   # replay seed 1234

Exits 1 when any property failed, 0 on a clean run.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.verify.fuzz import fuzz_one  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seeds", type=int, default=200, help="number of seeds to run"
    )
    parser.add_argument(
        "--start", type=int, default=0, help="first seed (for replays)"
    )
    parser.add_argument(
        "--fail-fast",
        action="store_true",
        help="stop at the first seed with findings",
    )
    args = parser.parse_args(argv)

    started = time.time()
    failures = 0
    for seed in range(args.start, args.start + args.seeds):
        findings = fuzz_one(seed)
        for finding in findings:
            print(finding.format())
        if findings:
            failures += 1
            if args.fail_fast:
                break
    elapsed = time.time() - started
    clean = args.seeds - failures
    print(
        f"fuzzed {args.seeds} seed(s) in {elapsed:.1f} s: "
        f"{clean} clean, {failures} with findings"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
