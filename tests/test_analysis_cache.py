"""Robustness tests for the persistent analysis cache.

The cache must be impossible to crash through: any defective entry --
truncated, garbled, mislabeled, stale-schema -- is a miss that gets
recomputed and repaired, and concurrent writers publishing the same
entry can never leave a partial file behind (atomic rename).
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.explore.cache import (
    AnalysisDiskCache,
    analysis_fingerprint,
    resolve_cache,
)
from repro.explore.dse import (
    CoreAnalysis,
    SnapshotError,
    analysis_for,
    analyze_soc_cores,
    clear_analysis_cache,
)
from repro.explore import dse
from repro.compression.cubes import generate_cubes
from repro.soc.core import Core


@pytest.fixture
def cache(tmp_path) -> AnalysisDiskCache:
    return AnalysisDiskCache(tmp_path / "cache")


def _analysis(core: Core) -> CoreAnalysis:
    analysis = CoreAnalysis(core)
    analysis.precompute(10)
    return analysis


# ---------------------------------------------------------------------------
# Round trip
# ---------------------------------------------------------------------------


def test_snapshot_round_trip_equals_original(small_core):
    original = _analysis(small_core)
    restored = CoreAnalysis(small_core)
    restored.load_snapshot(original.snapshot())

    assert restored.snapshot() == original.snapshot()
    for w in range(1, 11):
        assert restored.uncompressed_point(w) == original.uncompressed_point(w)
    for w in range(3, 11):
        assert restored.best_for_code_width(w) == original.best_for_code_width(w)
    for m in original.m_grid_for_code_width(5):
        assert restored.compressed_point(m) == original.compressed_point(m)


def test_disk_round_trip(small_core, cache):
    analysis = _analysis(small_core)
    fingerprint = analysis.fingerprint
    assert fingerprint is not None
    cache.store(fingerprint, analysis.snapshot())

    loaded = cache.load(fingerprint)
    assert loaded is not None
    restored = CoreAnalysis(small_core)
    restored.load_snapshot(loaded)
    assert restored.snapshot() == analysis.snapshot()

    stats = cache.stats()
    assert stats.entries == 1
    assert stats.hits == 1
    assert stats.stores == 1
    assert stats.total_bytes > 0


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


def test_fingerprint_is_value_based(small_core):
    twin = Core(**{f: getattr(small_core, f) for f in (
        "name", "inputs", "outputs", "bidirs", "scan_chain_lengths",
        "patterns", "care_bit_density", "one_fraction", "seed", "gates",
    )})
    assert twin is not small_core
    assert CoreAnalysis(twin).fingerprint == CoreAnalysis(small_core).fingerprint

    reseeded = small_core.with_seed(small_core.seed + 1)
    assert CoreAnalysis(reseeded).fingerprint != CoreAnalysis(small_core).fingerprint
    repatterned = small_core.with_patterns(small_core.patterns + 1)
    assert (
        CoreAnalysis(repatterned).fingerprint != CoreAnalysis(small_core).fingerprint
    )


def test_fingerprint_ignores_samples_in_exact_mode(small_core):
    few = CoreAnalysis(small_core, samples=64)
    many = CoreAnalysis(small_core, samples=512)
    assert few.mode == "exact"
    assert few.fingerprint == many.fingerprint

    sparse = CoreAnalysis(small_core, mode="estimate", samples=64)
    denser = CoreAnalysis(small_core, mode="estimate", samples=512)
    assert sparse.fingerprint != denser.fingerprint
    assert sparse.fingerprint != few.fingerprint  # mode enters the digest


def test_external_cubes_are_not_content_addressable(small_core):
    cubes = generate_cubes(small_core)
    analysis = CoreAnalysis(small_core, cubes=cubes)
    assert analysis.fingerprint is None


def test_unresolved_mode_rejected(small_core):
    with pytest.raises(ValueError):
        analysis_fingerprint(small_core, mode="auto", samples=64, grid=48)


# ---------------------------------------------------------------------------
# Corruption: every defect is a silent miss, then repaired by recompute
# ---------------------------------------------------------------------------


def _entry_path(cache, fingerprint):
    return cache.directory / f"{fingerprint}.json"


@pytest.mark.parametrize(
    "corruptor",
    [
        lambda raw: raw[: len(raw) // 2],  # truncated write
        lambda raw: b"not json at all {{{",  # garbage
        lambda raw: b"",  # empty file
        lambda raw: json.dumps({"schema": 999}).encode(),  # wrong schema
        lambda raw: raw.replace(b'"payload"', b'"paylod"'),  # missing key
    ],
    ids=["truncated", "garbage", "empty", "wrong-schema", "missing-key"],
)
def test_corrupted_entry_is_recomputed(small_core, cache, corruptor):
    analysis = _analysis(small_core)
    fingerprint = analysis.fingerprint
    cache.store(fingerprint, analysis.snapshot())

    path = _entry_path(cache, fingerprint)
    path.write_bytes(corruptor(path.read_bytes()))
    assert cache.load(fingerprint) is None
    assert cache.stats().misses >= 1

    # The engine shrugs: the analysis is recomputed and the entry repaired.
    clear_analysis_cache()
    analyses = analyze_soc_cores(
        [small_core], max_tam_width=10, jobs=1, cache=cache
    )
    rebuilt = analyses[small_core.name]
    assert rebuilt.snapshot() == analysis.snapshot()
    assert cache.load(fingerprint) is not None


def test_checksum_mismatch_detected(small_core, cache):
    analysis = _analysis(small_core)
    fingerprint = analysis.fingerprint
    cache.store(fingerprint, analysis.snapshot())

    path = _entry_path(cache, fingerprint)
    entry = json.loads(path.read_text())
    entry["payload"]["precomputed_width"] = 99  # tampered, checksum now stale
    path.write_text(json.dumps(entry))
    assert cache.load(fingerprint) is None
    assert cache.stats().corrupt >= 1


def test_mismatched_snapshot_rejected(small_core, sparse_core):
    donor = _analysis(small_core)
    recipient = CoreAnalysis(sparse_core)
    with pytest.raises(SnapshotError):
        recipient.load_snapshot(donor.snapshot())

    wrong_grid = CoreAnalysis(small_core, grid=7)
    with pytest.raises(SnapshotError):
        wrong_grid.load_snapshot(donor.snapshot())

    mangled = donor.snapshot()
    mangled["compressed"]["1"] = ["x"] * 7
    with pytest.raises(SnapshotError):
        CoreAnalysis(small_core).load_snapshot(mangled)


# ---------------------------------------------------------------------------
# Concurrency: atomic rename means readers never see partial entries
# ---------------------------------------------------------------------------


def test_concurrent_writers_never_clobber(small_core, cache):
    analysis = _analysis(small_core)
    fingerprint = analysis.fingerprint
    payload = analysis.snapshot()
    cache.store(fingerprint, payload)
    errors: list[BaseException] = []

    def writer():
        try:
            own = AnalysisDiskCache(cache.directory)
            for _ in range(25):
                own.store(fingerprint, payload)
        except BaseException as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    def reader():
        try:
            own = AnalysisDiskCache(cache.directory)
            for _ in range(50):
                loaded = own.load(fingerprint)
                assert loaded is not None, "reader observed a partial entry"
                assert loaded["core"] == small_core.name
        except BaseException as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=writer) for _ in range(3)]
    threads += [threading.Thread(target=reader) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert cache.load(fingerprint) is not None


def test_store_merges_disjoint_regions(small_core, cache):
    narrow = CoreAnalysis(small_core)
    narrow.precompute(4)
    fingerprint = narrow.fingerprint
    cache.store(fingerprint, narrow.snapshot())

    wide = CoreAnalysis(small_core)
    wide.precompute(9)
    cache.store(fingerprint, wide.snapshot())

    merged = cache.load(fingerprint)
    keys = {int(k) for k in merged["uncompressed"]}
    assert keys >= set(range(1, 10))
    assert int(merged["precomputed_width"]) == 9


# ---------------------------------------------------------------------------
# Clearing both layers
# ---------------------------------------------------------------------------


def test_clear_analysis_cache_clears_memory_and_disk(small_core, cache):
    analysis = analysis_for(small_core)
    analysis.precompute(6)
    cache.store(analysis.fingerprint, analysis.snapshot())
    assert dse._CACHE
    assert cache.stats().entries == 1

    clear_analysis_cache(cache)
    assert not dse._CACHE
    assert cache.stats().entries == 0
    # A fresh analysis is a different object and recomputes from scratch.
    assert analysis_for(small_core) is not analysis


def test_clear_reports_removed_count(small_core, sparse_core, cache):
    for core in (small_core, sparse_core):
        analysis = _analysis(core)
        cache.store(analysis.fingerprint, analysis.snapshot())
    assert cache.clear() == 2
    assert cache.stats().entries == 0
    assert cache.clear() == 0  # idempotent, including on a missing dir


# ---------------------------------------------------------------------------
# Knob resolution
# ---------------------------------------------------------------------------


def test_resolve_cache_precedence(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)

    assert resolve_cache(None, None) is None
    assert resolve_cache(None, False) is None
    assert resolve_cache(str(tmp_path), None).directory == tmp_path

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
    assert resolve_cache(None, None).directory == tmp_path / "env"

    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    assert resolve_cache(None, None) is None
    assert resolve_cache(None, True) is None
    # Naming a directory in code overrides the environment veto.
    assert resolve_cache(str(tmp_path), None) is not None
