"""Property-based tests (hypothesis) for the rectangle packer.

The pinned invariants are the ones :func:`repro.verify.verify_packed`
enforces in production, re-checked here by brute force over random
rectangle families:

* no two placed rectangles overlap in 2D;
* every rectangle lies inside the ``width_budget``-wide strip, at a
  width its family actually offers, with the matching height;
* the makespan never beats the area lower bound
  ``ceil(total min area / W)``;
* packing is deterministic (same input, same plan).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pack import (
    HEURISTICS,
    CoreRectangles,
    RectCandidate,
    pack_rectangles,
)
from repro.pack.packer import area_lower_bound

WIDTH_BUDGET = 8


@st.composite
def rect_family(draw, index: int = 0):
    """One core's Pareto family: widths ascending, times descending."""
    widths = draw(
        st.lists(
            st.integers(min_value=1, max_value=WIDTH_BUDGET),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    widths.sort()
    # Strictly decreasing times built from positive decrements.
    drops = draw(
        st.lists(
            st.integers(min_value=1, max_value=40),
            min_size=len(widths),
            max_size=len(widths),
        )
    )
    tallest = sum(drops) + draw(st.integers(min_value=1, max_value=60))
    times = []
    remaining = tallest
    for drop in drops:
        times.append(remaining)
        remaining -= drop
    return CoreRectangles(
        name=f"core{index:02d}",
        candidates=tuple(
            RectCandidate(width=w, time=t) for w, t in zip(widths, times)
        ),
    )


@st.composite
def rect_families(draw):
    count = draw(st.integers(min_value=1, max_value=7))
    return tuple(draw(rect_family(index=i)) for i in range(count))


def shapes_of(families):
    return {
        f.name: {(c.width, c.time) for c in f.candidates} for f in families
    }


class TestPackerProperties:
    @given(rect_families(), st.sampled_from(HEURISTICS + ("auto",)))
    @settings(max_examples=120, deadline=None)
    def test_no_overlap_and_in_strip(self, families, heuristic):
        plan = pack_rectangles(
            "prop", families, WIDTH_BUDGET, heuristic=heuristic
        )
        offered = shapes_of(families)
        assert len(plan.rects) == len(families)
        for rect in plan.rects:
            assert 0 <= rect.x
            assert rect.x + rect.width <= WIDTH_BUDGET
            assert rect.start >= 0
            # The chosen shape is one the family actually offers.
            assert (rect.width, rect.end - rect.start) in offered[rect.name]
        for i, a in enumerate(plan.rects):
            for b in plan.rects[i + 1 :]:
                in_time = a.start < b.end and b.start < a.end
                in_x = a.x < b.x + b.width and b.x < a.x + a.width
                assert not (in_time and in_x)

    @given(rect_families(), st.sampled_from(HEURISTICS))
    @settings(max_examples=120, deadline=None)
    def test_instantaneous_width_within_budget(self, families, heuristic):
        plan = pack_rectangles(
            "prop", families, WIDTH_BUDGET, heuristic=heuristic
        )
        for probe in plan.rects:
            t = probe.start
            occupied = sum(
                r.width for r in plan.rects if r.start <= t < r.end
            )
            assert occupied <= WIDTH_BUDGET

    @given(rect_families(), st.sampled_from(HEURISTICS))
    @settings(max_examples=120, deadline=None)
    def test_makespan_at_least_area_bound(self, families, heuristic):
        plan = pack_rectangles(
            "prop", families, WIDTH_BUDGET, heuristic=heuristic
        )
        assert plan.makespan >= area_lower_bound(families, WIDTH_BUDGET)

    @given(rect_families())
    @settings(max_examples=60, deadline=None)
    def test_deterministic(self, families):
        first = pack_rectangles("prop", families, WIDTH_BUDGET)
        second = pack_rectangles("prop", families, WIDTH_BUDGET)
        assert first == second
