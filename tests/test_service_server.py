"""End-to-end tests over the real TCP transport.

Each test spawns ``repro-soc serve`` as a subprocess with ``--port 0``,
parses the ready announcement for the OS-assigned port, and drives it
with :class:`repro.serve.client.ServiceClient`.  The fault-injection
hooks (``sleep_s``) keep jobs deterministically in flight so the dedup
and backpressure windows are not timing-dependent.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.pipeline import RunConfig
from repro.serve import BackpressureError, ServiceClient, connect_with_retry

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

READY_DEADLINE_S = 60.0
EXIT_DEADLINE_S = 60.0


def _spawn_server(*extra_args: str) -> tuple[subprocess.Popen, dict]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_NO_CACHE"] = "1"
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
        cwd=REPO,
    )
    deadline = time.monotonic() + READY_DEADLINE_S
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if line.strip():
            break
        if proc.poll() is not None:
            raise RuntimeError(
                f"server exited early: {proc.stderr.read()}"
            )
    ready = json.loads(line)
    assert ready["event"] == "ready"
    return proc, ready


@contextmanager
def _server(*extra_args: str):
    proc, ready = _spawn_server(*extra_args)
    try:
        yield proc, ready
    finally:
        if proc.poll() is None:
            proc.terminate()
            try:
                proc.wait(timeout=EXIT_DEADLINE_S)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)


def _wait_exit(proc: subprocess.Popen) -> tuple[int, str]:
    try:
        proc.wait(timeout=EXIT_DEADLINE_S)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise
    return proc.returncode, proc.stderr.read()


class TestProtocolSmoke:
    def test_ping_designs_and_garbage(self):
        with _server("--isolation", "thread", "--jobs", "1") as (_, ready):
            client = connect_with_retry(ready["host"], ready["port"])
            with client:
                assert client.ping()
                designs = client.designs()
                names = {row["name"] for row in designs}
                assert {"d695", "d2758", "System1"} <= names
                d695 = next(r for r in designs if r["name"] == "d695")
                assert d695["cores"] > 0
                stats = client.stats()
                assert stats["accepting"] is True
            # Raw-socket abuse: garbage and unknown ops produce error
            # responses, not dropped connections.
            with socket.create_connection(
                (ready["host"], ready["port"]), timeout=10
            ) as raw:
                raw.sendall(b"{this is not json\n")
                reply = json.loads(raw.makefile("rb").readline())
                assert reply["ok"] is False
                assert reply["error"] == "bad-request"
            with ServiceClient(ready["host"], ready["port"]) as client:
                response = client._request({"op": "ping"})
                assert response["ok"] is True
                client.shutdown()


class TestConcurrencyAndDedup:
    def test_eight_concurrent_submissions_with_duplicates(self):
        """ISSUE acceptance: >=8 simultaneous submissions, >=2 of them
        duplicates; dedup counter >= 2; fewer executions than
        submissions; duplicate submissions observe equal results."""
        with _server("--jobs", "2", "--queue-depth", "16") as (_, ready):
            host, port = ready["host"], ready["port"]
            fault = {"sleep_s": 2.0}  # holds the shared job in flight
            unique_widths = [10, 12, 14, 16, 18]

            def submit_duplicate(_):
                with connect_with_retry(host, port) as client:
                    return client.submit(
                        "d695",
                        8,
                        RunConfig(compression="none"),
                        fault=fault,
                    )

            def submit_unique(width):
                with connect_with_retry(host, port) as client:
                    return client.submit(
                        "d695", width, RunConfig(compression="none")
                    )

            with ThreadPoolExecutor(max_workers=8) as pool:
                duplicate_tickets = list(
                    pool.map(submit_duplicate, range(3))
                )
                unique_tickets = list(
                    pool.map(submit_unique, unique_widths)
                )

            # The three identical submissions share one job.
            job_ids = {t.job_id for t in duplicate_tickets}
            assert len(job_ids) == 1
            assert sum(t.deduped for t in duplicate_tickets) == 2
            shared_id = job_ids.pop()

            with connect_with_retry(host, port) as client:
                # Two fetches of the coalesced job are identical.
                first = client.result(shared_id, timeout_s=120)
                second = client.result(shared_id, timeout_s=120)
                assert first == second
                for ticket in unique_tickets:
                    client.result(ticket.job_id, timeout_s=120)
                stats = client.stats()
                counters = stats["counters"]
                assert counters["jobs_deduped"] >= 2
                # 8 submissions, 6 executions: dedup saved real work.
                assert counters["jobs_submitted"] == 6
                assert counters["jobs_completed"] == 6
                # The fault hook only sleeps; the coalesced job's plan
                # is semantically identical to a clean w=8 plan.
                clean_ticket = client.submit(
                    "d695", 8, RunConfig(compression="none")
                )
                assert not clean_ticket.deduped  # fault is in the identity
                clean = client.result(clean_ticket.job_id, timeout_s=120)
                for field in (
                    "soc",
                    "test_time",
                    "test_data_volume",
                    "tams",
                ):
                    assert first[field] == clean[field]
                client.shutdown()

    def test_full_queue_rejects_over_the_wire(self):
        with _server("--jobs", "1", "--queue-depth", "1") as (_, ready):
            with connect_with_retry(ready["host"], ready["port"]) as client:
                config = RunConfig(compression="none")
                client.submit("d695", 8, config, fault={"sleep_s": 3.0})
                time.sleep(0.5)  # let the dispatcher claim the worker slot
                client.submit("d695", 8, config, fault={"sleep_s": 3.1})
                with pytest.raises(BackpressureError) as excinfo:
                    client.submit(
                        "d695", 8, config, fault={"sleep_s": 3.2}
                    )
                assert excinfo.value.retry_after > 0
                stats = client.stats()
                assert stats["counters"]["jobs_rejected"] >= 1
                client.shutdown(drain=False)


class TestGracefulShutdown:
    def test_sigterm_drains_inflight_job(self):
        proc, ready = _spawn_server("--jobs", "1")
        try:
            with connect_with_retry(ready["host"], ready["port"]) as client:
                ticket = client.submit(
                    "d695",
                    8,
                    RunConfig(compression="none"),
                    fault={"sleep_s": 1.0},
                )
                # Wait until the job is actually running so SIGTERM has
                # something to drain.
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    if client.status(ticket.job_id)["state"] == "running":
                        break
                    time.sleep(0.05)
            proc.send_signal(signal.SIGTERM)
            returncode, stderr = _wait_exit(proc)
            assert returncode == 0
            stopped = json.loads(stderr.strip().splitlines()[-1])
            assert stopped["event"] == "stopped"
            # The in-flight job was drained, not killed.
            assert stopped["counters"]["jobs_completed"] == 1
            assert stopped["counters"].get("jobs_cancelled", 0) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    def test_shutdown_op_exits_zero(self):
        proc, ready = _spawn_server("--isolation", "thread", "--jobs", "1")
        try:
            with connect_with_retry(ready["host"], ready["port"]) as client:
                response = client.shutdown()
                assert response["stopping"] is True
            returncode, stderr = _wait_exit(proc)
            assert returncode == 0
            assert '"event": "stopped"' in stderr
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
