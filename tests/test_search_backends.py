"""The ``repro.search`` layer itself: registry, options, space, bounds.

Covers the surfaces the differential suite cannot: the backend
registry and option coercion (what ``--search-opt`` rides on), the
shared :func:`resolve_search_space` clamp (the one copy of logic that
used to be duplicated -- and divergent -- between ``partition.py`` and
``anneal.py``), sanity bounds of the metaheuristic backends against
the provably-optimal branch-and-bound schedule, the cooling-schedule
regression tests for the annealer fix, and the ``search.*``
observability wiring.

``REPRO_FUZZ_SEEDS`` widens the random sweeps in CI.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import _legacy_search as legacy
from repro import obs
from repro.core.optimal import optimal_schedule
from repro.pipeline import RunConfig, plan
from repro.search import (
    Evaluator,
    backend_names,
    coerce_options,
    get_backend,
    register_backend,
    resolve_search_space,
    run_search,
)
from repro.search.backend import _BACKENDS
from repro.soc.industrial import load_design
from repro.verify import verify_architecture

ALL_DESIGNS = ("d695", "d2758", "System1", "System2", "System3", "System4")

FUZZ_SEEDS = int(os.environ.get("REPRO_FUZZ_SEEDS", 24))


def _random_workload(seed: int, max_cores: int = 11):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, max_cores))
    names = [f"c{i}" for i in range(n)]
    base = {name: int(rng.integers(40, 4000)) for name in names}
    floor = {name: int(rng.integers(1, 30)) for name in names}

    def time_of(name: str, width: int) -> int:
        return -(-base[name] // width) + floor[name]

    return names, time_of


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------


class TestRegistry:
    def test_builtins_registered(self):
        assert {"exhaustive", "greedy", "anneal", "evolutionary"} <= set(
            backend_names()
        )

    def test_get_backend_returns_named(self):
        for name in ("exhaustive", "greedy", "anneal", "evolutionary"):
            assert get_backend(name).name == name

    def test_unknown_strategy_raises_with_available(self):
        with pytest.raises(ValueError, match="strategy") as err:
            get_backend("bogus")
        assert "evolutionary" in str(err.value)

    def test_register_backend_is_pluggable(self):
        class Dummy:
            name = "dummy-test"
            hyperparameters: dict[str, type] = {}

            def run(self, evaluator, space, **options):
                return evaluator.schedule(space.single_tam)

        register_backend(Dummy())
        try:
            assert get_backend("dummy-test").name == "dummy-test"
            assert "dummy-test" in backend_names()
        finally:
            _BACKENDS.pop("dummy-test", None)

    def test_run_search_unknown_strategy(self):
        names, time_of = _random_workload(0)
        with pytest.raises(ValueError, match="strategy"):
            run_search(names, 8, time_of, strategy="nope")


# ----------------------------------------------------------------------
# Option coercion (the --search-opt surface).
# ----------------------------------------------------------------------


class TestOptionCoercion:
    def test_typed_coercion_from_strings(self):
        backend = get_backend("anneal")
        coerced = coerce_options(
            backend,
            {"iterations": "500", "cooling": "0.99", "seed": "7"},
        )
        assert coerced == {"iterations": 500, "cooling": 0.99, "seed": 7}

    def test_bool_spellings(self):
        backend = get_backend("evolutionary")
        for raw, expected in [
            ("1", True), ("true", True), ("YES", True), ("on", True),
            ("0", False), ("false", False), ("No", False), ("off", False),
            (True, True), (False, False),
        ]:
            assert coerce_options(backend, {"resume": raw}) == {
                "resume": expected
            }

    def test_bad_bool_raises(self):
        backend = get_backend("evolutionary")
        with pytest.raises(ValueError, match="not a valid bool"):
            coerce_options(backend, {"resume": "maybe"})

    def test_bad_int_raises(self):
        backend = get_backend("anneal")
        with pytest.raises(ValueError, match="not a valid int"):
            coerce_options(backend, {"iterations": "many"})

    def test_unknown_option_lists_known_knobs(self):
        backend = get_backend("anneal")
        with pytest.raises(ValueError, match="known options") as err:
            coerce_options(backend, {"iteratons": "500"})
        assert "iterations" in str(err.value)
        assert "cooling" in str(err.value)

    def test_pipeline_rejects_unknown_option(self, tiny_soc):
        with pytest.raises(ValueError, match="known options"):
            plan(
                tiny_soc,
                8,
                RunConfig(
                    strategy="anneal", search_opts=(("bogus", "1"),)
                ),
            )


# ----------------------------------------------------------------------
# The shared clamp (satellite: one copy of max_parts/min_width logic).
# ----------------------------------------------------------------------


class TestResolveSearchSpace:
    def test_defaults_cap_at_six(self):
        space = resolve_search_space(10, 16)
        assert (space.max_parts, space.min_width) == (6, 1)

    def test_defaults_cap_at_core_count(self):
        assert resolve_search_space(3, 16).max_parts == 3

    def test_clamped_by_min_width(self):
        assert resolve_search_space(10, 16, min_width=5).max_parts == 3

    def test_explicit_max_parts_clamped(self):
        space = resolve_search_space(10, 16, max_parts=4, min_width=5)
        assert space.max_parts == 3

    def test_single_tam_property(self):
        assert resolve_search_space(4, 9).single_tam == (9,)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(num_cores=0, total_width=8), "zero cores"),
            (dict(num_cores=4, total_width=0), "total width"),
            (dict(num_cores=4, total_width=8, min_width=0), "min_width"),
            (dict(num_cores=4, total_width=8, max_parts=0), "max_parts"),
            (
                dict(num_cores=4, total_width=3, min_width=5),
                "cannot host",
            ),
        ],
    )
    def test_invalid_inputs_raise(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            resolve_search_space(**kwargs)

    def test_annealer_shim_shares_the_clamp(self):
        """The historical silent max_parts=0 clamp is gone everywhere."""
        from repro.core.anneal import anneal_search

        with pytest.raises(ValueError, match="max_parts"):
            anneal_search(["a", "b"], 8, lambda n, w: 1, max_parts=0)


# ----------------------------------------------------------------------
# Sanity bounds: metaheuristics vs the provable optimum.
# ----------------------------------------------------------------------


class TestSanityBounds:
    def test_metaheuristics_bounded_by_optimum(self):
        """anneal/evolutionary never report below the true optimum.

        The bound is the branch-and-bound joint optimum -- NOT the
        exhaustive+list-heuristic result: the metaheuristics search
        assignments directly and may legitimately beat the list
        scheduler on a fixed partition.
        """
        for seed in range(FUZZ_SEEDS):
            names, time_of = _random_workload(seed, max_cores=9)
            opt = optimal_schedule(names, 10, time_of, max_parts=3)
            single = max(
                sum(time_of(n, 10) for n in names), opt.makespan
            )
            for strategy, opts in [
                ("anneal", dict(iterations=400, seed=seed)),
                (
                    "evolutionary",
                    dict(generations=6, population=8, seed=seed),
                ),
            ]:
                found = run_search(
                    names, 10, time_of,
                    strategy=strategy, max_parts=3, options=opts,
                )
                assert opt.makespan <= found.makespan <= single
                assert sum(found.widths) <= 10

    @pytest.mark.parametrize("design", ALL_DESIGNS)
    @pytest.mark.parametrize("strategy", ["anneal", "evolutionary"])
    def test_benchmark_socs_verified_and_bounded(self, design, strategy):
        """On every benchmark SOC the metaheuristic plans verify clean
        and land between the single-TAM plan and feasibility."""
        soc = load_design(design)
        opts = {
            "anneal": (("iterations", "800"), ("seed", "1")),
            "evolutionary": (
                ("generations", "5"),
                ("population", "8"),
                ("seed", "1"),
            ),
        }[strategy]
        result = plan(
            soc,
            16,
            RunConfig(
                compression="auto",
                strategy=strategy,
                search_opts=opts,
                verify=True,  # VerifyStage raises on any violation
            ),
        )
        assert result.strategy == strategy
        single = plan(
            soc, 16, RunConfig(compression="auto", max_tams=1)
        )
        assert result.test_time <= single.test_time
        report = verify_architecture(result.architecture, soc=soc)
        assert report.ok, report.render()


# ----------------------------------------------------------------------
# Satellite: the annealer cooling-schedule fix.
# ----------------------------------------------------------------------


class TestCoolingFix:
    def test_shipped_schedule_was_skewed(self):
        """The pre-fix annealer cooled only on valid proposals; the
        fixed one cools every iteration.  They genuinely diverge."""
        diverged = 0
        for seed in range(8):
            names, time_of = _random_workload(seed)
            buggy = legacy.legacy_anneal_search(
                names, 12, time_of, iterations=600, cooling=0.99, seed=seed
            )
            fixed = legacy.legacy_anneal_search_fixed(
                names, 12, time_of, iterations=600, cooling=0.99, seed=seed
            )
            if buggy != fixed:
                diverged += 1
        assert diverged > 0

    def test_seed_pinned_result(self):
        """Determinism regression: the fixed schedule, pinned literally."""
        names, time_of = _random_workload(1)
        result = run_search(
            names, 12, time_of,
            strategy="anneal",
            options=dict(iterations=600, cooling=0.99, seed=1),
        )
        assert result.widths == (5, 4, 3)
        assert result.makespan == 1127
        assert result.partitions_evaluated == 312

    def test_same_seed_same_result(self):
        names, time_of = _random_workload(2)
        opts = dict(iterations=500, seed=11)
        a = run_search(names, 10, time_of, strategy="anneal", options=opts)
        b = run_search(names, 10, time_of, strategy="anneal", options=opts)
        assert a == b

    def test_proposals_counted_separately_from_evaluations(self):
        """Proposals == iterations; evaluations == valid proposals + 1.

        The split is the observable proof of the fix: cooling now
        advances with the proposal counter, not the evaluation one.
        """
        names, time_of = _random_workload(4)
        iterations = 700
        with obs.enabled() as active:
            result = run_search(
                names, 12, time_of,
                strategy="anneal",
                options=dict(iterations=iterations, seed=3),
            )
        counters = active.registry.snapshot()["counters"]
        assert counters["search.proposals"] == iterations
        assert counters["search.evaluations"] == result.partitions_evaluated
        assert result.partitions_evaluated <= iterations + 1


# ----------------------------------------------------------------------
# Observability wiring.
# ----------------------------------------------------------------------


class TestObservability:
    def test_anneal_metrics_and_epoch_spans(self):
        from repro.search.backends.anneal import EPOCHS

        names, time_of = _random_workload(5)
        with obs.enabled() as active:
            result = run_search(
                names, 12, time_of,
                strategy="anneal", options=dict(iterations=300, seed=0),
            )
        snap = active.registry.snapshot()
        assert snap["counters"]["search.evaluations"] == (
            result.partitions_evaluated
        )
        assert snap["gauges"]["search.best_makespan"] == result.makespan
        epochs = [
            s for s in active.tracer.spans if s.name == "search.epoch"
        ]
        assert len(epochs) == EPOCHS
        assert all("temperature" in s.attrs for s in epochs)
        assert all("best_makespan" in s.attrs for s in epochs)

    def test_evolutionary_generation_spans(self):
        names, time_of = _random_workload(6)
        with obs.enabled() as active:
            result = run_search(
                names, 12, time_of,
                strategy="evolutionary",
                options=dict(generations=4, population=6, seed=0),
            )
        generations = [
            s for s in active.tracer.spans if s.name == "search.generation"
        ]
        assert len(generations) == 4
        assert all("front_size" in s.attrs for s in generations)
        snap = active.registry.snapshot()
        assert snap["counters"]["search.evaluations"] == (
            result.partitions_evaluated
        )

    def test_search_metrics_reach_the_run_report(self, tiny_soc):
        with obs.enabled():
            result = plan(
                tiny_soc,
                8,
                RunConfig(
                    strategy="anneal",
                    search_opts=(("iterations", "200"),),
                ),
            )
        counters = result.report.metrics["counters"]
        assert counters["search.evaluations"] == result.partitions_evaluated
        assert counters["search.proposals"] == 200
        gauges = result.report.metrics["gauges"]
        assert gauges["search.best_makespan"] == result.test_time


# ----------------------------------------------------------------------
# Evaluator bookkeeping.
# ----------------------------------------------------------------------


class TestEvaluator:
    def test_memo_hits_still_count(self):
        names, time_of = _random_workload(7)
        ev = Evaluator(names, time_of)
        first = ev.schedule((6, 4))
        second = ev.schedule((6, 4))
        assert first == second
        assert ev.evaluations == 2
        assert ev.distinct_schedules == 1

    def test_best_tracks_across_paths(self):
        names, time_of = _random_workload(7)
        ev = Evaluator(names, time_of)
        ev.schedule((10,))
        ev.schedule((6, 4))
        assert ev.best_makespan == min(
            ev.schedule((10,)).makespan, ev.schedule((6, 4)).makespan
        )

    def test_objectives_degenerate_without_lookups(self):
        names, time_of = _random_workload(7)
        ev = Evaluator(names, time_of)
        from repro.search import SearchState

        state = SearchState(
            widths=(6, 4), assignment=tuple(0 for _ in names)
        )
        makespan, volume, power = ev.objectives(state)
        assert makespan == ev.makespan_of(state.widths, state.assignment)
        assert volume == 0 and power == 0.0

    def test_objectives_with_lookups(self):
        names, time_of = _random_workload(7)
        ev = Evaluator(
            names,
            time_of,
            volume_of=lambda name, width: 100 * width,
            power_of=lambda name: 2.0,
        )
        from repro.search import SearchState

        n = len(names)
        state = SearchState(widths=(6, 4), assignment=(0,) * (n - 1) + (1,))
        _, volume, power = ev.objectives(state)
        assert volume == 600 * (n - 1) + 400
        assert power == 4.0  # max-per-TAM proxy: 2.0 + 2.0
