"""The observability switchboard: enable/disable and no-op helpers."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _no_leaked_context():
    assert obs.current() is None, "a previous test leaked an obs context"
    yield
    obs.disable()


class TestSwitchboard:
    def test_disabled_by_default(self):
        assert obs.current() is None
        assert not obs.is_enabled()

    def test_enable_disable(self):
        active = obs.enable()
        assert obs.current() is active
        assert obs.is_enabled()
        obs.disable()
        assert obs.current() is None

    def test_enabled_scope_restores_previous(self):
        outer = obs.enable()
        with obs.enabled() as inner:
            assert obs.current() is inner
            assert inner is not outer
        assert obs.current() is outer

    def test_enabled_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with obs.enabled():
                raise RuntimeError("boom")
        assert obs.current() is None

    def test_env_requests_obs(self, monkeypatch):
        monkeypatch.delenv(obs.ENV_OBS, raising=False)
        assert not obs.env_requests_obs()
        monkeypatch.setenv(obs.ENV_OBS, "1")
        assert obs.env_requests_obs()
        monkeypatch.setenv(obs.ENV_OBS, "  ")
        assert not obs.env_requests_obs()


class TestHelpers:
    def test_noops_while_disabled(self):
        obs.inc("n")
        obs.observe("lat", 0.5)
        obs.set_gauge("g", 1.0)
        obs.instant("marker")
        with obs.span("region", core="c1") as attrs:
            attrs["extra"] = 1  # writes to the null span are discarded
        # Nothing anywhere records anything.
        assert obs.current() is None

    def test_helpers_hit_the_current_context(self):
        with obs.enabled() as active:
            obs.inc("n", 2)
            obs.observe("lat", 0.5)
            obs.set_gauge("g", 0.75)
            with obs.span("outer"):
                obs.instant("marker")
                with obs.span("inner") as attrs:
                    attrs["deep"] = True
        snap = active.registry.snapshot()
        assert snap["counters"]["n"] == 2
        assert snap["gauges"]["g"] == 0.75
        assert snap["histograms"]["lat"]["count"] == 1
        paths = [s.path for s in active.tracer.spans]
        assert "outer/inner" in paths
        assert "outer/marker" in paths

    def test_nested_scopes_do_not_cross_record(self):
        with obs.enabled() as outer:
            obs.inc("outer_only")
            with obs.enabled() as inner:
                obs.inc("inner_only")
            obs.inc("outer_only")
        assert outer.registry.snapshot()["counters"] == {"outer_only": 2}
        assert inner.registry.snapshot()["counters"] == {"inner_only": 1}
