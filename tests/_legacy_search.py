"""Verbatim pre-refactor architecture-search code (differential baseline).

This module freezes the search implementations exactly as they stood on
``main`` before the `repro.search` backend layer existed (the PR that
introduced `src/repro/search/`): the ``_exhaustive`` / ``_greedy``
private functions and the string-dispatching ``search_partitions`` from
``repro/core/partition.py``, and ``anneal_search`` from
``repro/core/anneal.py`` -- including its cooling-schedule bug, where
invalid moves hit ``continue`` before ``temperature *= cooling`` so the
effective schedule depended on the move-validity rate.

``tests/test_search_differential.py`` runs these against the refactored
backends:

* exhaustive and greedy must be **bit-identical** to this copy;
* anneal must be bit-identical to :func:`legacy_anneal_search_fixed`,
  which is this copy with *only* the cooling line moved (the one
  intentional behavior change, shipped as its own satellite fix).

Do not "improve" this file; it is a measurement instrument.  The only
edits vs. the historical code are renames (``legacy_`` prefixes) and
imports.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.partition import (
    AUTO_PARTITION_LIMIT,
    PartitionSearchResult,
    count_partitions,
    iter_partitions,
    partitions_list,
)
from repro.core.scheduler import (
    ScheduleOutcome,
    TimeFn,
    TimeTable,
    schedule_cores,
    schedule_cores_indexed,
    schedule_makespans_batch,
)
from repro.flags import use_scalar_kernels


def legacy_exhaustive(
    core_names: Sequence[str],
    total_width: int,
    time_of: TimeFn,
    max_parts: int,
    min_width: int,
) -> PartitionSearchResult:
    if use_scalar_kernels():
        best: ScheduleOutcome | None = None
        evaluated = 0
        for widths in iter_partitions(total_width, max_parts, min_width):
            outcome = schedule_cores(core_names, widths, time_of)
            evaluated += 1
            if best is None or outcome.makespan < best.makespan:
                best = outcome
        assert best is not None  # (total,) is always yielded
        return PartitionSearchResult(
            outcome=best, partitions_evaluated=evaluated, strategy="exhaustive"
        )

    partitions = partitions_list(total_width, max_parts, min_width)
    table = TimeTable(core_names, time_of)
    makespans = schedule_makespans_batch(table, partitions)
    winner = int(np.argmin(makespans))
    outcome = schedule_cores_indexed(table, partitions[winner])
    return PartitionSearchResult(
        outcome=outcome,
        partitions_evaluated=len(partitions),
        strategy="exhaustive",
    )


def _legacy_greedy_moves(
    widths: list[int], bottleneck: int, min_width: int
) -> list[list[int]]:
    candidates: list[list[int]] = []
    w = widths[bottleneck]
    if w >= 2 * min_width:
        half = w // 2
        split = widths[:bottleneck] + widths[bottleneck + 1 :] + [w - half, half]
        candidates.append(split)
    for donor in range(len(widths)):
        if donor == bottleneck or widths[donor] <= min_width:
            continue
        shifted = list(widths)
        shifted[donor] -= 1
        shifted[bottleneck] += 1
        candidates.append(shifted)
    if len(widths) >= 2:
        order = sorted(range(len(widths)), key=lambda i: widths[i])
        a, b = order[0], order[1]
        merged = [w for i, w in enumerate(widths) if i not in (a, b)]
        merged.append(widths[a] + widths[b])
        candidates.append(merged)
    return candidates


def _legacy_bottleneck_tam(
    core_names: Sequence[str], outcome: ScheduleOutcome, time_of: TimeFn
) -> int:
    loads = [0] * len(outcome.widths)
    for index, tam in enumerate(outcome.assignment):
        loads[tam] += time_of(core_names[index], outcome.widths[tam])
    return max(range(len(loads)), key=lambda i: loads[i])


def legacy_greedy(
    core_names: Sequence[str],
    total_width: int,
    time_of: TimeFn,
    max_parts: int,
    min_width: int,
) -> PartitionSearchResult:
    if use_scalar_kernels():
        schedule = lambda widths: schedule_cores(core_names, widths, time_of)  # noqa: E731
    else:
        table = TimeTable(core_names, time_of)
        schedule = lambda widths: schedule_cores_indexed(table, widths)  # noqa: E731
    current = [total_width]
    best = schedule(current)
    evaluated = 1
    improved = True
    while improved:
        improved = False
        bottleneck = _legacy_bottleneck_tam(core_names, best, time_of)
        for widths in _legacy_greedy_moves(list(best.widths), bottleneck, min_width):
            if len(widths) > max_parts or any(w < min_width for w in widths):
                continue
            outcome = schedule(sorted(widths, reverse=True))
            evaluated += 1
            if outcome.makespan < best.makespan:
                best = outcome
                improved = True
                break
    return PartitionSearchResult(
        outcome=best, partitions_evaluated=evaluated, strategy="greedy"
    )


def legacy_search_partitions(
    core_names: Sequence[str],
    total_width: int,
    time_of: TimeFn,
    *,
    max_parts: int | None = None,
    min_width: int = 1,
    strategy: str = "auto",
) -> PartitionSearchResult:
    if not core_names:
        raise ValueError("cannot design an architecture for zero cores")
    if max_parts is None:
        max_parts = min(len(core_names), 6)
    max_parts = min(max_parts, total_width // min_width)
    if max_parts < 1:
        raise ValueError(
            f"width {total_width} cannot host a TAM of min width {min_width}"
        )

    if strategy == "auto":
        size = count_partitions(total_width, max_parts, min_width)
        strategy = "exhaustive" if size <= AUTO_PARTITION_LIMIT else "greedy"
    if strategy == "exhaustive":
        return legacy_exhaustive(core_names, total_width, time_of, max_parts, min_width)
    if strategy == "greedy":
        return legacy_greedy(core_names, total_width, time_of, max_parts, min_width)
    if strategy == "anneal":
        return legacy_anneal_search(
            core_names,
            total_width,
            time_of,
            max_parts=max_parts,
            min_width=min_width,
        )
    raise ValueError(f"unknown strategy {strategy!r}")


def _legacy_makespan(
    core_names: Sequence[str],
    widths: list[int],
    assignment: list[int],
    time_of: TimeFn,
) -> int:
    loads = [0] * len(widths)
    for index, tam in enumerate(assignment):
        loads[tam] += time_of(core_names[index], widths[tam])
    return max(loads) if loads else 0


def _legacy_anneal(
    core_names: Sequence[str],
    total_width: int,
    time_of: TimeFn,
    *,
    max_parts: int | None,
    min_width: int,
    iterations: int,
    initial_temperature: float | None,
    cooling: float,
    seed: int,
    cool_every_iteration: bool,
) -> PartitionSearchResult:
    """The historical annealer; ``cool_every_iteration`` selects the
    buggy (False, as shipped) or fixed (True) cooling placement."""
    if not core_names:
        raise ValueError("cannot design an architecture for zero cores")
    if total_width < min_width:
        raise ValueError(
            f"width {total_width} cannot host a TAM of min width {min_width}"
        )
    if max_parts is None:
        max_parts = min(len(core_names), 6)
    max_parts = max(1, min(max_parts, total_width // min_width))
    if not 0.0 < cooling < 1.0:
        raise ValueError(f"cooling must be in (0, 1), got {cooling}")

    rng = np.random.default_rng(seed)
    names = list(core_names)
    n = len(names)

    widths: list[int] = [total_width]
    assignment: list[int] = [0] * n
    current = _legacy_makespan(names, widths, assignment, time_of)
    best = current
    best_state = (list(widths), list(assignment))
    if initial_temperature is None:
        initial_temperature = max(1.0, 0.2 * current)
    temperature = float(initial_temperature)
    evaluated = 1

    for _ in range(iterations):
        move = int(rng.integers(0, 4))
        new_widths = list(widths)
        new_assignment = list(assignment)
        if move == 0 and len(new_widths) > 1:
            index = int(rng.integers(0, n))
            new_assignment[index] = int(rng.integers(0, len(new_widths)))
        elif move == 1 and len(new_widths) > 1:
            donor = int(rng.integers(0, len(new_widths)))
            taker = int(rng.integers(0, len(new_widths)))
            if donor == taker or new_widths[donor] <= min_width:
                if cool_every_iteration:
                    temperature *= cooling
                continue
            new_widths[donor] -= 1
            new_widths[taker] += 1
        elif move == 2 and len(new_widths) < max_parts:
            victim = int(rng.integers(0, len(new_widths)))
            if new_widths[victim] < 2 * min_width:
                if cool_every_iteration:
                    temperature *= cooling
                continue
            half = int(rng.integers(min_width, new_widths[victim] - min_width + 1))
            new_widths[victim] -= half
            new_widths.append(half)
            fresh = len(new_widths) - 1
            for index in range(n):
                if new_assignment[index] == victim and rng.random() < 0.5:
                    new_assignment[index] = fresh
        elif move == 3 and len(new_widths) > 1:
            a = int(rng.integers(0, len(new_widths)))
            b = int(rng.integers(0, len(new_widths)))
            if a == b:
                if cool_every_iteration:
                    temperature *= cooling
                continue
            a, b = min(a, b), max(a, b)
            new_widths[a] += new_widths[b]
            del new_widths[b]
            for index in range(n):
                if new_assignment[index] == b:
                    new_assignment[index] = a
                elif new_assignment[index] > b:
                    new_assignment[index] -= 1
        else:
            if cool_every_iteration:
                temperature *= cooling
            continue

        candidate = _legacy_makespan(names, new_widths, new_assignment, time_of)
        evaluated += 1
        delta = candidate - current
        if delta <= 0 or rng.random() < math.exp(-delta / max(1e-9, temperature)):
            widths, assignment, current = new_widths, new_assignment, candidate
            if current < best:
                best = current
                best_state = (list(widths), list(assignment))
        temperature *= cooling

    best_widths, best_assignment = best_state
    order = sorted(
        range(len(best_widths)), key=lambda t: -best_widths[t]
    )
    remap = {old: new for new, old in enumerate(order)}
    outcome = ScheduleOutcome(
        widths=tuple(best_widths[t] for t in order),
        makespan=best,
        assignment=tuple(remap[t] for t in best_assignment),
    )
    return PartitionSearchResult(
        outcome=outcome, partitions_evaluated=evaluated, strategy="anneal"
    )


def legacy_anneal_search(
    core_names: Sequence[str],
    total_width: int,
    time_of: TimeFn,
    *,
    max_parts: int | None = None,
    min_width: int = 1,
    iterations: int = 4000,
    initial_temperature: float | None = None,
    cooling: float = 0.999,
    seed: int = 0,
) -> PartitionSearchResult:
    """Simulated annealing exactly as shipped (skewed cooling schedule)."""
    return _legacy_anneal(
        core_names,
        total_width,
        time_of,
        max_parts=max_parts,
        min_width=min_width,
        iterations=iterations,
        initial_temperature=initial_temperature,
        cooling=cooling,
        seed=seed,
        cool_every_iteration=False,
    )


def legacy_anneal_search_fixed(
    core_names: Sequence[str],
    total_width: int,
    time_of: TimeFn,
    *,
    max_parts: int | None = None,
    min_width: int = 1,
    iterations: int = 4000,
    initial_temperature: float | None = None,
    cooling: float = 0.999,
    seed: int = 0,
) -> PartitionSearchResult:
    """The shipped annealer with only the cooling line moved.

    This is the oracle for the refactored anneal backend: identical RNG
    stream and move/acceptance logic, cooling applied exactly once per
    iteration (valid proposal or not).
    """
    return _legacy_anneal(
        core_names,
        total_width,
        time_of,
        max_parts=max_parts,
        min_width=min_width,
        iterations=iterations,
        initial_temperature=initial_temperature,
        cooling=cooling,
        seed=seed,
        cool_every_iteration=True,
    )
