"""Seeded cross-planner fuzzing as a pytest suite.

The default run covers a modest fixed seed range so the suite stays
fast locally; CI sets ``REPRO_FUZZ_SEEDS`` (see the ``verification``
job) to widen the sweep.  Every seed is fully deterministic -- a
failure here reports the seed, and ``python scripts/fuzz_plans.py
--start SEED --seeds 1`` replays it outside pytest.

The suite also pins the concrete divergence the fuzzer flushed out of
``schedule_constrained`` (equal-finish tie broken by start time instead
of TAM index, breaking the documented reduction to the paper
scheduler), so the bug class stays covered even at the small seed
count.
"""

from __future__ import annotations

import os

import pytest

from repro.core.scheduler import schedule_cores
from repro.core.timeline import schedule_constrained
from repro.verify.fuzz import fuzz_one, random_precedence, random_soc

DEFAULT_SEEDS = 40
SEEDS = int(os.environ.get("REPRO_FUZZ_SEEDS", DEFAULT_SEEDS))


@pytest.mark.parametrize("seed", range(SEEDS))
def test_fuzz_seed_is_clean(seed):
    findings = fuzz_one(seed)
    assert not findings, "\n".join(f.format() for f in findings)


class TestGenerators:
    def test_random_soc_is_deterministic_per_seed(self):
        import random

        a = random_soc(random.Random(7))
        b = random_soc(random.Random(7))
        assert a == b

    def test_random_precedence_is_a_forward_dag(self):
        import random

        rng = random.Random(11)
        names = [f"c{i}" for i in range(6)]
        order = {name: i for i, name in enumerate(sorted(names))}
        for _ in range(50):
            for before, after in random_precedence(rng, names):
                assert order[before] < order[after]


class TestConstrainedTieBreakRegression:
    """Pins the fuzzer-found equal-finish tie-break divergence."""

    TIMES = {
        ("x", 1): 2, ("x", 2): 4,
        ("y", 1): 3, ("y", 2): 1,
        ("z", 1): 2, ("z", 2): 6,
    }

    @classmethod
    def time_of(cls, name, width):
        return cls.TIMES[(name, width)]

    def test_equal_finish_tie_matches_paper_scheduler(self):
        # z schedules first (longest at the widest TAM) onto TAM 0;
        # x then finishes at 4 on either TAM.  The paper scheduler
        # breaks the tie toward TAM 0; tie-breaking toward the earlier
        # *start* (TAM 1) used to leave y a strictly worse slate
        # (makespan 5 instead of 4).
        names = ["x", "y", "z"]
        widths = [1, 2]
        plain = schedule_cores(names, widths, self.time_of)
        constrained = schedule_constrained(names, widths, self.time_of)
        assert plain.makespan == 4
        assert constrained.makespan == plain.makespan
        assert constrained.tam_idle_cycles == 0
