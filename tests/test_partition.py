"""Unit tests for partition enumeration and the architecture search."""

import pytest

from repro.core.partition import (
    count_partitions,
    iter_partitions,
    search_partitions,
)


class TestIterPartitions:
    def test_single_tam_first(self):
        assert next(iter_partitions(7, 3)) == (7,)

    def test_known_enumeration(self):
        got = set(iter_partitions(5, 2))
        assert got == {(5,), (4, 1), (3, 2)}

    def test_min_width_respected(self):
        got = set(iter_partitions(7, 3, min_width=2))
        assert got == {(7,), (5, 2), (4, 3), (3, 2, 2)}

    def test_parts_non_increasing(self):
        for widths in iter_partitions(12, 4):
            assert all(a >= b for a, b in zip(widths, widths[1:]))

    def test_sums_correct(self):
        for widths in iter_partitions(12, 4, min_width=2):
            assert sum(widths) == 12

    def test_max_parts_respected(self):
        for widths in iter_partitions(10, 3):
            assert len(widths) <= 3

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            list(iter_partitions(0, 1))
        with pytest.raises(ValueError):
            list(iter_partitions(4, 0))
        with pytest.raises(ValueError):
            list(iter_partitions(4, 2, min_width=0))

    @pytest.mark.parametrize(
        "total,parts,min_width", [(10, 3, 1), (16, 4, 2), (24, 6, 1), (9, 9, 1)]
    )
    def test_count_matches_enumeration(self, total, parts, min_width):
        enumerated = len(list(iter_partitions(total, parts, min_width)))
        assert count_partitions(total, parts, min_width) == enumerated

    def test_no_duplicates(self):
        partitions = list(iter_partitions(15, 5))
        assert len(partitions) == len(set(partitions))

    def test_count_matches_enumeration_on_full_grid(self):
        # The closed-form counter and the generator must agree
        # everywhere, including degenerate corners (min_width > total,
        # a single part, max_parts far beyond what fits).
        for total in range(1, 13):
            for max_parts in range(1, 7):
                for min_width in range(1, 4):
                    enumerated = list(
                        iter_partitions(total, max_parts, min_width)
                    )
                    assert len(enumerated) == len(set(enumerated))
                    assert count_partitions(
                        total, max_parts, min_width
                    ) == len(enumerated), (total, max_parts, min_width)


class TestSearchPartitions:
    @staticmethod
    def divisible_work(work):
        return lambda name, width: -(-work[name] // width)

    def test_exhaustive_finds_optimum(self):
        # Two heavy cores, width 4: both the serial full-width plan and
        # the (2, 2) parallel plan reach 50; nothing beats it.
        work = {"a": 100, "b": 100}
        result = search_partitions(
            ["a", "b"], 4, self.divisible_work(work), strategy="exhaustive"
        )
        assert result.makespan == 50

    def test_single_core_prefers_full_width(self):
        work = {"a": 100}
        result = search_partitions(
            ["a"], 8, self.divisible_work(work), strategy="exhaustive"
        )
        assert result.widths == (8,)
        assert result.makespan == 13  # ceil(100/8)

    def test_greedy_improves_on_single_tam(self):
        work = {c: 60 for c in "abcdef"}
        single = search_partitions(
            list(work), 6, self.divisible_work(work), max_parts=1
        )
        greedy = search_partitions(
            list(work), 6, self.divisible_work(work), strategy="greedy"
        )
        assert greedy.makespan <= single.makespan

    def test_greedy_not_far_from_exhaustive(self):
        work = {"a": 120, "b": 80, "c": 60, "d": 20}
        exact = search_partitions(
            list(work), 8, self.divisible_work(work), strategy="exhaustive"
        )
        greedy = search_partitions(
            list(work), 8, self.divisible_work(work), strategy="greedy"
        )
        assert greedy.makespan <= exact.makespan * 1.5

    def test_auto_picks_exhaustive_for_small(self):
        work = {"a": 10, "b": 10}
        result = search_partitions(["a", "b"], 6, self.divisible_work(work))
        assert result.strategy == "exhaustive"

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="strategy"):
            search_partitions(["a"], 4, lambda n, w: 1, strategy="magic")

    def test_no_cores_rejected(self):
        with pytest.raises(ValueError):
            search_partitions([], 4, lambda n, w: 1)

    def test_min_width_larger_than_budget_rejected(self):
        with pytest.raises(ValueError):
            search_partitions(["a"], 2, lambda n, w: 1, min_width=3)

    def test_partitions_evaluated_counted(self):
        work = {"a": 10}
        result = search_partitions(
            ["a"], 5, self.divisible_work(work), strategy="exhaustive", max_parts=2
        )
        assert result.partitions_evaluated == count_partitions(5, 2)
