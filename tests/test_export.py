"""Tests for JSON export/import of planned architectures."""

import json

import pytest

import repro
from repro.reporting.export import (
    SCHEMA_VERSION,
    architecture_from_json,
    architecture_to_dict,
    architecture_to_json,
    result_to_dict,
    result_to_json,
)


@pytest.fixture(scope="module")
def plan():
    soc = repro.load_design("d695")
    return repro.optimize_soc(soc, 12, compression="auto")


class TestExport:
    def test_dict_fields(self, plan):
        data = architecture_to_dict(plan.architecture)
        assert data["schema"] == SCHEMA_VERSION
        assert data["soc"] == "d695"
        assert data["test_time"] == plan.test_time
        assert len(data["schedule"]) == 10

    def test_schedule_sorted_by_tam_then_start(self, plan):
        data = architecture_to_dict(plan.architecture)
        keys = [(e["tam"], e["start"]) for e in data["schedule"]]
        assert keys == sorted(keys)

    def test_json_parses(self, plan):
        parsed = json.loads(architecture_to_json(plan.architecture))
        assert parsed["soc"] == "d695"

    def test_result_provenance(self, plan):
        data = result_to_dict(plan)
        assert data["optimizer"]["compression"] == "auto"
        assert data["optimizer"]["width_budget"] == 12
        assert data["optimizer"]["partitions_evaluated"] > 0
        json.loads(result_to_json(plan))  # round-trips through json


class TestImport:
    def test_roundtrip_preserves_everything(self, plan):
        text = architecture_to_json(plan.architecture)
        rebuilt = architecture_from_json(text)
        assert rebuilt.soc_name == plan.architecture.soc_name
        assert rebuilt.test_time == plan.test_time
        assert rebuilt.test_data_volume == plan.architecture.test_data_volume
        assert rebuilt.tams == plan.architecture.tams
        assert set(rebuilt.cores_per_tam.items()) == set(
            plan.architecture.cores_per_tam.items()
        )

    def test_technique_survives(self, plan):
        rebuilt = architecture_from_json(architecture_to_json(plan.architecture))
        for name in ("s5378", "s38417"):
            assert (
                rebuilt.config_for(name).technique
                == plan.architecture.config_for(name).technique
            )

    def test_rejects_unknown_schema(self, plan):
        data = architecture_to_dict(plan.architecture)
        data["schema"] = 99
        with pytest.raises(ValueError, match="unsupported schema"):
            architecture_from_json(json.dumps(data))

    def test_rebuilt_validates_overlaps(self, plan):
        """Corrupt timing must be caught by the architecture invariants."""
        data = architecture_to_dict(plan.architecture)
        busiest = max(
            {e["tam"] for e in data["schedule"]},
            key=lambda t: sum(1 for e in data["schedule"] if e["tam"] == t),
        )
        slots = [e for e in data["schedule"] if e["tam"] == busiest]
        if len(slots) >= 2:
            duration = slots[1]["end"] - slots[1]["start"]
            slots[1]["start"] = slots[0]["start"]
            slots[1]["end"] = slots[0]["start"] + duration
            with pytest.raises(ValueError, match="overlap"):
                architecture_from_json(json.dumps(data))
