"""Hardening tests for :func:`repro.parallel.resolve_jobs`.

``REPRO_JOBS`` is a convenience channel users type by hand; every
malformed value must degrade to serial execution with a warning, never
raise, and never spawn an absurd number of workers.
"""

from __future__ import annotations

import os

import pytest

from repro.parallel import ENV_JOBS, MAX_JOBS, resolve_jobs


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv(ENV_JOBS, raising=False)


class TestExplicitArgument:
    def test_none_without_env_is_serial(self):
        assert resolve_jobs(None) == 1

    def test_positive_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_means_cpu_count(self):
        assert resolve_jobs(-2) == (os.cpu_count() or 1)

    def test_max_jobs_boundary_allowed(self):
        assert resolve_jobs(MAX_JOBS) == MAX_JOBS

    def test_huge_explicit_value_warns_and_runs_serially(self):
        with pytest.warns(RuntimeWarning, match="implausible"):
            assert resolve_jobs(MAX_JOBS + 1) == 1


class TestEnvValues:
    def _env(self, monkeypatch, value: str) -> None:
        monkeypatch.setenv(ENV_JOBS, value)

    def test_env_integer(self, monkeypatch):
        self._env(monkeypatch, "4")
        assert resolve_jobs() == 4

    def test_env_with_surrounding_whitespace(self, monkeypatch):
        self._env(monkeypatch, "  4  ")
        assert resolve_jobs() == 4

    def test_env_pure_whitespace_is_unset(self, monkeypatch):
        # Whitespace is indistinguishable from "not configured": serial,
        # and no warning (nothing was plausibly intended).
        self._env(monkeypatch, "   ")
        assert resolve_jobs() == 1

    def test_env_empty_is_unset(self, monkeypatch):
        self._env(monkeypatch, "")
        assert resolve_jobs() == 1

    @pytest.mark.parametrize(
        "value", ["abc", "2.5", "1e3", "4,000", "0x10", "two"]
    )
    def test_env_non_integer_warns_and_runs_serially(self, monkeypatch, value):
        self._env(monkeypatch, value)
        with pytest.warns(RuntimeWarning, match="non-integer"):
            assert resolve_jobs() == 1

    @pytest.mark.parametrize(
        "value", [str(MAX_JOBS + 1), "1000000", "10000000000000000000"]
    )
    def test_env_huge_warns_and_runs_serially(self, monkeypatch, value):
        self._env(monkeypatch, value)
        with pytest.warns(RuntimeWarning, match="implausible"):
            assert resolve_jobs() == 1

    def test_env_zero_means_cpu_count(self, monkeypatch):
        self._env(monkeypatch, "0")
        assert resolve_jobs() == (os.cpu_count() or 1)

    def test_explicit_argument_beats_env(self, monkeypatch):
        self._env(monkeypatch, "7")
        assert resolve_jobs(2) == 2

    def test_malformed_env_never_raises(self, monkeypatch):
        for value in ["garbage", "9" * 40, "-", "∞", "NaN"]:
            self._env(monkeypatch, value)
            with pytest.warns(RuntimeWarning):
                assert resolve_jobs() >= 1


class TestStructuredLogRecords:
    """Each warning is mirrored as a structured log record, so service
    operators see misconfiguration in the JSON log stream without
    having to capture Python warnings."""

    def _records(self, stream):
        from repro.obs.logging import parse_json_log_line

        return [
            parse_json_log_line(line)
            for line in stream.getvalue().strip().splitlines()
        ]

    def _capture(self):
        import io

        from repro.obs.logging import configure_json_logging

        stream = io.StringIO()
        handler = configure_json_logging(stream)
        return stream, handler

    def test_non_integer_env_logs_jobs_env_ignored(self, monkeypatch):
        from repro.obs.logging import remove_json_logging

        monkeypatch.setenv(ENV_JOBS, "abc")
        stream, handler = self._capture()
        try:
            with pytest.warns(RuntimeWarning):
                resolve_jobs()
        finally:
            remove_json_logging(handler)
        events = {r["event"]: r for r in self._records(stream)}
        assert events["jobs-env-ignored"]["value"] == "abc"
        assert events["jobs-env-ignored"]["fallback"] == 1
        assert events["jobs-env-ignored"]["level"] == "warning"

    def test_implausible_count_logs_jobs_implausible(self, monkeypatch):
        from repro.obs.logging import remove_json_logging

        stream, handler = self._capture()
        try:
            with pytest.warns(RuntimeWarning):
                resolve_jobs(MAX_JOBS + 1)
        finally:
            remove_json_logging(handler)
        events = {r["event"]: r for r in self._records(stream)}
        assert events["jobs-implausible"]["requested"] == MAX_JOBS + 1
        assert events["jobs-implausible"]["max"] == MAX_JOBS
