"""Tests for the exact branch-and-bound reference scheduler."""

import itertools

import pytest

from repro.core.optimal import MAX_CORES, OptimalOutcome, optimal_schedule
from repro.core.partition import iter_partitions
from repro.core.scheduler import schedule_cores


def divisible(work):
    return lambda name, width: -(-work[name] // width)


def brute_force(names, total_width, time_of, max_parts, min_width=1):
    """Reference: enumerate partitions x all k^n assignments."""
    best = None
    for widths in iter_partitions(total_width, max_parts, min_width):
        k = len(widths)
        for assignment in itertools.product(range(k), repeat=len(names)):
            loads = [0] * k
            for name, tam in zip(names, assignment):
                loads[tam] += time_of(name, widths[tam])
            span = max(loads)
            if best is None or span < best:
                best = span
    return best


class TestOptimalSchedule:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            optimal_schedule([], 4, lambda n, w: 1)

    def test_rejects_large_instances(self):
        names = [f"c{i}" for i in range(MAX_CORES + 1)]
        with pytest.raises(ValueError, match="at most"):
            optimal_schedule(names, 4, lambda n, w: 1)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        names = [f"c{i}" for i in range(n)]
        work = {name: int(rng.integers(10, 200)) for name in names}
        total_width = int(rng.integers(3, 8))
        time_of = divisible(work)
        outcome = optimal_schedule(names, total_width, time_of, max_parts=3)
        assert outcome.makespan == brute_force(
            names, total_width, time_of, max_parts=3
        )

    def test_assignment_realizes_makespan(self):
        work = {"a": 100, "b": 90, "c": 40, "d": 10}
        names = list(work)
        outcome = optimal_schedule(names, 6, divisible(work), max_parts=3)
        loads = [0] * len(outcome.widths)
        for name, tam in zip(names, outcome.assignment):
            loads[tam] += divisible(work)(name, outcome.widths[tam])
        assert max(loads) == outcome.makespan

    def test_heuristic_never_beats_optimal(self):
        work = {"a": 120, "b": 77, "c": 55, "d": 31, "e": 18}
        names = list(work)
        time_of = divisible(work)
        exact = optimal_schedule(names, 8, time_of, max_parts=4)
        for widths in iter_partitions(8, 4):
            heuristic = schedule_cores(names, widths, time_of)
            assert heuristic.makespan >= exact.makespan

    def test_heuristic_usually_close(self):
        """The list heuristic should land within 15% on small instances."""
        import numpy as np

        worst = 1.0
        for seed in range(8):
            rng = np.random.default_rng(100 + seed)
            names = [f"c{i}" for i in range(5)]
            work = {name: int(rng.integers(20, 300)) for name in names}
            time_of = divisible(work)
            exact = optimal_schedule(names, 6, time_of, max_parts=3)
            best_heuristic = min(
                schedule_cores(names, widths, time_of).makespan
                for widths in iter_partitions(6, 3)
            )
            worst = max(worst, best_heuristic / exact.makespan)
        assert worst <= 1.15

    def test_returns_outcome_type(self):
        outcome = optimal_schedule(["a"], 3, lambda n, w: 10 - w)
        assert isinstance(outcome, OptimalOutcome)
        assert outcome.widths == (3,)
        assert outcome.nodes_explored > 0
