"""Codec property battery: round-trips, closed-form lengths, contracts.

The run-length codecs (Golomb, FDR) were vectorized on top of the
shared zero-run extractor (:mod:`repro.compression.runlength`); these
properties pin everything the rewrite must preserve:

* ``decode(encode(x), len(x)) == x`` for any 0/1 stream;
* ``encoded_length(x) == len(encode(x))`` -- the closed-form accounting
  equals the materialized bit stream;
* the vectorized ``encode`` equals the retained per-bit
  ``encode_reference``;
* streams with don't-care cells (X = 2) are rejected by *both*
  ``encode`` and ``encoded_length``.  The length accountings used to
  skip validation and silently treat X as 0 -- a contract gap the
  vectorization surfaced; the rejection tests here failed before the
  fix;
* FDR's group index is exact integer arithmetic.  The old
  ``floor(log2(L + 2))`` float path rounds up once ``L + 2`` is within
  float-mantissa exhaustion of a power of two (``L = 2**53 - 3``),
  assigning the run one group too high; ``test_group_of_huge_runs``
  failed before the fix and pins both the scalar and the vectorized
  form.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.fdr import FdrCode, _group_of, run_groups
from repro.compression.golomb import GolombCode, best_golomb_parameter
from repro.compression.runlength import zero_run_lengths

bitstream = st.lists(st.integers(0, 1), min_size=0, max_size=400).map(
    lambda bits: np.array(bits, dtype=np.int8)
)

CODECS = [GolombCode(2), GolombCode(8), GolombCode(64), FdrCode()]


def _xlike_streams(rng):
    """Cube-flavored streams: mostly X with sparse care bits."""
    for density in (0.0, 0.02, 0.3, 0.9):
        care = rng.random(700) < density
        ones = rng.random(700) < 0.4
        stream = np.full(700, 2, dtype=np.int8)
        stream[care] = ones[care].astype(np.int8)
        yield stream


# ---------------------------------------------------------------------------
# Zero-run extraction.
# ---------------------------------------------------------------------------


class TestZeroRunLengths:
    @given(bitstream)
    def test_runs_reconstruct_the_stream(self, data):
        runs = zero_run_lengths(data)
        rebuilt: list[int] = []
        for run in runs.tolist():
            rebuilt.extend([0] * run + [1])
        # The final run's virtual terminating 1 (or the terminator of a
        # stream ending in 1) may fall past the stream end; trim.
        assert rebuilt[: data.size] == data.tolist()

    @given(bitstream)
    def test_run_count_and_mass(self, data):
        runs = zero_run_lengths(data)
        assert int(runs.sum()) == int((data == 0).sum())
        ones = int((data == 1).sum())
        assert len(runs) in (ones, ones + 1)

    def test_rejects_dont_care_cells(self):
        with pytest.raises(ValueError):
            zero_run_lengths(np.array([0, 1, 2], dtype=np.int8))
        with pytest.raises(ValueError):
            zero_run_lengths(np.array([0, -1], dtype=np.int8))

    def test_empty_stream(self):
        assert zero_run_lengths(np.zeros(0, dtype=np.int8)).size == 0


# ---------------------------------------------------------------------------
# Shared codec properties.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("codec", CODECS, ids=lambda c: repr(c))
class TestCodecProperties:
    @given(data=bitstream)
    def test_roundtrip(self, codec, data):
        assert np.array_equal(codec.decode(codec.encode(data), data.size), data)

    @given(data=bitstream)
    def test_encoded_length_matches_encode(self, codec, data):
        assert codec.encoded_length(data) == len(codec.encode(data))

    @given(data=bitstream)
    def test_encode_matches_reference(self, codec, data):
        assert codec.encode(data) == codec.encode_reference(data)

    def test_dense_random_streams(self, codec, rng):
        for density in (0.01, 0.1, 0.5, 0.95):
            data = (rng.random(3000) < density).astype(np.int8)
            bits = codec.encode(data)
            assert bits == codec.encode_reference(data)
            assert codec.encoded_length(data) == len(bits)
            assert np.array_equal(codec.decode(bits, data.size), data)


# ---------------------------------------------------------------------------
# The X-validation contract (regression: failed before the fix).
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("codec", CODECS, ids=lambda c: repr(c))
class TestDontCareRejection:
    def test_encode_rejects_x(self, codec, rng):
        for stream in _xlike_streams(rng):
            if not (stream == 2).any():
                continue
            with pytest.raises(ValueError):
                codec.encode(stream)

    def test_encoded_length_rejects_x_like_encode(self, codec, rng):
        """``encoded_length`` used to count X cells as zeros and return
        a length for streams ``encode`` rejects."""
        for stream in _xlike_streams(rng):
            if not (stream == 2).any():
                continue
            with pytest.raises(ValueError):
                codec.encoded_length(stream)

    def test_zero_filled_stream_is_accepted(self, codec, rng):
        """Filling the don't-cares first (the TDC 0-fill) stays valid."""
        for stream in _xlike_streams(rng):
            filled = np.where(stream == 2, 0, stream).astype(np.int8)
            assert codec.encoded_length(filled) == len(codec.encode(filled))


# ---------------------------------------------------------------------------
# FDR group arithmetic (regression: failed before the fix).
# ---------------------------------------------------------------------------


class TestFdrGroups:
    def test_group_of_huge_runs(self):
        """Integer group index where the float log2 rounded up.

        ``2**53 - 1`` is the first odd integer float64 cannot represent:
        ``log2(float(2**53 - 1)) == 53.0`` exactly, so the old
        ``floor(log2(L + 2))`` put the run ``L = 2**53 - 3`` in group 53
        although ``L + 2 < 2**53``.
        """
        assert _group_of(2**53 - 3) == 52
        assert _group_of(2**53 - 2) == 53

    @pytest.mark.parametrize("k", [1, 2, 10, 31, 52, 60])
    def test_group_boundaries_scalar_and_vector(self, k):
        # Group A_k covers run lengths 2^k - 2 .. 2^(k+1) - 3.
        lengths = np.array(
            [2**k - 2, 2**k - 1, 2 ** (k + 1) - 4, 2 ** (k + 1) - 3],
            dtype=np.int64,
        )
        lengths = lengths[lengths >= 0]
        expected = [k] * len(lengths)
        assert [_group_of(int(v)) for v in lengths] == expected
        assert run_groups(lengths).tolist() == expected

    @given(st.integers(0, 2**62))
    def test_vectorized_matches_scalar(self, length):
        assert run_groups(np.array([length])).tolist() == [_group_of(length)]

    def test_run_cost_matches_encode_run(self):
        code = FdrCode()
        for length in (0, 1, 2, 5, 6, 13, 14, 1000, 2**20 - 2):
            assert code.run_cost(length) == len(code.encode_run(length))


# ---------------------------------------------------------------------------
# Batched Golomb parameter sweep.
# ---------------------------------------------------------------------------


class TestBestGolombParameter:
    def test_matches_per_candidate_scoring(self, rng):
        candidates = (2, 4, 8, 16, 32, 64)
        for density in (0.005, 0.05, 0.3):
            data = (rng.random(4000) < density).astype(np.int8)
            best = best_golomb_parameter(data, candidates)
            scores = {
                b: GolombCode(b).encoded_length(data) for b in candidates
            }
            # First minimum wins, matching the batched argmin tie-break.
            expected = min(candidates, key=lambda b: (scores[b], candidates.index(b)))
            assert best.b == expected

    def test_rejects_empty_candidates(self):
        with pytest.raises(ValueError):
            best_golomb_parameter(np.zeros(4, dtype=np.int8), ())
