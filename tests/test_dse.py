"""Unit tests for the per-core design-space exploration layer."""

import pytest

from repro.compression.cubes import generate_cubes
from repro.compression.selective import code_parameters, slice_costs, slice_width_range
from repro.explore.dse import CoreAnalysis, analysis_for, clear_analysis_cache
from repro.soc.core import Core
from repro.wrapper.design import design_wrapper


class TestModeSelection:
    def test_small_core_analyzed_exactly(self, small_core):
        assert CoreAnalysis(small_core).mode == "exact"

    def test_huge_core_estimated(self):
        huge = Core(
            name="huge",
            inputs=10,
            outputs=10,
            scan_chain_lengths=(500,) * 100,
            patterns=5000,
            care_bit_density=0.02,
        )
        assert CoreAnalysis(huge).mode == "estimate"

    def test_explicit_mode_respected(self, small_core):
        assert CoreAnalysis(small_core, mode="estimate").mode == "estimate"

    def test_unknown_mode_rejected(self, small_core):
        with pytest.raises(ValueError):
            CoreAnalysis(small_core, mode="guess")

    def test_cubes_unavailable_in_estimate_mode(self, small_core):
        analysis = CoreAnalysis(small_core, mode="estimate")
        with pytest.raises(RuntimeError, match="estimate mode"):
            analysis.cubes


class TestUncompressedPoints:
    def test_matches_wrapper_timing(self, small_core):
        from repro.wrapper.timing import uncompressed_test_time

        analysis = CoreAnalysis(small_core)
        for w in (1, 3, 7):
            assert (
                analysis.uncompressed_point(w).test_time
                == uncompressed_test_time(small_core, w)
            )

    def test_rejects_zero_width(self, small_core):
        with pytest.raises(ValueError):
            CoreAnalysis(small_core).uncompressed_point(0)

    def test_cached(self, small_core):
        analysis = CoreAnalysis(small_core)
        assert analysis.uncompressed_point(4) is analysis.uncompressed_point(4)


class TestCompressedPoints:
    def test_exact_matches_direct_encoding(self, small_core):
        analysis = CoreAnalysis(small_core, mode="exact")
        m = 4
        point = analysis.compressed_point(m)
        design = design_wrapper(small_core, m)
        cubes = generate_cubes(small_core)
        codewords = int(slice_costs(cubes.slices(design)).sum())
        assert point.codewords == codewords
        expected_time = codewords + small_core.patterns + min(
            design.scan_in_max, design.scan_out_max
        )
        assert point.test_time == expected_time
        assert point.volume == codewords * code_parameters(m)[1]
        assert point.exact

    def test_estimate_mode_flag(self, small_core):
        analysis = CoreAnalysis(small_core, mode="estimate")
        assert not analysis.compressed_point(4).exact

    def test_w_alias(self, small_core):
        point = CoreAnalysis(small_core).compressed_point(6)
        assert point.w == point.code_width == code_parameters(6)[1]

    def test_rejects_zero_m(self, small_core):
        with pytest.raises(ValueError):
            CoreAnalysis(small_core).compressed_point(0)


class TestGrids:
    def test_small_range_fully_enumerated(self, small_core):
        analysis = CoreAnalysis(small_core)
        # w=5 -> m in [4, 7]
        assert analysis.m_grid_for_code_width(5) == [4, 5, 6, 7]

    def test_grid_limited(self):
        core = Core(
            name="wide",
            inputs=50,
            outputs=50,
            scan_chain_lengths=(30,) * 300,
            patterns=10,
            care_bit_density=0.05,
        )
        analysis = CoreAnalysis(core, grid=16, mode="estimate")
        grid = analysis.m_grid_for_code_width(10)  # m in [128, 255]
        assert len(grid) <= 17
        assert grid[0] == 128 and grid[-1] == 255
        assert 300 not in grid  # out of the w=10 range

    def test_grid_includes_chain_count_when_in_range(self):
        core = Core(
            name="wide",
            inputs=50,
            outputs=50,
            scan_chain_lengths=(30,) * 200,
            patterns=10,
            care_bit_density=0.05,
        )
        analysis = CoreAnalysis(core, grid=8, mode="estimate")
        assert 200 in analysis.m_grid_for_code_width(10)

    def test_beyond_useful_range_gives_single_point(self, small_core):
        # small_core max useful = 10 -> w(10) = 6; w = 8 has m in [32, 63].
        analysis = CoreAnalysis(small_core)
        assert analysis.m_grid_for_code_width(8) == [32]

    def test_beyond_max_code_width_empty(self, small_core):
        analysis = CoreAnalysis(small_core)
        assert analysis.m_grid_for_code_width(analysis.max_code_width + 1) == []


class TestBestLookups:
    def test_best_for_code_width_is_minimum(self, small_core):
        analysis = CoreAnalysis(small_core)
        best = analysis.best_for_code_width(5)
        sweep = analysis.sweep_code_width(5)
        assert best.test_time == min(p.test_time for p in sweep)

    def test_best_for_tam_monotone(self, sparse_core):
        analysis = CoreAnalysis(sparse_core)
        times = [
            analysis.best_compressed_for_tam(w).test_time for w in range(3, 12)
        ]
        assert all(b <= a for a, b in zip(times, times[1:]))

    def test_best_for_tam_none_below_min_width(self, small_core):
        analysis = CoreAnalysis(small_core)
        assert analysis.best_compressed_for_tam(2) is None

    def test_time_at_tam_fallback_to_uncompressed(self, small_core):
        analysis = CoreAnalysis(small_core)
        assert (
            analysis.time_at_tam(2, compression=True)
            == analysis.uncompressed_point(2).test_time
        )

    def test_time_at_tam_compressed_uses_best(self, sparse_core):
        analysis = CoreAnalysis(sparse_core)
        assert (
            analysis.time_at_tam(8, compression=True)
            == analysis.best_compressed_for_tam(8).test_time
        )

    def test_volume_at_tam(self, sparse_core):
        analysis = CoreAnalysis(sparse_core)
        best = analysis.best_compressed_for_tam(8)
        assert analysis.volume_at_tam(8, compression=True) == best.volume
        plain = analysis.uncompressed_point(8)
        assert analysis.volume_at_tam(8, compression=False) == plain.volume

    def test_relative_spread_in_unit_interval(self, sparse_core):
        analysis = CoreAnalysis(sparse_core)
        spread = analysis.relative_spread(6)
        assert 0.0 <= spread < 1.0

    def test_relative_spread_rejects_empty(self, small_core):
        analysis = CoreAnalysis(small_core)
        with pytest.raises(ValueError):
            analysis.relative_spread(analysis.max_code_width + 2)


class TestCompressionPaysOnSparseCores:
    def test_sparse_core_compresses(self, sparse_core):
        analysis = CoreAnalysis(sparse_core)
        w = 6
        compressed = analysis.best_compressed_for_tam(w).test_time
        plain = analysis.uncompressed_point(w).test_time
        assert compressed < plain

    def test_dense_core_may_not_compress(self, comb_core):
        # 70% care density: compression should not be forced to win.
        analysis = CoreAnalysis(comb_core)
        assert analysis.time_at_tam(4, compression=False) > 0


class TestAnalysisCache:
    def test_shared_instance(self, small_core):
        a = analysis_for(small_core)
        b = analysis_for(small_core)
        assert a is b

    def test_cleared(self, small_core):
        a = analysis_for(small_core)
        clear_analysis_cache()
        assert analysis_for(small_core) is not a

    def test_different_params_different_instances(self, small_core):
        assert analysis_for(small_core, grid=8) is not analysis_for(
            small_core, grid=16
        )
