"""Unit tests for the Pareto utilities."""

from repro.explore.pareto import is_non_increasing, non_monotonic_indices, pareto_front


class TestParetoFront:
    def test_dominated_points_removed(self):
        points = [(1, 10), (2, 8), (3, 9), (4, 5)]  # (resource, cost)
        front = pareto_front(points, cost=lambda p: p[1], resource=lambda p: p[0])
        assert (3, 9) not in front
        assert front == [(1, 10), (2, 8), (4, 5)]

    def test_equal_resource_keeps_cheaper(self):
        points = [(2, 8), (2, 5)]
        front = pareto_front(points, cost=lambda p: p[1], resource=lambda p: p[0])
        assert front == [(2, 5)]

    def test_empty(self):
        assert pareto_front([], cost=lambda p: p, resource=lambda p: p) == []

    def test_single(self):
        assert pareto_front(
            [(1, 1)], cost=lambda p: p[1], resource=lambda p: p[0]
        ) == [(1, 1)]

    def test_front_costs_strictly_decrease(self):
        points = [(i, c) for i, c in enumerate([9, 9, 7, 8, 7, 3, 4])]
        front = pareto_front(points, cost=lambda p: p[1], resource=lambda p: p[0])
        costs = [c for _, c in front]
        assert all(b < a for a, b in zip(costs, costs[1:]))


class TestMonotonicity:
    def test_is_non_increasing(self):
        assert is_non_increasing([5, 5, 3, 1])
        assert not is_non_increasing([5, 3, 4])
        assert is_non_increasing([])
        assert is_non_increasing([7])

    def test_non_monotonic_indices(self):
        assert non_monotonic_indices([5, 3, 4, 4, 6]) == [1, 3]
        assert non_monotonic_indices([3, 2, 1]) == []
