"""Unit tests for the Pareto utilities."""

from repro.explore.pareto import is_non_increasing, non_monotonic_indices, pareto_front


class TestParetoFront:
    def test_dominated_points_removed(self):
        points = [(1, 10), (2, 8), (3, 9), (4, 5)]  # (resource, cost)
        front = pareto_front(points, cost=lambda p: p[1], resource=lambda p: p[0])
        assert (3, 9) not in front
        assert front == [(1, 10), (2, 8), (4, 5)]

    def test_equal_resource_keeps_cheaper(self):
        points = [(2, 8), (2, 5)]
        front = pareto_front(points, cost=lambda p: p[1], resource=lambda p: p[0])
        assert front == [(2, 5)]

    def test_empty(self):
        assert pareto_front([], cost=lambda p: p, resource=lambda p: p) == []

    def test_single(self):
        assert pareto_front(
            [(1, 1)], cost=lambda p: p[1], resource=lambda p: p[0]
        ) == [(1, 1)]

    def test_front_costs_strictly_decrease(self):
        points = [(i, c) for i, c in enumerate([9, 9, 7, 8, 7, 3, 4])]
        front = pareto_front(points, cost=lambda p: p[1], resource=lambda p: p[0])
        costs = [c for _, c in front]
        assert all(b < a for a, b in zip(costs, costs[1:]))

    def test_equal_resource_equal_cost_keeps_first(self):
        # Items carry an id so the duplicates are distinguishable.
        points = [("first", 2, 5), ("second", 2, 5)]
        front = pareto_front(
            points, cost=lambda p: p[2], resource=lambda p: p[1]
        )
        assert front == [("first", 2, 5)]

    def test_equal_cost_larger_resource_dropped(self):
        # The wider design buys nothing: same cost, more resource.
        points = [(1, 5), (3, 5)]
        front = pareto_front(points, cost=lambda p: p[1], resource=lambda p: p[0])
        assert front == [(1, 5)]

    def test_brute_force_equivalence(self):
        # The linear sweep must agree with the O(n^2) definition of
        # domination (no other item <= in both axes, with at least one
        # strict, first-occurrence ties) on a tie-rich input.
        import itertools

        values = [1, 2, 3]
        for combo in itertools.product(values, repeat=4):
            points = [(r, c) for r, c in zip([1, 1, 2, 2], combo)]
            front = pareto_front(
                points, cost=lambda p: p[1], resource=lambda p: p[0]
            )
            costs = [c for _, c in front]
            resources = [r for r, _ in front]
            assert costs == sorted(costs, reverse=True)
            assert all(b < a for a, b in zip(costs, costs[1:]))
            assert resources == sorted(resources)
            for kept in front:
                assert not any(
                    other is not kept
                    and other[0] <= kept[0]
                    and other[1] <= kept[1]
                    and (other[0] < kept[0] or other[1] < kept[1])
                    for other in points
                ), (points, front)


class TestMonotonicity:
    def test_is_non_increasing(self):
        assert is_non_increasing([5, 5, 3, 1])
        assert not is_non_increasing([5, 3, 4])
        assert is_non_increasing([])
        assert is_non_increasing([7])

    def test_non_monotonic_indices(self):
        assert non_monotonic_indices([5, 3, 4, 4, 6]) == [1, 3]
        assert non_monotonic_indices([3, 2, 1]) == []
