"""Tests for preemptive constrained scheduling."""

import pytest

from repro.core.preemption import (
    Segment,
    _feasible_windows,
    schedule_preemptive,
)
from repro.core.timeline import PrecedenceError, schedule_constrained


def flat_time(times):
    return lambda name, width: times[name]


def _no_tam_overlap(schedule):
    by_tam = {}
    for segment in schedule.segments:
        by_tam.setdefault(segment.tam, []).append(segment)
    for items in by_tam.values():
        items.sort(key=lambda s: s.start)
        for a, b in zip(items, items[1:]):
            if b.start < a.end:
                return False
    return True


def _durations_complete(schedule, times, widths):
    for name, duration in times.items():
        segments = schedule.segments_for(name)
        tams = {s.tam for s in segments}
        assert len(tams) == 1, "a core must stay on one TAM"
        total = sum(s.duration for s in segments)
        # Flat time function: duration identical on every TAM.
        assert total == duration, name


class TestValidation:
    def test_requires_tam(self):
        with pytest.raises(ValueError):
            schedule_preemptive(["a"], [], flat_time({"a": 1}))

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            schedule_preemptive(["a"], [0], flat_time({"a": 1}))

    def test_rejects_zero_segments(self):
        with pytest.raises(ValueError):
            schedule_preemptive(["a"], [1], flat_time({"a": 1}), max_segments=0)

    def test_precedence_validated(self):
        with pytest.raises(PrecedenceError):
            schedule_preemptive(
                ["a"], [1], flat_time({"a": 1}), precedence=[("a", "a")]
            )

    def test_infeasible_power(self):
        with pytest.raises(ValueError, match="exceeds"):
            schedule_preemptive(
                ["a"],
                [1],
                flat_time({"a": 1}),
                power_of={"a": 9.0},
                power_budget=5.0,
            )


class TestUnconstrainedEquivalence:
    def test_matches_non_preemptive_without_constraints(self):
        times = {"a": 9, "b": 7, "c": 5, "d": 3}
        widths = [1, 1]
        baseline = schedule_constrained(list(times), widths, flat_time(times))
        preemptive = schedule_preemptive(list(times), widths, flat_time(times))
        assert preemptive.makespan == baseline.makespan
        assert preemptive.preemption_count == 0

    def test_segments_cover_durations(self):
        times = {"a": 4, "b": 6, "c": 2}
        schedule = schedule_preemptive(list(times), [1], flat_time(times))
        _durations_complete(schedule, times, [1])
        assert _no_tam_overlap(schedule)


class TestPreemptionUnderPower:
    def _instance(self):
        # One long cool test and two short hot tests: the hot ones cannot
        # overlap each other; preemption lets the long test wrap around.
        times = {"long": 20, "hot1": 6, "hot2": 6}
        power = {"long": 2.0, "hot1": 5.0, "hot2": 5.0}
        return times, power, 7.0  # budget: long+hot fits, hot+hot doesn't

    def test_respects_budget(self):
        times, power, budget = self._instance()
        schedule = schedule_preemptive(
            list(times), [1, 1], flat_time(times), power_of=power,
            power_budget=budget,
        )
        assert schedule.peak_power <= budget + 1e-9
        assert _no_tam_overlap(schedule)
        _durations_complete(schedule, times, [1, 1])

    def test_never_slower_than_non_preemptive(self):
        times, power, budget = self._instance()
        non_preemptive = schedule_constrained(
            list(times), [1, 1], flat_time(times), power_of=power,
            power_budget=budget,
        )
        preemptive = schedule_preemptive(
            list(times), [1, 1], flat_time(times), power_of=power,
            power_budget=budget, max_segments=3,
        )
        assert preemptive.makespan <= non_preemptive.makespan

    def test_preemption_actually_used_when_it_helps(self):
        # A hot long test blocks a gap that a preempted test can fill.
        times = {"blocker": 10, "filler": 14}
        power = {"blocker": 6.0, "filler": 3.0}
        # Budget 8: blocker+filler cannot overlap.
        schedule = schedule_preemptive(
            ["blocker", "filler"],
            [1, 1],
            flat_time(times),
            power_of=power,
            power_budget=8.0,
            max_segments=3,
        )
        assert schedule.peak_power <= 8.0 + 1e-9
        # Serial lower bound is 24; both schedulers should reach it.
        assert schedule.makespan == 24

    def test_segment_cap_respected(self):
        times = {f"hot{i}": 4 for i in range(4)}
        times["long"] = 30
        power = {name: 5.0 for name in times}
        power["long"] = 2.0
        schedule = schedule_preemptive(
            list(times),
            [1, 1],
            flat_time(times),
            power_of=power,
            power_budget=7.0,
            max_segments=2,
        )
        for name in times:
            assert len(schedule.segments_for(name)) <= 2

    def test_segment_indices_ordered(self):
        times, power, budget = self._instance()
        schedule = schedule_preemptive(
            list(times), [1, 1], flat_time(times), power_of=power,
            power_budget=budget,
        )
        for name in times:
            segments = schedule.segments_for(name)
            assert [s.index for s in segments] == list(range(len(segments)))


class TestFeasibleWindows:
    def test_last_window_closes_at_horizon(self):
        placed = [
            Segment(name="a", tam=0, start=0, end=5, power=2.0, index=0),
            Segment(name="b", tam=1, start=2, end=8, power=3.0, index=0),
        ]
        horizon = 9  # max end + 1
        for tam in (0, 1):
            windows = _feasible_windows(
                placed, tam, 0, 1.0, budget=10.0, horizon=horizon
            )
            assert windows
            assert windows[-1][1] == horizon

    def test_ready_adjacent_to_horizon(self):
        # A successor becomes ready one cycle before the horizon (its
        # predecessor is the last thing placed): the sweep must still
        # produce the single trailing window [ready, horizon) rather
        # than an empty list.
        placed = [
            Segment(name="pred", tam=0, start=0, end=10, power=0.0, index=0)
        ]
        windows = _feasible_windows(
            placed, tam=0, ready=10, power=0.0, budget=None, horizon=11
        )
        assert windows == [(10, 11)]

    def test_successor_ready_at_horizon_minus_one_schedules(self):
        # End-to-end version of the adjacency case: b's ready time is
        # exactly horizon - 1 when it is placed.
        times = {"a": 10, "b": 4}
        schedule = schedule_preemptive(
            ["a", "b"],
            [1],
            flat_time(times),
            precedence=[("a", "b")],
        )
        (b,) = schedule.segments_for("b")
        assert b.start == 10
        assert schedule.makespan == 14


class TestPrecedence:
    def test_successor_waits_for_all_segments(self):
        times = {"a": 10, "b": 4}
        schedule = schedule_preemptive(
            list(times),
            [1, 1],
            flat_time(times),
            precedence=[("a", "b")],
        )
        a_end = max(s.end for s in schedule.segments_for("a"))
        b_start = min(s.start for s in schedule.segments_for("b"))
        assert b_start >= a_end
