"""Unit tests for the list scheduler and architecture building."""

import pytest

from repro.core.architecture import CoreConfig, DecompressorPlacement
from repro.core.scheduler import build_architecture, schedule_cores


def flat_time(times):
    """A TimeFn ignoring the width."""
    return lambda name, width: times[name]


def width_scaled_time(work):
    """A TimeFn modelling perfectly divisible work."""
    return lambda name, width: -(-work[name] // width)


class TestScheduleCores:
    def test_single_core_single_tam(self):
        outcome = schedule_cores(["a"], [4], flat_time({"a": 10}))
        assert outcome.makespan == 10
        assert outcome.assignment == (0,)

    def test_requires_a_tam(self):
        with pytest.raises(ValueError):
            schedule_cores(["a"], [], flat_time({"a": 1}))

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            schedule_cores(["a"], [0], flat_time({"a": 1}))

    def test_balances_two_tams(self):
        times = {"a": 6, "b": 5, "c": 4, "d": 3}
        outcome = schedule_cores(list(times), [2, 2], flat_time(times))
        # LPT: a->0, b->1, c->1(9) vs 0(10)? c goes to the TAM giving the
        # smaller makespan; optimum here is 9.
        assert outcome.makespan == 9

    def test_longest_first_order(self):
        # With equal TAMs, the longest core must not share a TAM with the
        # second longest when a free TAM exists.
        times = {"long": 100, "mid": 50, "tiny": 1}
        outcome = schedule_cores(list(times), [1, 1, 1], flat_time(times))
        assert len(set(outcome.assignment)) == 3
        assert outcome.makespan == 100

    def test_width_dependent_times(self):
        work = {"a": 100, "b": 100}
        outcome = schedule_cores(["a", "b"], [4, 1], width_scaled_time(work))
        # One core per TAM: max(25, 100) = 100; both on the wide TAM: 50.
        assert outcome.makespan == 50

    def test_deterministic_tie_break(self):
        times = {"a": 5, "b": 5}
        one = schedule_cores(["a", "b"], [1, 1], flat_time(times))
        two = schedule_cores(["a", "b"], [1, 1], flat_time(times))
        assert one == two

    def test_makespan_is_max_load(self):
        times = {"a": 3, "b": 4, "c": 10}
        outcome = schedule_cores(list(times), [1, 1], flat_time(times))
        loads = [0, 0]
        for name, tam in zip(times, outcome.assignment):
            loads[tam] += times[name]
        assert outcome.makespan == max(loads)


class TestBuildArchitecture:
    def _config_fn(self, times):
        def config_of(name, width):
            return CoreConfig(
                core_name=name,
                uses_compression=False,
                wrapper_chains=width,
                code_width=None,
                test_time=times[name],
                volume=times[name] * width,
            )

        return config_of

    def test_architecture_matches_outcome(self):
        times = {"a": 6, "b": 5, "c": 4}
        names = list(times)
        outcome = schedule_cores(names, [2, 1], flat_time(times))
        arch = build_architecture(
            "soc",
            names,
            outcome,
            self._config_fn(times),
            placement=DecompressorPlacement.NONE,
            ate_channels=3,
        )
        assert arch.test_time == outcome.makespan
        assert len(arch.scheduled) == 3
        assert arch.total_tam_width == 3

    def test_serial_slots_per_tam(self):
        times = {"a": 6, "b": 5, "c": 4, "d": 3}
        names = list(times)
        outcome = schedule_cores(names, [1], flat_time(times))
        arch = build_architecture(
            "soc",
            names,
            outcome,
            self._config_fn(times),
            placement=DecompressorPlacement.NONE,
            ate_channels=1,
        )
        slots = sorted(arch.scheduled, key=lambda s: s.start)
        for first, second in zip(slots, slots[1:]):
            assert second.start == first.end

    def test_layout_order_follows_scheduler_time_of(self):
        # Regression: the scheduler orders cores by time_of(name,
        # widest), but build_architecture used to re-derive the order
        # from config_of(name, widest).test_time.  A resolver that
        # disagrees at the widest width (here width 4, which neither
        # core is assigned to, so slot lengths stay consistent)
        # shuffled start times away from the ScheduleOutcome's layout.
        times = {("a", 4): 100, ("a", 1): 10, ("b", 4): 101, ("b", 1): 8}
        config_times = dict(times)
        config_times[("b", 4)] = 1  # disagrees only at the widest width

        def time_of(name, width):
            return times[(name, width)]

        def config_of(name, width):
            return CoreConfig(
                core_name=name,
                uses_compression=False,
                wrapper_chains=width,
                code_width=None,
                test_time=config_times[(name, width)],
                volume=config_times[(name, width)] * width,
            )

        names = ["a", "b"]
        outcome = schedule_cores(names, [4, 1], time_of)
        assert outcome.assignment == (1, 1)  # both on the narrow TAM
        arch = build_architecture(
            "soc",
            names,
            outcome,
            config_of,
            placement=DecompressorPlacement.NONE,
            ate_channels=5,
            time_of=time_of,
        )
        slots = {s.config.core_name: (s.start, s.end) for s in arch.scheduled}
        # The scheduler placed b (longest at the widest width) first.
        assert slots["b"] == (0, 8)
        assert slots["a"] == (8, 18)
        assert arch.test_time == outcome.makespan

    def test_volume_summed(self):
        times = {"a": 2, "b": 3}
        names = list(times)
        outcome = schedule_cores(names, [2], flat_time(times))
        arch = build_architecture(
            "soc",
            names,
            outcome,
            self._config_fn(times),
            placement=DecompressorPlacement.NONE,
            ate_channels=2,
        )
        assert arch.test_data_volume == 2 * 2 + 3 * 2
