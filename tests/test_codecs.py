"""Unit tests for the Golomb and FDR baseline run-length codecs."""

import numpy as np
import pytest

from repro.compression.fdr import FdrCode, _group_of
from repro.compression.golomb import GolombCode, best_golomb_parameter


class TestGolomb:
    def test_parameter_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            GolombCode(3)
        with pytest.raises(ValueError):
            GolombCode(0)

    def test_encode_run_known(self):
        code = GolombCode(4)
        # run 0: quotient 0 -> "0", remainder "00"
        assert code.encode_run(0) == [0, 0, 0]
        # run 5: quotient 1 -> "10", remainder 1 -> "01"
        assert code.encode_run(5) == [1, 0, 0, 1]

    def test_rejects_negative_run(self):
        with pytest.raises(ValueError):
            GolombCode(4).encode_run(-1)

    @pytest.mark.parametrize("b", [2, 4, 8])
    def test_roundtrip_random(self, b, rng):
        data = (rng.random(500) < 0.1).astype(np.int8)
        code = GolombCode(b)
        bits = code.encode(data)
        decoded = code.decode(bits, len(data))
        assert np.array_equal(decoded, data)

    def test_roundtrip_trailing_zeros(self):
        data = np.array([1, 0, 0, 0, 0], dtype=np.int8)
        code = GolombCode(2)
        assert np.array_equal(code.decode(code.encode(data), 5), data)

    def test_roundtrip_all_zeros(self):
        data = np.zeros(37, dtype=np.int8)
        code = GolombCode(4)
        assert np.array_equal(code.decode(code.encode(data), 37), data)

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            GolombCode(4).encode(np.array([0, 2], dtype=np.int8))

    def test_encoded_length_matches_encode(self, rng):
        data = (rng.random(800) < 0.05).astype(np.int8)
        for b in (2, 4, 16):
            code = GolombCode(b)
            assert code.encoded_length(data) == len(code.encode(data))

    def test_compresses_sparse_streams(self, rng):
        data = (rng.random(4000) < 0.01).astype(np.int8)
        code = best_golomb_parameter(data)
        assert code.encoded_length(data) < data.size / 2

    def test_best_parameter_is_best(self, rng):
        data = (rng.random(2000) < 0.03).astype(np.int8)
        best = best_golomb_parameter(data)
        for b in (2, 4, 8, 16, 32, 64):
            assert best.encoded_length(data) <= GolombCode(b).encoded_length(data)


class TestFdr:
    @pytest.mark.parametrize(
        "run,k",
        [(0, 1), (1, 1), (2, 2), (5, 2), (6, 3), (13, 3), (14, 4)],
    )
    def test_group_boundaries(self, run, k):
        assert _group_of(run) == k

    def test_run_cost_is_2k(self):
        code = FdrCode()
        assert code.run_cost(0) == 2
        assert code.run_cost(2) == 4
        assert code.run_cost(6) == 6

    def test_encode_run_known(self):
        code = FdrCode()
        # run 0: group 1, prefix "0", tail "0"
        assert code.encode_run(0) == [0, 0]
        # run 3: group 2 (offset 1), prefix "10", tail "01"
        assert code.encode_run(3) == [1, 0, 0, 1]

    def test_rejects_negative_run(self):
        with pytest.raises(ValueError):
            FdrCode().encode_run(-2)

    def test_roundtrip_random(self, rng):
        data = (rng.random(600) < 0.08).astype(np.int8)
        code = FdrCode()
        decoded = code.decode(code.encode(data), len(data))
        assert np.array_equal(decoded, data)

    def test_roundtrip_all_zeros(self):
        data = np.zeros(50, dtype=np.int8)
        code = FdrCode()
        assert np.array_equal(code.decode(code.encode(data), 50), data)

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            FdrCode().encode(np.array([0, 1, 2], dtype=np.int8))

    def test_encoded_length_matches_encode(self, rng):
        data = (rng.random(900) < 0.04).astype(np.int8)
        code = FdrCode()
        assert code.encoded_length(data) == len(code.encode(data))

    def test_beats_golomb_on_very_sparse(self, rng):
        # FDR's variable groups shine on long runs.
        data = (rng.random(8000) < 0.002).astype(np.int8)
        fdr = FdrCode().encoded_length(data)
        golomb = GolombCode(4).encoded_length(data)
        assert fdr < golomb
