"""The seeded ``synth<N>`` many-core SOC generator."""

from __future__ import annotations

import pytest

from repro.soc.industrial import design_catalog, load_design
from repro.soc.synthetic import (
    CATALOG_CORE_COUNTS,
    MAX_SYNTHETIC_CORES,
    MIN_SYNTHETIC_CORES,
    load_synthetic,
    parse_synthetic_name,
    synthetic_soc,
)


class TestNameParsing:
    def test_parses_core_count(self):
        assert parse_synthetic_name("synth150") == 150

    @pytest.mark.parametrize("name", ["d695", "System1", "synthx", "synth"])
    def test_non_synthetic_names_return_none(self, name):
        assert parse_synthetic_name(name) is None
        assert load_synthetic(name) is None

    @pytest.mark.parametrize(
        "name",
        [
            f"synth{MIN_SYNTHETIC_CORES - 1}",
            f"synth{MAX_SYNTHETIC_CORES + 1}",
            "synth0",
        ],
    )
    def test_out_of_bounds_raises(self, name):
        with pytest.raises(ValueError, match="cores"):
            parse_synthetic_name(name)


class TestGeneration:
    def test_deterministic_across_calls(self):
        a = synthetic_soc(100)
        b = synthetic_soc(100)
        assert a.name == b.name == "synth100"
        assert len(a.cores) == len(b.cores) == 100
        assert a.cores == b.cores

    def test_explicit_seed_gives_alternate_instance(self):
        default = synthetic_soc(50)
        alt = synthetic_soc(50, seed=1234)
        assert default.name == alt.name
        assert default.cores != alt.cores

    def test_core_count_out_of_bounds_raises(self):
        with pytest.raises(ValueError, match="cores"):
            synthetic_soc(MAX_SYNTHETIC_CORES + 1)

    def test_cores_are_fuzz_sized(self):
        soc = synthetic_soc(60)
        for core in soc.cores:
            assert 1 <= len(core.scan_chain_lengths) <= 4
            assert all(6 <= n <= 40 for n in core.scan_chain_lengths)
            assert 8 <= core.patterns <= 48

    def test_totals_are_consistent(self):
        soc = synthetic_soc(40)
        assert soc.latches == sum(c.scan_cells for c in soc.cores)
        assert soc.gates == sum(c.gates for c in soc.cores)


class TestCatalogIntegration:
    def test_load_design_resolves_synthetic(self):
        soc = load_design("synth100")
        assert soc == synthetic_soc(100)

    def test_load_design_unknown_name_mentions_synth(self):
        with pytest.raises(KeyError, match="synth<N>"):
            load_design("bogus")

    def test_load_design_out_of_bounds_synth_raises_value_error(self):
        with pytest.raises(ValueError, match="cores"):
            load_design("synth9999")

    def test_catalog_lists_synthetic_family(self):
        rows = {row["name"]: row for row in design_catalog()}
        for count in CATALOG_CORE_COUNTS:
            row = rows[f"synth{count}"]
            assert row["family"] == "synthetic"
            assert row["cores"] == count
