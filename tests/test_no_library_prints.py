"""Satellite guard: library code never prints; it logs or emits events.

The audit for this refactor found the only ``print()`` *calls* under
``src/repro/`` live in ``cli.py`` (the CLI renders stdout on purpose);
docstring examples mention ``print`` but never execute it.  This test
pins that invariant with an AST walk so a stray debug print cannot
creep back into the library: anything worth reporting goes through the
``repro.pipeline`` run-event stream or the ``repro`` loggers.
"""

from __future__ import annotations

import ast
from pathlib import Path

import repro

SRC_ROOT = Path(repro.__file__).resolve().parent

#: Modules allowed to write to stdout: the CLI owns its rendering.
ALLOWED = {SRC_ROOT / "cli.py"}


def _print_calls(path: Path) -> list[int]:
    tree = ast.parse(path.read_text(encoding="utf-8"))
    return [
        node.lineno
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "print"
    ]


def test_no_print_calls_outside_cli():
    offenders = {}
    for path in sorted(SRC_ROOT.rglob("*.py")):
        if path in ALLOWED:
            continue
        lines = _print_calls(path)
        if lines:
            offenders[str(path.relative_to(SRC_ROOT))] = lines
    assert not offenders, (
        "library modules must log or emit run events, not print(): "
        f"{offenders}"
    )


def test_cli_is_the_only_allowed_printer():
    """Sanity: the allowlist is real -- cli.py does print."""
    assert _print_calls(SRC_ROOT / "cli.py")
