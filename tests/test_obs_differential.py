"""Acceptance tests: observability changes nothing, captures everything.

The ISSUE's acceptance criteria, on d695:

* planning results are bit-identical with observability enabled and
  disabled (instrumentation never feeds back into the computation);
* an observed run yields nested spans from all four pipeline stages;
* a parallel run merges ``ProcessPoolExecutor`` worker spans into the
  parent timeline with their own pid lanes;
* the ``--trace`` artifact is valid Chrome trace-event JSON and the
  ``--report`` artifact's metric totals match the run differentially.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.pipeline import RunConfig, plan
from repro.soc.benchmarks import load_benchmark

WIDTH = 16


@pytest.fixture(scope="module")
def d695():
    return load_benchmark("d695")


@pytest.fixture(scope="module")
def baseline(d695):
    """The un-observed reference plan."""
    return plan(d695, WIDTH, RunConfig())


@pytest.fixture(scope="module")
def observed_parallel(d695):
    """One observed parallel run: (result, spans, metrics snapshot)."""
    with obs.enabled() as active:
        result = plan(d695, WIDTH, RunConfig(jobs=2))
        spans = list(active.tracer.spans)
        metrics = active.registry.snapshot()
    return result, spans, metrics


class TestBitIdentity:
    def test_serial_observed_equals_baseline(self, d695, baseline):
        with obs.enabled():
            result = plan(d695, WIDTH, RunConfig())
        assert result.architecture == baseline.architecture
        assert result.partitions_evaluated == baseline.partitions_evaluated

    def test_parallel_observed_equals_baseline(
        self, baseline, observed_parallel
    ):
        result, _, _ = observed_parallel
        assert result.architecture == baseline.architecture

    def test_baseline_has_no_report(self, baseline):
        assert baseline.report is None


class TestSpanCoverage:
    def test_all_four_stages_nest_under_the_pipeline(self, observed_parallel):
        _, spans, _ = observed_parallel
        paths = {s.path for s in spans if s.kind == "span"}
        assert "pipeline/standard" in paths
        for stage in ("wrapper", "decompressor", "architecture", "schedule"):
            assert f"pipeline/standard/{stage}" in paths

    def test_worker_spans_merge_with_their_own_lanes(self, observed_parallel):
        _, spans, _ = observed_parallel
        parent = os.getpid()
        worker_spans = [s for s in spans if s.pid != parent]
        assert worker_spans, "no worker spans were merged"
        assert all(
            s.path.startswith("pipeline/standard/wrapper/analyze-cores/")
            for s in worker_spans
            if s.name.startswith("analyze:")
        )
        # Every core's analysis happened in some worker.
        analyzed = {
            s.name.split(":", 1)[1]
            for s in worker_spans
            if s.name.startswith("analyze:")
        }
        assert len(analyzed) == 10  # d695 has ten cores

    def test_search_span_carries_partition_attrs(self, observed_parallel):
        result, spans, _ = observed_parallel
        search = next(
            s for s in spans if s.path == "pipeline/standard/architecture/search"
        )
        assert search.attrs["partitions"] == result.partitions_evaluated


class TestMetricTotals:
    def test_worker_metrics_fold_into_the_parent(self, observed_parallel):
        _, _, metrics = observed_parallel
        counters = metrics["counters"]
        # Recorded only inside workers; visible here through the merge.
        assert counters["analysis.cores_computed"] == 10
        hist = metrics["histograms"]["analysis.core_seconds"]
        assert hist["count"] == 10
        assert hist["sum"] > 0

    def test_report_counters_match_run_facts(self, observed_parallel):
        result, _, _ = observed_parallel
        counters = result.report.metrics["counters"]
        assert counters["analysis.cores_requested"] == 10
        assert counters["architecture.partitions_evaluated"] == (
            result.partitions_evaluated
        )
        assert counters["schedule.cores_scheduled"] == len(
            result.architecture.scheduled
        )

    def test_wrapper_design_counter_counts_lru_misses(self):
        from repro.soc.core import Core
        from repro.wrapper.design import (
            clear_wrapper_design_cache,
            design_wrapper,
        )

        core = Core(
            name="w", inputs=4, outputs=4, scan_chain_lengths=(10, 8),
            patterns=5, care_bit_density=0.2, seed=1,
        )
        clear_wrapper_design_cache()
        with obs.enabled() as active:
            design_wrapper(core, 2)
            design_wrapper(core, 2)  # LRU hit: not a fresh computation
        counters = active.registry.snapshot()["counters"]
        assert counters["wrapper.designs_computed"] == 1


class TestCliArtifacts:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        from repro.cli import main

        out = tmp_path_factory.mktemp("obs")
        trace = out / "trace.json"
        report = out / "report.json"
        code = main(
            [
                "plan", "d695", "--width", str(WIDTH), "--jobs", "2",
                "--no-cache", "--trace", str(trace), "--report", str(report),
            ]
        )
        assert code == 0
        return trace, report

    def test_obs_context_does_not_leak_out_of_main(self, artifacts):
        assert obs.current() is None

    def test_trace_is_valid_chrome_trace_json(self, artifacts):
        trace, _ = artifacts
        doc = json.loads(trace.read_text())
        events = doc["traceEvents"]
        assert events
        assert {e["ph"] for e in events} <= {"M", "X", "i"}
        complete = [e for e in events if e["ph"] == "X"]
        stage_names = {e["name"] for e in complete}
        assert {"wrapper", "decompressor", "architecture", "schedule"} <= (
            stage_names
        )
        # Worker lanes: more than one pid records spans.
        assert len({e["pid"] for e in complete}) > 1

    def test_report_matches_trace_run(self, artifacts, baseline):
        _, report = artifacts
        data = json.loads(report.read_text())
        assert data["kind"] == "run-report"
        assert data["soc"] == "d695"
        assert data["test_time"] == baseline.test_time
        counters = data["metrics"]["counters"]
        assert counters["analysis.cores_computed"] == 10
        assert counters["analysis.cores_requested"] == 10
