"""Property tests for the serialization boundaries.

Everything that crosses a file/JSON boundary must round-trip exactly:
.soc documents, cube files, and exported architectures.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.cubeio import format_patterns, parse_patterns
from repro.compression.cubes import TestCubeSet
from repro.core.architecture import (
    CoreConfig,
    DecompressorPlacement,
    ScheduledCore,
    Tam,
    TestArchitecture,
)
from repro.reporting.export import architecture_from_json, architecture_to_json
from repro.soc.core import Core
from repro.soc.itc02 import format_soc, parse_soc
from repro.soc.soc import Soc

name_strategy = st.from_regex(r"[A-Za-z][A-Za-z0-9_\-]{0,10}", fullmatch=True)

core_strategy = st.builds(
    lambda name, inputs, outputs, bidirs, chains, patterns, density, ones, seed, gates: Core(
        name=name,
        inputs=inputs,
        outputs=outputs,
        bidirs=bidirs,
        scan_chain_lengths=tuple(chains),
        patterns=patterns,
        care_bit_density=density,
        one_fraction=ones,
        seed=seed,
        gates=gates,
    ),
    name=name_strategy,
    inputs=st.integers(0, 50),
    outputs=st.integers(0, 50),
    bidirs=st.integers(0, 10),
    chains=st.lists(st.integers(1, 100), min_size=0, max_size=8),
    patterns=st.integers(1, 300),
    density=st.floats(0.01, 1.0, exclude_min=False),
    ones=st.floats(0.0, 1.0),
    seed=st.integers(0, 2**31),
    gates=st.integers(0, 10**6),
)


def unique_cores(cores):
    seen = set()
    out = []
    for core in cores:
        if core.name not in seen:
            seen.add(core.name)
            out.append(core)
    return tuple(out)


soc_strategy = st.builds(
    lambda name, cores, gates, latches: Soc(
        name=name, cores=unique_cores(cores), gates=gates, latches=latches
    ),
    name=name_strategy,
    cores=st.lists(core_strategy, min_size=0, max_size=6),
    gates=st.integers(0, 10**7),
    latches=st.integers(0, 10**6),
)


class TestSocFormatRoundTrip:
    @given(soc_strategy)
    @settings(max_examples=120, deadline=None)
    def test_format_parse_identity(self, soc):
        assert parse_soc(format_soc(soc)) == soc


small_core_strategy = st.builds(
    lambda name, inputs, chains, patterns, seed: Core(
        name=name,
        inputs=inputs,
        outputs=inputs,
        scan_chain_lengths=tuple(chains),
        patterns=patterns,
        care_bit_density=0.3,
        seed=seed,
    ),
    name=name_strategy,
    inputs=st.integers(1, 12),
    chains=st.lists(st.integers(1, 20), min_size=0, max_size=5),
    patterns=st.integers(1, 40),
    seed=st.integers(0, 2**31),
)


class TestPatternTextRoundTrip:
    @given(small_core_strategy, st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_patterns_roundtrip(self, core, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 3, size=(core.patterns, core.scan_in_bits))
        cubes = TestCubeSet(core=core, bits=bits.astype(np.int8))
        again = parse_patterns(core, format_patterns(cubes))
        assert np.array_equal(again.bits, cubes.bits)


def _random_architecture(rng: np.random.Generator) -> TestArchitecture:
    num_tams = int(rng.integers(1, 4))
    tams = tuple(Tam(index=i, width=int(rng.integers(1, 20))) for i in range(num_tams))
    scheduled = []
    loads = [0] * num_tams
    for index in range(int(rng.integers(0, 6))):
        tam = int(rng.integers(0, num_tams))
        duration = int(rng.integers(1, 500))
        compressed = bool(rng.integers(0, 2))
        config = CoreConfig(
            core_name=f"core{index}",
            uses_compression=compressed,
            wrapper_chains=int(rng.integers(1, 64)),
            code_width=int(rng.integers(3, 12)) if compressed else None,
            test_time=duration,
            volume=int(rng.integers(0, 10**6)),
            technique="selective" if compressed else "none",
        )
        scheduled.append(
            ScheduledCore(
                config=config,
                tam_index=tam,
                start=loads[tam],
                end=loads[tam] + duration,
            )
        )
        loads[tam] += duration
    return TestArchitecture(
        soc_name="rand",
        placement=DecompressorPlacement.PER_CORE,
        tams=tams,
        scheduled=tuple(scheduled),
        ate_channels=int(rng.integers(1, 64)),
    )


class TestExportRoundTrip:
    @given(st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_json_roundtrip_random_architectures(self, seed):
        rng = np.random.default_rng(seed)
        architecture = _random_architecture(rng)
        rebuilt = architecture_from_json(architecture_to_json(architecture))
        # Export canonicalizes slot order (by TAM, then start); compare
        # everything order-insensitively.
        assert rebuilt.soc_name == architecture.soc_name
        assert rebuilt.placement == architecture.placement
        assert rebuilt.tams == architecture.tams
        assert rebuilt.ate_channels == architecture.ate_channels
        assert set(rebuilt.scheduled) == set(architecture.scheduled)
        assert rebuilt.test_time == architecture.test_time
        assert rebuilt.test_data_volume == architecture.test_data_volume
