"""The structured run-event stream and its logging mirror."""

from __future__ import annotations

import logging

import pytest

from repro.pipeline import (
    EventRecorder,
    Pipeline,
    RunConfig,
    RunEvent,
    plan,
)


def _collect(tiny_soc, config=None, width=8):
    events = []
    plan(tiny_soc, width, config or RunConfig(compression="auto"),
         events=events.append)
    return events


class TestEventStream:
    def test_run_and_stage_bracketing(self, tiny_soc):
        events = _collect(tiny_soc)
        kinds = [e.kind for e in events]
        assert kinds[0] == "run-start"
        assert kinds[-1] == "run-end"
        starts = [e.stage for e in events if e.kind == "stage-start"]
        ends = [e.stage for e in events if e.kind == "stage-end"]
        assert starts == ["wrapper", "decompressor", "architecture", "schedule"]
        assert ends == starts

    def test_elapsed_is_monotonic(self, tiny_soc):
        events = _collect(tiny_soc)
        elapsed = [e.elapsed for e in events]
        assert elapsed == sorted(elapsed)

    def test_payloads_carry_run_facts(self, tiny_soc):
        events = _collect(tiny_soc)
        start = events[0]
        assert start.payload["soc"] == "tiny"
        assert start.payload["width_budget"] == 8
        end = events[-1]
        assert end.payload["test_time"] > 0
        assert end.payload["strategy"]
        search = next(e for e in events if e.kind == "search-done")
        assert search.payload["partitions"] >= 1

    def test_stage_timings_on_result(self, tiny_soc):
        events = []
        result = plan(
            tiny_soc, 8, RunConfig(compression="auto"), events=events.append
        )
        ends = [e for e in events if e.kind == "stage-end"]
        assert result.stage_timings == tuple(
            (e.stage, e.payload["seconds"]) for e in ends
        )

    def test_multiple_sinks_fan_out(self, tiny_soc):
        first, second = [], []
        plan(
            tiny_soc,
            8,
            RunConfig(compression="auto"),
            events=[first.append, second.append],
        )
        assert [e.kind for e in first] == [e.kind for e in second]

    def test_cache_stats_event_reports_misses_then_hits(self, tiny_soc, tmp_path):
        config = RunConfig(compression="auto", cache_dir=str(tmp_path))
        cold = _collect(tiny_soc, config)
        cold_stats = next(e for e in cold if e.kind == "cache-stats")
        assert cold_stats.payload["misses"] >= len(tiny_soc.cores)
        assert cold_stats.payload["hits"] == 0
        assert cold_stats.payload["stores"] == len(tiny_soc.cores)

        from repro.explore.dse import clear_analysis_cache

        clear_analysis_cache()  # force the disk cache, not the memo
        warm = _collect(tiny_soc, config)
        warm_stats = next(e for e in warm if e.kind == "cache-stats")
        assert warm_stats.payload["hits"] >= len(tiny_soc.cores)
        assert warm_stats.payload["misses"] == 0
        assert warm_stats.payload["stores"] == 0

    def test_no_cache_stats_event_without_cache(self, tiny_soc):
        events = _collect(tiny_soc)  # REPRO_NO_CACHE=1 in the suite
        assert not [e for e in events if e.kind == "cache-stats"]


class TestEventFormatting:
    def test_format_is_single_line(self):
        event = RunEvent(
            kind="stage-end", stage="wrapper", elapsed=0.5,
            payload={"seconds": 0.25},
        )
        text = event.format()
        assert "\n" not in text
        assert "stage-end" in text
        assert "[wrapper]" in text
        assert "seconds=0.25" in text

    def test_format_encodes_container_payloads_as_compact_json(self):
        """Regression: dict/list payload values used to print via str()."""
        event = RunEvent(
            kind="search-done", stage=None, elapsed=1.0,
            payload={"widths": [9, 7], "by_tam": {"t0": 3, "t1": 1}},
        )
        text = event.format()
        assert "widths=[9,7]" in text
        assert 'by_tam={"t0":3,"t1":1}' in text
        assert "\n" not in text

    def test_format_survives_unjsonable_values(self):
        circular: list = []
        circular.append(circular)  # json.dumps raises ValueError on this
        event = RunEvent(
            kind="x", stage=None, elapsed=0.0,
            payload={"obj": {1, 2}, "loop": circular},
        )
        text = event.format()  # must not raise
        assert "obj=" in text and "loop=" in text

    def test_stage_timings_skip_anonymous_stage_ends(self):
        """Regression: stage=None used to emit a ("", seconds) row."""
        recorder = EventRecorder()
        with recorder.stage("real"):
            pass
        recorder.emit("stage-end", seconds=9.9)  # no stage name
        timings = recorder.stage_timings()
        assert [stage for stage, _ in timings] == ["real"]
        assert all(stage for stage, _ in timings)

    def test_stage_error_event_and_reraise(self):
        recorder = EventRecorder()
        with pytest.raises(RuntimeError, match="boom"):
            with recorder.stage("exploding"):
                raise RuntimeError("boom")
        kinds = [e.kind for e in recorder.events]
        assert kinds == ["stage-start", "stage-error"]
        assert "boom" in recorder.events[-1].payload["error"]
        # A failed stage contributes no completed timing.
        assert recorder.stage_timings() == ()


class TestLoggingMirror:
    def test_run_events_reach_the_logger(self, tiny_soc, caplog):
        with caplog.at_level(logging.INFO, logger="repro.pipeline"):
            plan(tiny_soc, 8, RunConfig(compression="auto"))
        messages = [r.message for r in caplog.records]
        assert any("run-start" in m for m in messages)
        assert any("stage-end [architecture]" in m for m in messages)
        assert any("run-end" in m for m in messages)

    def test_detail_events_are_debug_level(self, tiny_soc, caplog):
        with caplog.at_level(logging.INFO, logger="repro.pipeline"):
            plan(tiny_soc, 8, RunConfig(compression="auto"))
        assert not any("search-done" in r.message for r in caplog.records)
        with caplog.at_level(logging.DEBUG, logger="repro.pipeline"):
            plan(tiny_soc, 8, RunConfig(compression="auto"))
        assert any("search-done" in r.message for r in caplog.records)

    def test_silent_by_default(self, tiny_soc, capsys):
        """Library planning writes nothing to stdout/stderr."""
        plan(tiny_soc, 8, RunConfig(compression="auto"))
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""
