"""Unit tests for the ATE model."""

import pytest

from repro.ate.tester import Ate


class TestAteValidation:
    def test_channels_positive(self):
        with pytest.raises(ValueError):
            Ate(channels=0)

    def test_memory_positive(self):
        with pytest.raises(ValueError):
            Ate(channels=1, memory_depth=0)

    def test_clock_positive(self):
        with pytest.raises(ValueError):
            Ate(channels=1, clock_hz=0)


class TestAteAccounting:
    def test_seconds(self):
        ate = Ate(channels=8, clock_hz=10e6)
        assert ate.seconds(10_000_000) == pytest.approx(1.0)

    def test_fit_divides_over_channels(self):
        ate = Ate(channels=4, memory_depth=100)
        fit = ate.fit(volume_bits=400)
        assert fit.fits and fit.required_depth == 100

    def test_fit_rounds_up(self):
        ate = Ate(channels=3, memory_depth=100)
        assert ate.fit(volume_bits=301).required_depth == 101

    def test_fit_fails_when_too_deep(self):
        ate = Ate(channels=2, memory_depth=10)
        fit = ate.fit(volume_bits=50)
        assert not fit.fits
        assert fit.utilization == pytest.approx(2.5)

    def test_depth_for_schedule(self):
        ate = Ate(channels=2, memory_depth=1000)
        assert ate.depth_for_schedule(999).fits
        assert not ate.depth_for_schedule(1001).fits
