"""Final coverage batch: corners not exercised elsewhere."""

import numpy as np
import pytest

import repro
from repro.ate.tester import AteFit
from repro.cli import main
from repro.compression.estimator import estimate_slice_costs
from repro.compression.selective import slice_width_range
from repro.core.architecture import architecture_summary
from repro.core.soclevel import _adjusted_target_bits
from repro.soc.core import Core
from repro.soc.soc import Soc
from repro.wrapper.design import design_wrapper


class TestCliSelectAndGantt:
    def test_plan_select_mode(self, capsys):
        assert (
            main(
                [
                    "plan",
                    "d695",
                    "--width",
                    "10",
                    "--compression",
                    "select",
                ]
            )
            == 0
        )
        assert "test time=" in capsys.readouterr().out


class TestSocLevelInternals:
    def test_adjusted_targets_scale_with_density(self):
        lo = Core(
            name="lo",
            inputs=4,
            outputs=4,
            scan_chain_lengths=(40,) * 8,
            patterns=30,
            care_bit_density=0.02,
            seed=1,
        )
        hi = Core(
            name="hi",
            inputs=4,
            outputs=4,
            scan_chain_lengths=(40,) * 8,
            patterns=30,
            care_bit_density=0.2,
            seed=1,
        )
        a = _adjusted_target_bits(lo, 8, group_bits=5, samples=512)
        b = _adjusted_target_bits(hi, 8, group_bits=5, samples=512)
        assert b > a >= 0

    def test_unscanned_core_contributes_nothing(self, comb_core):
        # A combinational core still has wrapper cells, so si > 0; force
        # the si == 0 branch with a zero-terminal artificial core.
        bare = Core(name="bare", inputs=0, outputs=1, patterns=2)
        assert _adjusted_target_bits(bare, 4, group_bits=3, samples=64) == 0

    def test_summary_renders_soclevel(self):
        soc = Soc(
            name="s",
            cores=(
                Core(
                    name="c",
                    inputs=4,
                    outputs=4,
                    scan_chain_lengths=(30,) * 6,
                    patterns=20,
                    care_bit_density=0.05,
                    seed=2,
                ),
            ),
        )
        result = repro.optimize_soc_level_decompressor(soc, 6)
        text = architecture_summary(result.architecture)
        assert "placement=soc-level" in text


class TestEstimatorCorners:
    def test_unscanned_design_returns_floor(self):
        bare = Core(name="bare", inputs=0, outputs=1, patterns=2)
        design = design_wrapper(bare, 2)
        costs = estimate_slice_costs(bare, design, samples=16)
        assert np.all(costs == 1)


class TestSelectiveCorners:
    def test_width_three_range_is_m_equals_one(self):
        assert list(slice_width_range(3)) == [1]

    def test_range_empty_when_clipped_away(self):
        assert list(slice_width_range(10, max_useful=100)) == []


class TestAteCorners:
    def test_zero_available_depth_utilization(self):
        fit = AteFit(fits=False, required_depth=5, available_depth=0)
        assert fit.utilization == float("inf")


class TestHierarchyExportInterplay:
    def test_hierarchical_plan_exports(self):
        child = Soc(
            name="child",
            cores=(
                Core(
                    name="k0",
                    inputs=4,
                    outputs=4,
                    scan_chain_lengths=(20,) * 6,
                    patterns=20,
                    care_bit_density=0.05,
                    seed=3,
                ),
            ),
        )
        top = Core(
            name="t0",
            inputs=4,
            outputs=4,
            scan_chain_lengths=(25,) * 8,
            patterns=25,
            care_bit_density=0.05,
            seed=4,
        )
        plan = repro.optimize_hierarchical(
            "parent", [repro.ChildSocCore(child), top], 8
        )
        payload = repro.architecture_to_json(plan.architecture)
        rebuilt = repro.architecture_from_json(payload)
        assert rebuilt.test_time == plan.test_time


class TestWrapperCornerWithBidirs:
    def test_bidirs_count_on_both_sides(self):
        core = Core(
            name="b",
            inputs=3,
            outputs=2,
            bidirs=4,
            scan_chain_lengths=(10,),
            patterns=5,
            care_bit_density=0.2,
            seed=5,
        )
        design = design_wrapper(core, 2)
        assert sum(design.chains_inputs) == 7
        assert sum(design.chains_outputs) == 6
        cubes = repro.generate_cubes(core)
        assert cubes.bits_per_pattern == 10 + 7

    def test_bidirs_roundtrip_through_optimizer(self):
        core = Core(
            name="b2",
            inputs=3,
            outputs=2,
            bidirs=4,
            scan_chain_lengths=(12, 10),
            patterns=8,
            care_bit_density=0.2,
            seed=6,
        )
        soc = Soc(name="bs", cores=(core,))
        plan = repro.optimize_soc(soc, 5, compression="auto")
        report = repro.simulate_architecture(soc, plan.architecture)
        assert report.total_cycles == plan.test_time
