"""Tests of the sampled-slice codeword estimator against the exact coder."""

import numpy as np
import pytest

from repro.compression.cubes import generate_cubes
from repro.compression.estimator import (
    SliceStatistics,
    estimate_codewords,
    estimate_slice_costs,
)
from repro.compression.selective import code_parameters, slice_costs
from repro.soc.core import Core
from repro.wrapper.design import design_wrapper


def _mid_core(density: float, seed: int = 5) -> Core:
    """A core large enough for meaningful statistics, small enough to
    materialize exactly."""
    return Core(
        name=f"mid-{density}-{seed}",
        inputs=20,
        outputs=20,
        scan_chain_lengths=tuple([60] * 30),
        patterns=80,
        care_bit_density=density,
        seed=seed,
    )


class TestAccuracy:
    @pytest.mark.parametrize("density", [0.02, 0.05, 0.15])
    @pytest.mark.parametrize("m", [10, 30, 45])
    def test_within_ten_percent_of_exact(self, density, m):
        core = _mid_core(density)
        design = design_wrapper(core, m)
        exact = int(slice_costs(generate_cubes(core).slices(design)).sum())
        estimate = estimate_codewords(core, design, samples=2048).total_codewords
        assert abs(estimate - exact) / exact < 0.10

    def test_dense_regime_still_sane(self):
        # The estimator's with-replacement approximation is worst when
        # targets approach m; allow a wider band there.
        core = _mid_core(0.5)
        design = design_wrapper(core, 30)
        exact = int(slice_costs(generate_cubes(core).slices(design)).sum())
        estimate = estimate_codewords(core, design, samples=2048).total_codewords
        assert abs(estimate - exact) / exact < 0.20


class TestDeterminism:
    def test_same_inputs_same_estimate(self):
        core = _mid_core(0.03)
        design = design_wrapper(core, 25)
        a = estimate_codewords(core, design)
        b = estimate_codewords(core, design)
        assert a == b

    def test_m_changes_stream(self):
        core = _mid_core(0.03)
        a = estimate_slice_costs(core, design_wrapper(core, 25), samples=256)
        b = estimate_slice_costs(core, design_wrapper(core, 26), samples=256)
        assert not np.array_equal(a, b)

    def test_seed_changes_stream(self):
        core = _mid_core(0.03, seed=5)
        other = _mid_core(0.03, seed=6)
        a = estimate_slice_costs(core, design_wrapper(core, 25), samples=256)
        b = estimate_slice_costs(other, design_wrapper(other, 25), samples=256)
        assert not np.array_equal(a, b)


class TestStatistics:
    def test_fields_consistent(self):
        core = _mid_core(0.03)
        design = design_wrapper(core, 25)
        stats = estimate_codewords(core, design, samples=512)
        assert isinstance(stats, SliceStatistics)
        assert stats.m == 25
        assert stats.code_width == code_parameters(25)[1]
        assert stats.slices_per_pattern == design.scan_in_max
        assert stats.total_slices == core.patterns * design.scan_in_max
        assert stats.total_codewords == round(stats.mean_cost * stats.total_slices)
        assert stats.compressed_bits == stats.total_codewords * stats.code_width

    def test_cost_floor_is_one(self):
        core = _mid_core(0.01)
        costs = estimate_slice_costs(core, design_wrapper(core, 40), samples=512)
        assert costs.min() >= 1

    def test_rejects_zero_samples(self):
        core = _mid_core(0.03)
        with pytest.raises(ValueError):
            estimate_slice_costs(core, design_wrapper(core, 25), samples=0)

    def test_cost_scales_with_density(self):
        lo = _mid_core(0.01)
        hi = _mid_core(0.10)
        lo_cost = estimate_codewords(lo, design_wrapper(lo, 30)).total_codewords
        hi_cost = estimate_codewords(hi, design_wrapper(hi, 30)).total_codewords
        assert hi_cost > lo_cost
