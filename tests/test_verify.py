"""Tests for the independent plan verifier across its delivery paths.

Covers the four public checkers (:func:`verify_plan`,
:func:`verify_architecture`, :func:`verify_constrained`,
:func:`verify_preemptive`), the corruption helpers that feed them
negative cases, the opt-in pipeline stage, the ``repro-soc verify``
CLI subcommand, and the service's verification gate.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json

import pytest

from repro.cli import main
from repro.core.scheduler import schedule_cores
from repro.core.preemption import schedule_preemptive
from repro.core.timeline import schedule_constrained
from repro.pipeline import RunConfig, plan
from repro.reporting.export import result_to_json
from repro.serve import JobState, PlanningService, PlanRequest, ServiceSettings
from repro.soc.industrial import load_design
from repro.verify import (
    CORRUPTION_MODES,
    PlanVerificationError,
    corrupt_architecture,
    corrupt_result,
    verify_architecture,
    verify_constrained,
    verify_plan,
    verify_preemptive,
)

_CONFIG = RunConfig(compression="per-core", use_cache=False)


@pytest.fixture(scope="module")
def d695_plan():
    soc = load_design("d695")
    return soc, plan(soc, 16, _CONFIG)


@pytest.fixture
def tiny_plan(tiny_soc):
    return plan(tiny_soc, 8, _CONFIG)


class TestVerifyPlanClean:
    def test_tiny_soc_all_compressions(self, tiny_soc):
        for compression in ("per-core", "none", "select", "per-tam"):
            config = RunConfig(compression=compression, use_cache=False)
            result = plan(tiny_soc, 8, config)
            report = verify_plan(result, tiny_soc, config=config)
            assert report.ok, (compression, report.summary())
            # Model checks actually ran, not just the structural ones.
            assert "time-model" in report.checks
            assert "volume-model" in report.checks

    def test_benchmark_plan(self, d695_plan):
        soc, result = d695_plan
        report = verify_plan(result, soc, config=_CONFIG)
        assert report.ok, report.summary()
        assert report.summary().endswith("checks)")

    def test_power_constrained_plan(self, tiny_soc):
        from repro.power.model import power_table

        budget = sum(power_table(tiny_soc, compression=True).values())
        config = RunConfig(power_budget=budget, use_cache=False)
        result = plan(tiny_soc, 8, config)
        report = verify_plan(result, tiny_soc, config=config)
        assert report.ok, report.summary()
        assert "power-budget" in report.checks
        assert "peak-power" in report.checks

    def test_structural_only_without_soc(self, tiny_plan):
        report = verify_plan(tiny_plan)
        assert report.ok, report.summary()
        assert "time-model" not in report.checks
        assert "tam-overlap" in report.checks


class TestCorruptionDetected:
    def test_overlap(self, tiny_soc, tiny_plan):
        bad = corrupt_result(tiny_plan, "overlap")
        report = verify_plan(bad, tiny_soc, config=_CONFIG)
        codes = {v.code for v in report.violations}
        assert "tam-overlap" in codes

    def test_inflate_makespan(self, tiny_soc, tiny_plan):
        bad = corrupt_result(tiny_plan, "inflate-makespan")
        report = verify_plan(bad, tiny_soc, config=_CONFIG)
        codes = {v.code for v in report.violations}
        assert "time-model" in codes

    def test_power_overrun(self, tiny_soc):
        from repro.power.model import power_table

        budget = sum(power_table(tiny_soc, compression=True).values())
        config = RunConfig(power_budget=budget, use_cache=False)
        result = plan(tiny_soc, 8, config)
        bad = corrupt_result(result, "power-overrun")
        report = verify_plan(bad, tiny_soc, config=config)
        codes = {v.code for v in report.violations}
        assert "power-budget" in codes

    def test_every_mode_is_exercised(self):
        assert set(CORRUPTION_MODES) == {
            "overlap",
            "inflate-makespan",
            "power-overrun",
        }

    def test_originals_never_mutated(self, tiny_soc, tiny_plan):
        before = result_to_json(tiny_plan)
        corrupt_result(tiny_plan, "overlap")
        corrupt_result(tiny_plan, "inflate-makespan")
        assert result_to_json(tiny_plan) == before
        assert verify_plan(tiny_plan, tiny_soc, config=_CONFIG).ok

    def test_raise_if_violations(self, tiny_soc, tiny_plan):
        bad = corrupt_result(tiny_plan, "overlap")
        report = verify_plan(bad, tiny_soc, config=_CONFIG)
        with pytest.raises(PlanVerificationError) as excinfo:
            report.raise_if_violations()
        assert excinfo.value.report is report
        assert "tam-overlap" in str(excinfo.value)

    def test_corrupt_architecture_caught_structurally(self, tiny_plan):
        bad = corrupt_architecture(tiny_plan.architecture, "overlap")
        report = verify_architecture(bad)
        assert not report.ok
        assert any(v.code == "tam-overlap" for v in report.violations)

    def test_unknown_mode_rejected(self, tiny_plan):
        with pytest.raises(ValueError, match="unknown corruption"):
            corrupt_result(tiny_plan, "no-such-mode")


class TestScheduleCheckers:
    TIMES = {"a": 9, "b": 7, "c": 5}

    @classmethod
    def time_of(cls, name, width):
        return -(-cls.TIMES[name] // width)

    def test_constrained_clean_and_tampered(self):
        names = sorted(self.TIMES)
        schedule = schedule_constrained(names, [1, 2], self.time_of)
        assert verify_constrained(schedule, names, self.time_of).ok
        tampered = dataclasses.replace(
            schedule, makespan=schedule.makespan + 1
        )
        report = verify_constrained(tampered, names, self.time_of)
        assert any(v.code == "makespan" for v in report.violations)

    def test_constrained_matches_plain_scheduler(self):
        names = sorted(self.TIMES)
        plain = schedule_cores(names, (1, 2), self.time_of)
        constrained = schedule_constrained(names, [1, 2], self.time_of)
        assert constrained.makespan == plain.makespan

    def test_preemptive_clean_and_tampered(self):
        names = sorted(self.TIMES)
        power = {n: 2.0 for n in names}
        schedule = schedule_preemptive(
            names,
            [1, 1],
            self.time_of,
            power_of=power,
            power_budget=3.0,
            max_segments=3,
        )
        report = verify_preemptive(
            schedule,
            names,
            self.time_of,
            power_of=power,
            power_budget=3.0,
            max_segments=3,
        )
        assert report.ok, report.summary()
        tampered = dataclasses.replace(
            schedule, peak_power=schedule.peak_power + 1.0
        )
        report = verify_preemptive(
            tampered, names, self.time_of, power_of=power
        )
        assert any(v.code == "peak-power" for v in report.violations)

    def test_missing_core_reported(self):
        schedule = schedule_constrained(["a", "b"], [1], self.time_of)
        report = verify_constrained(schedule, ["a", "b", "c"], self.time_of)
        assert any(
            v.code == "core-membership" for v in report.violations
        )


class TestVerifyStage:
    def test_verified_plan_identical_to_unverified(self, tiny_soc):
        base = plan(tiny_soc, 8, _CONFIG)
        checked = plan(tiny_soc, 8, _CONFIG.replace(verify=True))
        assert checked.test_time == base.test_time
        assert checked.architecture == base.architecture


class TestCli:
    def test_verify_design(self, capsys):
        assert main(["verify", "d695", "--width", "16"]) == 0
        out = capsys.readouterr().out
        assert "plan:d695: ok" in out

    def test_verify_requires_design_or_plan(self, capsys):
        assert main(["verify"]) == 2

    def test_verify_clean_export(self, tmp_path, capsys, d695_plan):
        _, result = d695_plan
        path = tmp_path / "plan.json"
        path.write_text(result_to_json(result))
        assert main(["verify", "--plan", str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_verify_corrupted_export(self, tmp_path, capsys, d695_plan):
        _, result = d695_plan
        bad = corrupt_result(result, "inflate-makespan")
        path = tmp_path / "bad.json"
        path.write_text(result_to_json(bad))
        assert main(["verify", "--plan", str(path)]) == 1
        assert "time-model" in capsys.readouterr().out

    def test_verify_rejects_garbage(self, tmp_path, capsys):
        path = tmp_path / "garbage.json"
        path.write_text(json.dumps({"schema": 1, "soc": "x"}))
        assert main(["verify", "--plan", str(path)]) == 2
        assert "rejected" in capsys.readouterr().err

    def test_plan_verify_flag(self, capsys):
        assert main(["plan", "d695", "--width", "16", "--verify"]) == 0


class TestServeGate:
    def test_corrupted_plan_fails_with_typed_error(self):
        config = RunConfig(compression="none", use_cache=False)

        async def scenario():
            service = PlanningService(
                ServiceSettings(workers=1, isolation="thread")
            )
            await service.start()
            bad, _ = service.submit(
                PlanRequest(
                    "d695",
                    8,
                    config,
                    fault={"corrupt_plan": "inflate-makespan"},
                )
            )
            # The faulty twin must not coalesce with the clean request.
            clean, deduped = service.submit(PlanRequest("d695", 8, config))
            bad_done = await service.wait(bad.id, timeout=300)
            clean_done = await service.wait(clean.id, timeout=300)
            await service.shutdown(drain=True)
            return service, bad_done, clean_done, deduped

        service, bad_done, clean_done, deduped = asyncio.run(scenario())
        assert not deduped
        assert bad_done.state is JobState.FAILED
        assert bad_done.error_code == "invalid-plan"
        # Deterministic failure: the gate must not burn retries.
        assert bad_done.attempts == 1
        assert "time-model" in (bad_done.error or "")
        assert clean_done.state is JobState.DONE
        assert json.loads(clean_done.result_json)["soc"] == "d695"
        assert service.counters["jobs_invalid_plan"] == 1
