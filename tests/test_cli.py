"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_args(self):
        args = build_parser().parse_args(
            ["plan", "d695", "--width", "16", "--no-compression", "--gantt"]
        )
        assert args.design == "d695"
        assert args.width == 16
        assert args.no_compression and args.gantt


class TestCommands:
    def test_describe(self, capsys):
        assert main(["describe", "d695"]) == 0
        out = capsys.readouterr().out
        assert "d695" in out and "s5378" in out

    def test_plan_small(self, capsys):
        assert main(["plan", "d695", "--width", "8", "--no-compression"]) == 0
        out = capsys.readouterr().out
        assert "test time=" in out
        assert "partitions evaluated" in out

    def test_plan_with_gantt(self, capsys):
        code = main(
            ["plan", "d695", "--width", "8", "--no-compression", "--gantt"]
        )
        assert code == 0
        assert "TAM0" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "9"]) == 2
        assert "no figure 9" in capsys.readouterr().err

    def test_unknown_table(self, capsys):
        assert main(["table", "9"]) == 2
        assert "no table 9" in capsys.readouterr().err

    def test_unknown_design_raises(self):
        with pytest.raises(KeyError):
            main(["describe", "bogus"])

    def test_simulate_matches_plan(self, capsys):
        code = main(["simulate", "d695", "--width", "8", "--compression", "none"])
        assert code == 0
        assert "MATCH" in capsys.readouterr().out

    def test_export_to_stdout(self, capsys):
        assert main(["export", "d695", "--width", "8"]) == 0
        out = capsys.readouterr().out
        assert '"schema": 1' in out

    def test_export_to_file(self, tmp_path, capsys):
        target = tmp_path / "plan.json"
        assert main(["export", "d695", "--width", "8", "--out", str(target)]) == 0
        assert target.exists()
        from repro.reporting.export import architecture_from_json

        rebuilt = architecture_from_json(target.read_text())
        assert rebuilt.soc_name == "d695"

    def test_power_command(self, capsys):
        code = main(
            [
                "power",
                "d695",
                "--width",
                "8",
                "--compression",
                "none",
                "--budget-fraction",
                "0.9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "peak power" in out


class TestBenchmarksCommand:
    def test_table_lists_all_designs(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        for name in ("d695", "d2758", "System1", "System4"):
            assert name in out
        assert "cores" in out and "academic" in out and "industrial" in out

    def test_json_is_machine_readable(self, capsys):
        import json

        assert main(["benchmarks", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_name = {row["name"]: row for row in rows}
        assert by_name["d695"]["cores"] == 10
        assert by_name["d695"]["family"] == "academic"
        assert by_name["System1"]["family"] == "industrial"
        assert all(row["scan_cells"] > 0 for row in rows)


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 7465
        assert args.isolation == "process"
        assert args.queue_depth == 64

    def test_serve_flags(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--port",
                "0",
                "--jobs",
                "2",
                "--queue-depth",
                "5",
                "--isolation",
                "thread",
                "--state-dir",
                "/tmp/state",
            ]
        )
        assert args.port == 0 and args.jobs == 2
        assert args.queue_depth == 5
        assert args.isolation == "thread"
        assert args.state_dir == "/tmp/state"

    def test_submit_requires_width(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "d695"])

    def test_submit_flags(self):
        args = build_parser().parse_args(
            [
                "submit",
                "d695",
                "--width",
                "16",
                "--priority",
                "3",
                "--no-wait",
                "--port",
                "7465",
            ]
        )
        assert args.design == "d695" and args.width == 16
        assert args.priority == 3 and args.no_wait

    def test_status_accepts_optional_job_id(self):
        args = build_parser().parse_args(["status"])
        assert args.job_id is None
        args = build_parser().parse_args(["status", "job-abc"])
        assert args.job_id == "job-abc"
