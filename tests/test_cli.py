"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_args(self):
        args = build_parser().parse_args(
            ["plan", "d695", "--width", "16", "--no-compression", "--gantt"]
        )
        assert args.design == "d695"
        assert args.width == 16
        assert args.no_compression and args.gantt


class TestCommands:
    def test_describe(self, capsys):
        assert main(["describe", "d695"]) == 0
        out = capsys.readouterr().out
        assert "d695" in out and "s5378" in out

    def test_plan_small(self, capsys):
        assert main(["plan", "d695", "--width", "8", "--no-compression"]) == 0
        out = capsys.readouterr().out
        assert "test time=" in out
        assert "partitions evaluated" in out

    def test_plan_with_gantt(self, capsys):
        code = main(
            ["plan", "d695", "--width", "8", "--no-compression", "--gantt"]
        )
        assert code == 0
        assert "TAM0" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "9"]) == 2
        assert "no figure 9" in capsys.readouterr().err

    def test_unknown_table(self, capsys):
        assert main(["table", "9"]) == 2
        assert "no table 9" in capsys.readouterr().err

    def test_unknown_design_raises(self):
        with pytest.raises(KeyError):
            main(["describe", "bogus"])

    def test_simulate_matches_plan(self, capsys):
        code = main(["simulate", "d695", "--width", "8", "--compression", "none"])
        assert code == 0
        assert "MATCH" in capsys.readouterr().out

    def test_export_to_stdout(self, capsys):
        assert main(["export", "d695", "--width", "8"]) == 0
        out = capsys.readouterr().out
        assert '"schema": 1' in out

    def test_export_to_file(self, tmp_path, capsys):
        target = tmp_path / "plan.json"
        assert main(["export", "d695", "--width", "8", "--out", str(target)]) == 0
        assert target.exists()
        from repro.reporting.export import architecture_from_json

        rebuilt = architecture_from_json(target.read_text())
        assert rebuilt.soc_name == "d695"

    def test_power_command(self, capsys):
        code = main(
            [
                "power",
                "d695",
                "--width",
                "8",
                "--compression",
                "none",
                "--budget-fraction",
                "0.9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "peak power" in out
