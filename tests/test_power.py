"""Unit tests for the power model."""

import pytest

from repro.power.model import PowerModel, core_test_power, power_table, toggle_rate
from repro.soc.core import Core
from repro.soc.soc import Soc


class TestToggleRate:
    def test_random_fill_near_half_for_sparse(self):
        # Sparse cubes random-filled toggle almost maximally.
        assert toggle_rate(0.02, 0.5, "random") == pytest.approx(0.5, abs=0.01)

    def test_zero_fill_small_for_sparse(self):
        assert toggle_rate(0.02, 0.5, "zero") < 0.02

    def test_majority_fill_below_zero_fill_when_ones_dominate(self):
        # With 1-heavy care bits, 0-fill toggles at every care bit while
        # majority fill only exposes the minority (0) care bits.
        d, f1 = 0.05, 0.8
        assert toggle_rate(d, f1, "majority") < toggle_rate(d, f1, "zero")

    def test_majority_matches_zero_fill_when_zeros_dominate(self):
        # 0 is already the majority symbol: the fills coincide.
        assert toggle_rate(0.05, 0.3, "majority") == pytest.approx(
            toggle_rate(0.05, 0.3, "zero")
        )

    def test_unknown_fill(self):
        with pytest.raises(ValueError):
            toggle_rate(0.1, 0.5, "mt")

    def test_rate_bounds(self):
        for d in (0.01, 0.3, 0.9):
            for f1 in (0.0, 0.3, 1.0):
                for fill in ("random", "zero", "majority"):
                    assert 0.0 <= toggle_rate(d, f1, fill) <= 0.5


class TestCorePower:
    def test_scales_with_scan_cells(self):
        small = Core(name="a", inputs=2, outputs=2, scan_chain_lengths=(50,), patterns=1)
        large = Core(
            name="b", inputs=2, outputs=2, scan_chain_lengths=(500,), patterns=1
        )
        assert core_test_power(large) > core_test_power(small)

    def test_compression_fill_reduces_power(self):
        core = Core(
            name="c",
            inputs=10,
            outputs=10,
            scan_chain_lengths=(100,) * 5,
            patterns=1,
            care_bit_density=0.03,
            one_fraction=0.3,
        )
        assert core_test_power(core, fill="majority") < core_test_power(
            core, fill="random"
        )

    def test_io_weight_counts_wrapper_cells(self):
        combo = Core(name="c", inputs=10, outputs=10, patterns=1)
        assert core_test_power(combo) == pytest.approx(PowerModel().io_weight * 20)

    def test_custom_model(self):
        core = Core(name="c", inputs=0, outputs=0, scan_chain_lengths=(100,), patterns=1)
        doubled = PowerModel(shift_weight=2.0)
        assert core_test_power(core, model=doubled) == pytest.approx(
            2 * core_test_power(core)
        )


class TestPowerTable:
    def test_covers_every_core(self, tiny_soc):
        table = power_table(tiny_soc)
        assert set(table) == set(tiny_soc.core_names)
        assert all(v >= 0 for v in table.values())

    def test_compression_lowers_table(self):
        cores = tuple(
            Core(
                name=f"c{i}",
                inputs=4,
                outputs=4,
                scan_chain_lengths=(80,) * 4,
                patterns=1,
                care_bit_density=0.05,
                one_fraction=0.3,
            )
            for i in range(2)
        )
        soc = Soc(name="s", cores=cores)
        plain = power_table(soc, compression=False)
        packed = power_table(soc, compression=True)
        assert all(packed[n] < plain[n] for n in soc.core_names)
