"""Tests for robust planning under test-time uncertainty."""

import pytest

from repro.core.partition import search_partitions
from repro.core.robust import (
    RobustPlan,
    UncertaintyReport,
    evaluate_under_uncertainty,
    robust_search,
)


def divisible(work):
    return lambda name, width: -(-work[name] // width)


WORK = {"a": 400, "b": 310, "c": 180, "d": 90}


@pytest.fixture
def nominal_outcome():
    return search_partitions(list(WORK), 8, divisible(WORK)).outcome


class TestEvaluate:
    def test_validation(self, nominal_outcome):
        with pytest.raises(ValueError):
            evaluate_under_uncertainty(
                list(WORK), nominal_outcome, divisible(WORK), epsilon=1.0
            )
        with pytest.raises(ValueError):
            evaluate_under_uncertainty(
                list(WORK), nominal_outcome, divisible(WORK), trials=0
            )

    def test_zero_epsilon_is_exact(self, nominal_outcome):
        report = evaluate_under_uncertainty(
            list(WORK), nominal_outcome, divisible(WORK), epsilon=0.0, trials=10
        )
        assert report.worst == report.nominal == report.best
        assert report.mean == pytest.approx(report.nominal)

    def test_ordering_of_statistics(self, nominal_outcome):
        report = evaluate_under_uncertainty(
            list(WORK), nominal_outcome, divisible(WORK), epsilon=0.2
        )
        assert isinstance(report, UncertaintyReport)
        assert report.best <= report.mean <= report.worst
        assert report.regret >= 1.0

    def test_worst_case_bound(self, nominal_outcome):
        report = evaluate_under_uncertainty(
            list(WORK), nominal_outcome, divisible(WORK), epsilon=0.25
        )
        # Common inflation bounds the worst case at (1 + eps) x nominal
        # (rounding aside).
        assert report.worst <= report.nominal * 1.25 + len(WORK)

    def test_deterministic_in_seed(self, nominal_outcome):
        a = evaluate_under_uncertainty(
            list(WORK), nominal_outcome, divisible(WORK), seed=5
        )
        b = evaluate_under_uncertainty(
            list(WORK), nominal_outcome, divisible(WORK), seed=5
        )
        assert a == b


class TestRobustSearch:
    def test_validation(self):
        with pytest.raises(ValueError):
            robust_search(list(WORK), 8, divisible(WORK), epsilon=1.5)

    def test_zero_epsilon_matches_nominal_search(self):
        robust = robust_search(list(WORK), 8, divisible(WORK), epsilon=0.0)
        nominal = search_partitions(list(WORK), 8, divisible(WORK))
        assert robust.nominal_makespan == nominal.makespan

    def test_worst_case_no_worse_than_nominal_plan(self):
        """The robust plan's worst case must beat (or tie) the worst
        case of the nominally optimal plan."""
        epsilon = 0.2
        nominal = search_partitions(list(WORK), 8, divisible(WORK))
        nominal_worst = evaluate_under_uncertainty(
            list(WORK), nominal.outcome, divisible(WORK), epsilon=epsilon
        ).worst
        robust = robust_search(list(WORK), 8, divisible(WORK), epsilon=epsilon)
        assert robust.worst_case_makespan <= nominal_worst + len(WORK)

    def test_nominal_at_most_worst(self):
        robust = robust_search(list(WORK), 8, divisible(WORK), epsilon=0.3)
        assert isinstance(robust, RobustPlan)
        assert robust.nominal_makespan <= robust.worst_case_makespan
        assert sum(robust.widths) <= 8
