"""Tests of the embedded benchmark and industrial designs.

These tests pin the structural claims the paper makes about its
workloads (see DESIGN.md section 5): d695/d2758 pattern counts between
12 and 234, industrial scan-cell counts between 10k and 110k, care-bit
densities of 1-5%, and multi-gigabit per-system volumes.
"""

import pytest

from repro.soc.benchmarks import benchmark_names, load_benchmark
from repro.soc.industrial import (
    INDUSTRIAL_CORE_NAMES,
    SYSTEM_NAMES,
    industrial_core,
    industrial_system,
    load_design,
)


class TestD695:
    def test_ten_cores(self):
        assert len(load_benchmark("d695")) == 10

    def test_known_cores_present(self):
        names = load_benchmark("d695").core_names
        for expected in ("c6288", "s5378", "s38417", "s35932"):
            assert expected in names

    def test_s5378_published_chain_lengths(self):
        core = load_benchmark("d695").core("s5378")
        assert core.scan_chain_lengths == (46, 45, 45, 43)

    def test_pattern_counts_in_paper_range(self):
        soc = load_benchmark("d695")
        patterns = [c.patterns for c in soc.cores]
        assert min(patterns) == 12
        assert max(patterns) == 234

    def test_scan_chain_counts_below_33(self):
        soc = load_benchmark("d695")
        assert all(c.num_scan_chains <= 32 for c in soc.cores)

    def test_average_density_near_two_thirds(self):
        soc = load_benchmark("d695")
        avg = sum(c.care_bit_density for c in soc.cores) / len(soc)
        assert 0.55 <= avg <= 0.75  # the paper reports 66% on average

    def test_deterministic(self):
        assert load_benchmark("d695") == load_benchmark("d695")


class TestD2758:
    def test_iscas_class_cores(self):
        soc = load_benchmark("d2758")
        assert len(soc) >= 20
        assert all(c.patterns >= 12 and c.patterns <= 234 for c in soc.cores)

    def test_scan_chains_small(self):
        soc = load_benchmark("d2758")
        assert all(c.num_scan_chains <= 32 for c in soc.cores)

    def test_unique_names(self):
        soc = load_benchmark("d2758")
        assert len(set(soc.core_names)) == len(soc)

    def test_replicas_differ_in_test_size(self):
        soc = load_benchmark("d2758")
        replicas = [c for c in soc.cores if c.name.startswith("s5378")]
        assert len({c.patterns for c in replicas}) > 1


class TestBenchmarkRegistry:
    def test_names(self):
        assert set(benchmark_names()) == {"d695", "d2758"}

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            load_benchmark("p22810")


class TestIndustrialCores:
    def test_twelve_cores(self):
        assert len(INDUSTRIAL_CORE_NAMES) == 12

    def test_scan_cell_range_matches_paper(self):
        for name in INDUSTRIAL_CORE_NAMES:
            core = industrial_core(name)
            assert 10_000 <= core.scan_cells <= 110_000

    def test_care_density_range_matches_paper(self):
        for name in INDUSTRIAL_CORE_NAMES:
            core = industrial_core(name)
            assert 0.01 <= core.care_bit_density <= 0.05

    def test_chain_lengths_sum(self):
        core = industrial_core("ckt-7")
        assert sum(core.scan_chain_lengths) == core.scan_cells

    def test_ckt7_has_253_chains(self):
        # The Figure 2 sweet spot (m = 253) needs exactly this.
        assert industrial_core("ckt-7").num_scan_chains == 253

    def test_chains_unbalanced(self):
        core = industrial_core("ckt-1")
        assert len(set(core.scan_chain_lengths)) > 1

    def test_deterministic(self):
        assert industrial_core("ckt-3") == industrial_core("ckt-3")

    def test_distinct_seeds(self):
        seeds = {industrial_core(n).seed for n in INDUSTRIAL_CORE_NAMES}
        assert len(seeds) == len(INDUSTRIAL_CORE_NAMES)

    def test_unknown_core(self):
        with pytest.raises(KeyError, match="unknown industrial core"):
            industrial_core("ckt-99")


class TestSystems:
    def test_four_systems(self):
        assert len(SYSTEM_NAMES) == 4

    def test_system1_contains_figure4_cores(self):
        names = industrial_system("System1").core_names
        for expected in ("ckt-1", "ckt-9", "ckt-11"):
            assert expected in names

    def test_system4_has_all_cores(self):
        assert len(industrial_system("System4")) == 12

    def test_volumes_are_gigabit_scale(self):
        for name in SYSTEM_NAMES:
            soc = industrial_system(name)
            assert soc.initial_test_data_volume >= 1e9, name

    def test_gates_aggregate(self):
        soc = industrial_system("System2")
        assert soc.gates == sum(c.gates for c in soc.cores)

    def test_unknown_system(self):
        with pytest.raises(KeyError, match="unknown system"):
            industrial_system("System9")


class TestLoadDesign:
    @pytest.mark.parametrize(
        "name", ["d695", "d2758", "System1", "System2", "System3", "System4"]
    )
    def test_loads_every_paper_design(self, name):
        soc = load_design(name)
        assert soc.name == name
        assert len(soc) > 0

    def test_unknown_design(self):
        with pytest.raises(KeyError, match="unknown design"):
            load_design("nope")
