"""Unit tests for the architecture data model and its validation."""

import pytest

from repro.core.architecture import (
    CoreConfig,
    DecompressorPlacement,
    ScheduledCore,
    Tam,
    TestArchitecture,
    architecture_summary,
    validate_width_budget,
)


def _config(name, time=10, volume=100, compressed=False):
    return CoreConfig(
        core_name=name,
        uses_compression=compressed,
        wrapper_chains=4,
        code_width=5 if compressed else None,
        test_time=time,
        volume=volume,
    )


def _slot(name, tam, start, time=10, **kw):
    return ScheduledCore(
        config=_config(name, time=time, **kw), tam_index=tam, start=start, end=start + time
    )


def _arch(slots, tams=None):
    tams = tams or (Tam(0, 4), Tam(1, 2))
    return TestArchitecture(
        soc_name="soc",
        placement=DecompressorPlacement.NONE,
        tams=tams,
        scheduled=tuple(slots),
        ate_channels=6,
    )


class TestValidation:
    def test_tam_width_positive(self):
        with pytest.raises(ValueError):
            Tam(0, 0)

    def test_compressed_config_needs_code_width(self):
        with pytest.raises(ValueError, match="code width"):
            CoreConfig(
                core_name="a",
                uses_compression=True,
                wrapper_chains=4,
                code_width=None,
                test_time=1,
                volume=1,
            )

    def test_slot_length_must_match_test_time(self):
        with pytest.raises(ValueError, match="slot length"):
            ScheduledCore(config=_config("a", time=5), tam_index=0, start=0, end=9)

    def test_unknown_tam_rejected(self):
        with pytest.raises(ValueError, match="unknown TAM"):
            _arch([_slot("a", 7, 0)])

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            _arch([_slot("a", 0, 0), _slot("b", 0, 5)])

    def test_back_to_back_allowed(self):
        arch = _arch([_slot("a", 0, 0), _slot("b", 0, 10)])
        assert arch.test_time == 20

    def test_parallel_tams_allowed(self):
        arch = _arch([_slot("a", 0, 0), _slot("b", 1, 0)])
        assert arch.test_time == 10


class TestDerived:
    def test_totals(self):
        arch = _arch([_slot("a", 0, 0), _slot("b", 1, 0, time=25)])
        assert arch.total_tam_width == 6
        assert arch.test_time == 25
        assert arch.test_data_volume == 200

    def test_cores_per_tam_in_start_order(self):
        arch = _arch([_slot("b", 0, 10), _slot("a", 0, 0)])
        assert arch.cores_per_tam[0] == ("a", "b")

    def test_tam_finish_times(self):
        arch = _arch([_slot("a", 0, 0), _slot("b", 1, 0, time=3)])
        assert arch.tam_finish_times() == {0: 10, 1: 3}

    def test_config_lookup(self):
        arch = _arch([_slot("a", 0, 0)])
        assert arch.config_for("a").core_name == "a"
        with pytest.raises(KeyError):
            arch.config_for("zzz")

    def test_empty_schedule(self):
        arch = _arch([])
        assert arch.test_time == 0
        assert arch.render_gantt() == "(empty schedule)"


class TestRendering:
    def test_gantt_mentions_cores_and_totals(self):
        arch = _arch([_slot("alpha", 0, 0), _slot("beta", 1, 0)])
        text = arch.render_gantt()
        assert "TAM0" in text and "TAM1" in text
        assert "total: 10 cycles" in text

    def test_summary(self):
        arch = _arch([_slot("alpha", 0, 0)])
        text = architecture_summary(arch)
        assert "soc" in text and "alpha" in text and "(idle)" in text

    def test_adjacent_slots_never_share_a_cell(self):
        # A 10-cycle test next to a 990-cycle one: both slots used to
        # round to column 0, so the long test's '#' fill painted over
        # the short test's label entirely.
        arch = _arch(
            [_slot("a", 0, 0, time=10), _slot("b", 0, 10, time=990)]
        )
        row = arch.render_gantt().splitlines()[0]
        cells = row.split("|")[1]
        assert "a" in cells
        assert "b" in cells
        assert cells.index("a") < cells.index("b")

    def test_every_slot_gets_a_cell_even_when_tiny(self):
        # Three tiny tests before one huge one; each must keep at least
        # one distinct cell, in schedule order.
        slots = [
            _slot("a", 0, 0, time=1),
            _slot("b", 0, 1, time=1),
            _slot("c", 0, 2, time=1),
            _slot("d", 0, 3, time=9997),
        ]
        row = _arch(slots).render_gantt().splitlines()[0]
        cells = row.split("|")[1]
        positions = [cells.index(ch) for ch in "abcd"]
        assert positions == sorted(positions)
        assert len(set(positions)) == 4


class TestWidthBudget:
    def test_within_budget(self):
        validate_width_budget([Tam(0, 3), Tam(1, 2)], 5)

    def test_exceeded(self):
        with pytest.raises(ValueError, match="budget exceeded"):
            validate_width_budget([Tam(0, 4), Tam(1, 2)], 5)
