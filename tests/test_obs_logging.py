"""Structured logging: correlation ids, JSON rendering, stdlib bridge."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs.logging import (
    JsonLineFormatter,
    bind_request_id,
    configure_json_logging,
    current_request_id,
    get_logger,
    new_request_id,
    parse_json_log_line,
    remove_json_logging,
)


class TestRequestIds:
    def test_minted_ids_are_unique_and_prefixed(self):
        ids = {new_request_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(rid.startswith("req-") for rid in ids)

    def test_unbound_context_reads_empty(self):
        assert current_request_id() == ""

    def test_bind_and_restore(self):
        with bind_request_id("req-abc") as rid:
            assert rid == "req-abc"
            assert current_request_id() == "req-abc"
        assert current_request_id() == ""

    def test_bindings_nest(self):
        with bind_request_id("req-outer"):
            with bind_request_id("req-inner"):
                assert current_request_id() == "req-inner"
            assert current_request_id() == "req-outer"

    def test_empty_binding_mints_fresh(self):
        with bind_request_id("") as rid:
            assert rid.startswith("req-")
            assert current_request_id() == rid

    def test_binding_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with bind_request_id("req-x"):
                raise RuntimeError("boom")
        assert current_request_id() == ""


def _capture(level: int = logging.DEBUG) -> tuple[io.StringIO, logging.Handler]:
    stream = io.StringIO()
    handler = configure_json_logging(stream, level=level)
    return stream, handler


class TestJsonEmission:
    def test_structured_record_is_one_json_object(self):
        stream, handler = _capture()
        try:
            get_logger("repro.test").info("unit-event", design="d695", n=3)
        finally:
            remove_json_logging(handler)
        record = parse_json_log_line(stream.getvalue().strip())
        assert record["event"] == "unit-event"
        assert record["level"] == "info"
        assert record["logger"] == "repro.test"
        assert record["design"] == "d695"
        assert record["n"] == 3
        assert record["request_id"] == ""
        assert isinstance(record["ts"], float)

    def test_bound_request_id_lands_on_every_record(self):
        stream, handler = _capture()
        try:
            log = get_logger("repro.test")
            with bind_request_id("req-42"):
                log.info("first")
                log.warning("second", detail="x")
        finally:
            remove_json_logging(handler)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert all(
            parse_json_log_line(line)["request_id"] == "req-42"
            for line in lines
        )

    def test_plain_stdlib_records_share_the_stream(self):
        stream, handler = _capture()
        try:
            logging.getLogger("repro.test").info("plain %s message", "old")
        finally:
            remove_json_logging(handler)
        record = parse_json_log_line(stream.getvalue().strip())
        assert record["event"] == "log"
        assert record["message"] == "plain old message"

    def test_unserializable_fields_degrade_to_repr(self):
        stream, handler = _capture()
        try:
            get_logger("repro.test").info("odd", payload={1, 2})
        finally:
            remove_json_logging(handler)
        record = parse_json_log_line(stream.getvalue().strip())
        assert "1" in record["payload"] and "2" in record["payload"]

    def test_below_level_records_are_suppressed(self):
        stream, handler = _capture(level=logging.WARNING)
        try:
            get_logger("repro.test").info("quiet")
            get_logger("repro.test").warning("loud")
        finally:
            remove_json_logging(handler)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 1
        assert parse_json_log_line(lines[0])["event"] == "loud"

    def test_configure_is_idempotent_per_stream(self):
        stream = io.StringIO()
        first = configure_json_logging(stream)
        second = configure_json_logging(stream)
        try:
            assert first is second
            get_logger("repro.test").info("once")
        finally:
            remove_json_logging(first)
        assert len(stream.getvalue().strip().splitlines()) == 1

    def test_exception_info_is_captured(self):
        stream, handler = _capture()
        try:
            try:
                raise ValueError("bad width")
            except ValueError:
                logging.getLogger("repro.test").exception("failed")
        finally:
            remove_json_logging(handler)
        record = parse_json_log_line(stream.getvalue().strip())
        assert "ValueError" in record["exc"]

    def test_parse_rejects_non_objects(self):
        with pytest.raises(ValueError):
            parse_json_log_line("[1, 2, 3]")
        with pytest.raises(json.JSONDecodeError):
            parse_json_log_line("not json at all")


class TestQuietByDefault:
    def test_unconfigured_library_emits_nothing(self, capsys):
        # The "repro" root carries a NullHandler, so an embedder that
        # never configures logging must see zero stderr spill (no
        # logging.lastResort fallback).
        get_logger("repro.serve.service").warning("must-not-print", n=1)
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""

    def test_message_renders_for_plain_formatters(self):
        # Under an ordinary (non-JSON) formatter the event renders as
        # "event key=value ..." -- the -v CLI path.
        stream = io.StringIO()
        handler = logging.StreamHandler(stream)
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger = logging.getLogger("repro.test")
        logger.addHandler(handler)
        old_level = logger.level
        logger.setLevel(logging.INFO)
        try:
            get_logger("repro.test").info("fallback-event", width=16)
        finally:
            logger.removeHandler(handler)
            logger.setLevel(old_level)
        assert "fallback-event width=16" in stream.getvalue()
