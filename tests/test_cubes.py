"""Unit tests for the test-cube model and generator."""

import numpy as np
import pytest

from repro.compression.cubes import (
    DENSE_CELL_LIMIT,
    TestCubeSet,
    X,
    fill_random,
    fill_zero,
    generate_cubes,
)
from repro.soc.core import Core
from repro.wrapper.design import design_wrapper


class TestCubeSetValidation:
    def test_shape_checked(self, small_core):
        with pytest.raises(ValueError, match="shape"):
            TestCubeSet(core=small_core, bits=np.zeros((2, 3), dtype=np.int8))

    def test_value_range_checked(self, small_core):
        bits = np.full((small_core.patterns, small_core.scan_in_bits), 5, np.int8)
        with pytest.raises(ValueError, match="values"):
            TestCubeSet(core=small_core, bits=bits)

    def test_bits_become_readonly(self, small_core):
        cubes = generate_cubes(small_core)
        with pytest.raises(ValueError):
            cubes.bits[0, 0] = 1


class TestGenerator:
    def test_deterministic(self, small_core):
        a = generate_cubes(small_core)
        b = generate_cubes(small_core)
        assert np.array_equal(a.bits, b.bits)

    def test_seed_changes_bits(self, small_core):
        a = generate_cubes(small_core)
        b = generate_cubes(small_core.with_seed(small_core.seed + 1))
        assert not np.array_equal(a.bits, b.bits)

    def test_density_close_to_target(self):
        core = Core(
            name="big",
            inputs=0,
            outputs=0,
            scan_chain_lengths=(1000,),
            patterns=100,
            care_bit_density=0.25,
            seed=1,
        )
        cubes = generate_cubes(core)
        assert abs(cubes.care_bit_density - 0.25) < 0.01

    def test_one_fraction_close_to_target(self):
        core = Core(
            name="big",
            inputs=0,
            outputs=0,
            scan_chain_lengths=(1000,),
            patterns=100,
            care_bit_density=0.5,
            one_fraction=0.7,
            seed=1,
        )
        cubes = generate_cubes(core)
        assert abs(cubes.one_fraction - 0.7) < 0.02

    def test_pattern_override(self, small_core):
        cubes = generate_cubes(small_core, patterns=5)
        assert cubes.patterns == 5
        assert cubes.core.patterns == 5

    def test_pattern_override_rejects_zero(self, small_core):
        with pytest.raises(ValueError):
            generate_cubes(small_core, patterns=0)

    def test_dense_limit_guard(self):
        huge = Core(
            name="huge",
            inputs=0,
            outputs=0,
            scan_chain_lengths=(100_000,) * 10,
            patterns=100_000,
            care_bit_density=0.01,
        )
        assert huge.patterns * huge.scan_in_bits > DENSE_CELL_LIMIT
        with pytest.raises(MemoryError):
            generate_cubes(huge)


class TestSlices:
    def test_slices_shape(self, small_core):
        cubes = generate_cubes(small_core)
        design = design_wrapper(small_core, 3)
        slices = cubes.slices(design)
        assert slices.shape == (small_core.patterns, design.scan_in_max, 3)

    def test_slices_preserve_care_bits(self, small_core):
        cubes = generate_cubes(small_core)
        design = design_wrapper(small_core, 3)
        slices = cubes.slices(design)
        matrix = design.scan_in_position_matrix()
        for q in (0, small_core.patterns - 1):
            for j in range(matrix.shape[0]):
                for h in range(matrix.shape[1]):
                    pos = matrix[j, h]
                    if pos >= 0:
                        assert slices[q, j, h] == cubes.bits[q, pos]
                    else:
                        assert slices[q, j, h] == X

    def test_slices_reject_foreign_design(self, small_core, comb_core):
        cubes = generate_cubes(small_core)
        design = design_wrapper(comb_core, 2)
        with pytest.raises(ValueError, match="different core"):
            cubes.slices(design)

    def test_total_care_preserved_across_m(self, small_core):
        cubes = generate_cubes(small_core)
        for m in (1, 2, 5, 9):
            design = design_wrapper(small_core, m)
            slices = cubes.slices(design)
            assert int((slices != X).sum()) == cubes.care_bits


class TestFills:
    def test_fill_zero(self, small_core):
        cubes = generate_cubes(small_core)
        filled = fill_zero(cubes)
        assert set(np.unique(filled)) <= {0, 1}
        assert cubes.is_compatible_with(filled)

    def test_fill_random_compatible(self, small_core):
        cubes = generate_cubes(small_core)
        filled = fill_random(cubes, seed=3)
        assert cubes.is_compatible_with(filled)

    def test_fill_random_deterministic(self, small_core):
        cubes = generate_cubes(small_core)
        assert np.array_equal(fill_random(cubes, 3), fill_random(cubes, 3))

    def test_is_compatible_rejects_flipped_care_bit(self, small_core):
        cubes = generate_cubes(small_core)
        filled = fill_zero(cubes)
        care = np.argwhere(cubes.bits != X)
        q, b = care[0]
        filled[q, b] = 1 - filled[q, b]
        assert not cubes.is_compatible_with(filled)

    def test_is_compatible_rejects_wrong_shape(self, small_core):
        cubes = generate_cubes(small_core)
        assert not cubes.is_compatible_with(np.zeros((1, 1)))
