"""The run-report artifact: construction, round-trip, rendering, CLI."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.report import (
    REPORT_SCHEMA_VERSION,
    RunReport,
    render_report,
    session_report,
)
from repro.pipeline import RunConfig, plan
from repro.reporting.export import result_from_json, result_to_json


@pytest.fixture(scope="module")
def module_soc():
    """The conftest tiny SOC, rebuilt module-scoped for reuse here."""
    from repro.soc.core import Core
    from repro.soc.soc import Soc

    return Soc(
        name="tiny",
        cores=(
            Core(
                name="small", inputs=6, outputs=4,
                scan_chain_lengths=(12, 10, 9, 7), patterns=20,
                care_bit_density=0.3, seed=42,
            ),
            Core(
                name="comb", inputs=16, outputs=8, patterns=10,
                care_bit_density=0.7, seed=7,
            ),
            Core(
                name="sparse", inputs=10, outputs=10,
                scan_chain_lengths=tuple([40] * 12), patterns=50,
                care_bit_density=0.03, seed=11,
            ),
        ),
    )


@pytest.fixture(scope="module")
def observed(module_soc):
    """One tiny-SOC run with observability on: (result, context)."""
    with obs.enabled() as active:
        result = plan(module_soc, 8, RunConfig(compression="auto"))
    return result, active


class TestReportAttachment:
    def test_no_report_while_disabled(self, tiny_soc):
        result = plan(tiny_soc, 8, RunConfig(compression="auto"))
        assert result.report is None

    def test_report_attached_when_enabled(self, observed):
        result, _ = observed
        report = result.report
        assert isinstance(report, RunReport)
        assert report.soc_name == "tiny"
        assert report.width_budget == 8
        assert report.test_time == result.test_time
        assert report.test_data_volume == result.architecture.test_data_volume

    def test_stage_timings_match_result(self, observed):
        result, _ = observed
        assert result.report.stage_timings == result.stage_timings
        stages = [stage for stage, _ in result.report.stage_timings]
        assert stages == ["wrapper", "decompressor", "architecture", "schedule"]

    def test_metrics_totals_are_differential(self, observed):
        """Report counters equal the result's own bookkeeping."""
        result, _ = observed
        counters = result.report.metrics["counters"]
        assert counters["architecture.partitions_evaluated"] == (
            result.partitions_evaluated
        )
        assert counters["schedule.cores_scheduled"] == len(
            result.architecture.scheduled
        )
        assert counters["analysis.cores_requested"] == 3  # tiny has 3 cores

    def test_caches_section_has_wrapper_and_tables(self, observed):
        result, _ = observed
        caches = result.report.caches
        assert {"hits", "misses", "entries"} <= set(caches["wrapper_lru"])
        assert {"hits", "misses"} <= set(caches["lookup_tables"])

    def test_tam_utilization_rows(self, observed):
        result, _ = observed
        rows = result.report.tam_utilization
        assert len(rows) == len(result.architecture.tams)
        for row in rows:
            wasted = (row["total_cycles"] - row["busy_cycles"]) * row["width"]
            assert row["wire_cycles_wasted"] == wasted
            assert 0.0 <= row["utilization"] <= 1.0

    def test_event_counts_census(self, observed):
        result, _ = observed
        counts = result.report.event_counts
        assert counts["run-start"] == 1
        assert counts["run-end"] == 1
        assert counts["stage-end"] == 4

    def test_last_report_and_run_count_on_context(self, observed):
        result, active = observed
        assert active.run_count == 1
        assert active.last_report is result.report


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self, observed):
        result, _ = observed
        report = result.report
        assert RunReport.from_json(report.to_json()) == report

    def test_dict_has_schema_and_kind(self, observed):
        result, _ = observed
        data = result.report.to_dict()
        assert data["schema"] == REPORT_SCHEMA_VERSION
        assert data["kind"] == "run-report"
        json.dumps(data)  # JSON-clean all the way down

    def test_unknown_schema_is_rejected(self, observed):
        result, _ = observed
        data = result.report.to_dict()
        data["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            RunReport.from_dict(data)

    def test_result_export_carries_the_report(self, observed):
        result, _ = observed
        restored = result_from_json(result_to_json(result))
        assert restored == result  # PlanResult equality ignores .report
        assert restored.report == result.report

    def test_export_without_report_restores_none(self, tiny_soc):
        result = plan(tiny_soc, 8, RunConfig(compression="auto"))
        restored = result_from_json(result_to_json(result))
        assert restored.report is None


class TestRendering:
    def test_render_contains_all_tables(self, observed):
        result, _ = observed
        text = render_report(result.report)
        assert "run report: tiny at W=8" in text
        for title in ("stage timings", "metrics", "caches", "TAM utilization"):
            assert title in text
        assert "architecture.partitions_evaluated" in text

    def test_session_report_shape(self, observed):
        _, active = observed
        data = session_report(active)
        assert data["kind"] == "session-report"
        assert data["schema"] == REPORT_SCHEMA_VERSION
        assert data["span_count"] == len(active.tracer.spans)
        json.dumps(data)


class TestReportSubcommand:
    def test_renders_saved_report(self, observed, tmp_path, capsys):
        from repro.cli import main

        result, _ = observed
        path = tmp_path / "report.json"
        path.write_text(result.report.to_json() + "\n")
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run report: tiny" in out
        assert "TAM utilization" in out

    def test_renders_report_embedded_in_result_export(
        self, observed, tmp_path, capsys
    ):
        from repro.cli import main

        result, _ = observed
        path = tmp_path / "export.json"
        path.write_text(result_to_json(result) + "\n")
        assert main(["report", str(path)]) == 0
        assert "run report: tiny" in capsys.readouterr().out

    def test_rejects_non_report_json(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "junk.json"
        path.write_text('{"hello": "world"}\n')
        assert main(["report", str(path)]) == 2
        assert "not a run report" in capsys.readouterr().err
