"""Unit tests for the fixed-length-index dictionary codec."""

import numpy as np
import pytest

from repro.compression.cubes import X, generate_cubes
from repro.compression.dictionary import (
    Dictionary,
    build_dictionary,
    canonicalize,
    compression_stats,
    decode,
    delivery_cycles,
    encode,
)
from repro.wrapper.design import design_wrapper


class TestCanonicalize:
    def test_x_filled_with_majority(self):
        slices = np.array([[1, 1, X, 0]], dtype=np.int8)
        out = canonicalize(slices)
        assert out.tolist() == [[1, 1, 1, 0]]

    def test_zero_majority(self):
        slices = np.array([[0, 0, X, 1]], dtype=np.int8)
        assert canonicalize(slices).tolist() == [[0, 0, 0, 1]]

    def test_tie_fills_zero(self):
        slices = np.array([[1, 0, X, X]], dtype=np.int8)
        assert canonicalize(slices).tolist() == [[1, 0, 0, 0]]

    def test_compatible_sparse_slices_collapse(self):
        a = np.array([0, X, 1, X, X], dtype=np.int8)
        b = np.array([0, X, 1, X, 0], dtype=np.int8)
        ca, cb = canonicalize(np.stack([a, b]))
        assert ca.tolist() == cb.tolist()

    def test_3d_input(self, rng):
        slices = rng.integers(0, 3, size=(3, 4, 6)).astype(np.int8)
        assert canonicalize(slices).shape == (12, 6)


class TestBuildDictionary:
    def test_most_frequent_first(self):
        slices = np.array(
            [[0, 0, 0]] * 5 + [[1, 1, 1]] * 3 + [[1, 0, 1]] * 1, dtype=np.int8
        )
        dictionary = build_dictionary(slices, index_bits=1)
        assert len(dictionary.words) == 2
        assert dictionary.index_of(np.array([0, 0, 0], dtype=np.int8).tobytes()) == 0

    def test_capacity_respected(self, rng):
        slices = rng.integers(0, 2, size=(100, 8)).astype(np.int8)
        dictionary = build_dictionary(slices, index_bits=3)
        assert len(dictionary.words) <= 8

    def test_index_bits_guard(self):
        with pytest.raises(ValueError):
            build_dictionary(np.zeros((2, 3), dtype=np.int8), index_bits=0)

    def test_ram_bits(self):
        slices = np.array([[0, 0, 0, 0]] * 4, dtype=np.int8)
        dictionary = build_dictionary(slices, index_bits=2)
        assert dictionary.ram_bits == len(dictionary.words) * 4


class TestStatsAndTiming:
    def test_all_hits_when_dictionary_covers(self):
        slices = np.array([[0, 1, 0]] * 10, dtype=np.int8)
        dictionary = build_dictionary(slices, index_bits=1)
        stats = compression_stats(slices, dictionary)
        assert stats.hits == 10 and stats.hit_rate == 1.0
        assert stats.compressed_bits == 10 * (1 + 1)

    def test_miss_costs_literal(self, rng):
        slices = rng.integers(0, 2, size=(64, 12)).astype(np.int8)
        dictionary = Dictionary(m=12, index_bits=2, words=())
        stats = compression_stats(slices, dictionary)
        assert stats.hits == 0
        assert stats.compressed_bits == 64 * 13

    def test_width_mismatch(self):
        dictionary = Dictionary(m=4, index_bits=2, words=())
        with pytest.raises(ValueError, match="width"):
            compression_stats(np.zeros((2, 5), dtype=np.int8), dictionary)

    def test_delivery_cycles(self):
        stats = compression_stats(
            np.array([[0, 0, 0, 0]] * 3, dtype=np.int8),
            build_dictionary(np.array([[0, 0, 0, 0]] * 3, dtype=np.int8), 1),
        )
        # All hits: 2 bits per slice over 2 wires -> 1 cycle per slice.
        assert delivery_cycles(stats, 2) == 3
        with pytest.raises(ValueError):
            delivery_cycles(stats, 0)


class TestRoundTrip:
    def test_encode_decode(self, rng):
        slices = rng.integers(0, 3, size=(40, 9)).astype(np.int8)
        dictionary = build_dictionary(slices, index_bits=3)
        bits = encode(slices, dictionary)
        decoded = decode(bits, dictionary, 40)
        canonical = canonicalize(slices)
        assert np.array_equal(decoded, canonical)

    def test_decoded_honors_care_bits(self, small_core):
        cubes = generate_cubes(small_core)
        design = design_wrapper(small_core, 4)
        slices = cubes.slices(design).reshape(-1, 4)
        dictionary = build_dictionary(slices, index_bits=4)
        decoded = decode(encode(slices, dictionary), dictionary, slices.shape[0])
        care = slices != X
        assert np.array_equal(decoded[care], slices[care])

    def test_bit_count_matches_stats(self, rng):
        slices = rng.integers(0, 3, size=(30, 7)).astype(np.int8)
        dictionary = build_dictionary(slices, index_bits=2)
        stats = compression_stats(slices, dictionary)
        assert len(encode(slices, dictionary)) == stats.compressed_bits

    def test_stream_length_validated(self, rng):
        slices = rng.integers(0, 2, size=(5, 6)).astype(np.int8)
        dictionary = build_dictionary(slices, index_bits=2)
        bits = encode(slices, dictionary)
        with pytest.raises(ValueError, match="mismatch"):
            decode(bits + [0], dictionary, 5)

    def test_sparse_cubes_hit_hard(self):
        """Sparse test sets collapse onto few canonical words."""
        from repro.soc.core import Core

        core = Core(
            name="sp",
            inputs=4,
            outputs=4,
            scan_chain_lengths=(40,) * 8,
            patterns=60,
            care_bit_density=0.02,
            seed=3,
        )
        cubes = generate_cubes(core)
        design = design_wrapper(core, 8)
        slices = cubes.slices(design).reshape(-1, 8)
        dictionary = build_dictionary(slices, index_bits=4)
        stats = compression_stats(slices, dictionary)
        assert stats.hit_rate > 0.8
        # All-hit coding costs (1 + index_bits) vs m raw bits per slice.
        assert stats.compressed_bits < 0.7 * slices.size
