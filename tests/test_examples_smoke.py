"""Every script in examples/ must run clean, start to finish.

Each example is executed as a real subprocess -- the way a reader would
run it -- with a throwaway cache directory so the suite stays hermetic.
A failure message carries the script's output, so a broken example
points straight at its own traceback.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO / "examples").glob("*.py"))

TIMEOUT_S = 300


def _example_ids() -> list[str]:
    return [path.stem for path in EXAMPLES]


def test_examples_exist():
    assert len(EXAMPLES) >= 8, [p.name for p in EXAMPLES]


@pytest.mark.parametrize("script", EXAMPLES, ids=_example_ids())
def test_example_runs_clean(script: Path, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    # Hermetic caching: a real cache dir (examples may exercise it),
    # but never the user's.
    env.pop("REPRO_NO_CACHE", None)
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
        timeout=TIMEOUT_S,
    )
    assert completed.returncode == 0, (
        f"{script.name} exited {completed.returncode}\n"
        f"--- stdout ---\n{completed.stdout[-4000:]}\n"
        f"--- stderr ---\n{completed.stderr[-4000:]}"
    )
