"""Differential proof: the service path equals the direct pipeline.

A plan requested through submit -> queue -> worker -> ``result_to_json``
-> socket -> ``result_from_dict`` must be bit-identical (the engine's
strict ``TestArchitecture`` equality plus matching search statistics)
to calling :func:`repro.pipeline.plan` directly.  ``cpu_seconds`` and
``stage_timings`` are wall clock and are the only fields allowed to
differ.

Thread isolation is used so the service worker shares this process's
analysis memo -- the serialization/transport path under test is
identical to process mode, which the fault and server tests cover.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.pipeline import RunConfig, plan
from repro.reporting.export import result_from_json
from repro.serve import (
    JobState,
    PlanningService,
    PlanRequest,
    ServiceSettings,
)
from repro.soc.industrial import load_design

# d695 (the academic benchmark) and d2758 (the ITC'02-class design).
DESIGNS = ("d695", "d2758")


def _assert_same_plan(new, old):
    assert new.architecture == old.architecture
    assert new.soc_name == old.soc_name
    assert new.width_budget == old.width_budget
    assert new.compression == old.compression
    assert new.partitions_evaluated == old.partitions_evaluated
    assert new.strategy == old.strategy
    assert new.test_time == old.test_time
    assert new.test_data_volume == old.test_data_volume
    assert new.tam_widths == old.tam_widths


def _service_plan(design: str, width: int, config: RunConfig):
    async def scenario():
        service = PlanningService(
            ServiceSettings(workers=1, isolation="thread")
        )
        await service.start()
        job, _ = service.submit(PlanRequest(design, width, config))
        done = await service.wait(job.id, timeout=600)
        await service.shutdown(drain=True)
        assert done.state is JobState.DONE, done.error
        return result_from_json(done.result_json)

    return asyncio.run(scenario())


@pytest.mark.parametrize("design", DESIGNS)
def test_service_bit_identical_to_direct_plan(design):
    config = RunConfig(compression="auto")
    direct = plan(load_design(design), 16, config)
    served = _service_plan(design, 16, config)
    _assert_same_plan(served, direct)


def test_service_bit_identical_under_constraints():
    """Constraint bookkeeping survives the full service round trip."""
    config = RunConfig(compression="auto", power_budget=900.0)
    direct = plan(load_design("d695"), 12, config)
    served = _service_plan("d695", 12, config)
    _assert_same_plan(served, direct)
    assert served.peak_power == direct.peak_power
    assert served.power_budget == direct.power_budget
    assert served.tam_idle_cycles == direct.tam_idle_cycles


def test_perf_knobs_coalesce_onto_identical_plan():
    """Requests differing only in jobs/cache knobs dedup onto one job
    whose result equals a direct run with either knob set."""

    async def scenario():
        service = PlanningService(
            ServiceSettings(workers=1, isolation="thread")
        )
        await service.start()
        first, deduped_first = service.submit(
            PlanRequest("d695", 16, RunConfig(jobs=4, use_cache=False))
        )
        second, deduped_second = service.submit(
            PlanRequest("d695", 16, RunConfig(jobs=1, use_cache=False))
        )
        assert not deduped_first and deduped_second
        assert second is first
        done = await service.wait(first.id, timeout=600)
        await service.shutdown(drain=True)
        assert done.state is JobState.DONE, done.error
        return result_from_json(done.result_json)

    served = asyncio.run(scenario())
    direct = plan(load_design("d695"), 16, RunConfig(jobs=1))
    _assert_same_plan(served, direct)
