"""Wire-format and dedup-fingerprint tests for the service protocol."""

from __future__ import annotations

import json

import pytest

from repro.pipeline import RunConfig
from repro.serve.errors import ProtocolError
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    PlanRequest,
    decode_message,
    encode_message,
    error_response,
    ok_response,
)


class TestRunConfigRoundTrip:
    def test_default_round_trips(self):
        config = RunConfig()
        assert RunConfig.from_dict(config.to_dict()) == config

    def test_every_field_round_trips(self):
        config = RunConfig(
            compression="select",
            mode="estimate",
            samples=3,
            grid=5,
            max_tams=3,
            min_tam_width=2,
            min_code_width=4,
            strategy="greedy",
            power_budget=123.5,
            power_of={"c1": 10.0, "c2": 20.0},
            precedence=(("c1", "c2"),),
            jobs=4,
            cache_dir="/tmp/x",
            use_cache=False,
        )
        rebuilt = RunConfig.from_dict(config.to_dict())
        assert rebuilt == config

    def test_dict_is_json_ready(self):
        config = RunConfig(precedence=(("a", "b"),), power_of={"a": 1.0})
        text = json.dumps(config.to_dict())
        assert RunConfig.from_dict(json.loads(text)) == config

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown RunConfig field"):
            RunConfig.from_dict({"warp_speed": 9})


class TestFingerprint:
    def test_stable_across_equal_requests(self):
        a = PlanRequest("d695", 16, RunConfig(compression="auto"))
        b = PlanRequest("d695", 16, RunConfig(compression="auto"))
        assert a.fingerprint() == b.fingerprint()

    def test_performance_knobs_do_not_change_identity(self):
        # jobs / cache_dir / use_cache cannot change the planned result
        # (the engine's bit-identity invariant), so they must coalesce.
        a = PlanRequest("d695", 16, RunConfig(jobs=8, use_cache=False))
        b = PlanRequest(
            "d695", 16, RunConfig(jobs=1, cache_dir="/tmp/z", use_cache=True)
        )
        assert a.fingerprint() == b.fingerprint()

    def test_scheduling_attributes_do_not_change_identity(self):
        a = PlanRequest("d695", 16, priority=9, timeout_s=5.0)
        b = PlanRequest("d695", 16)
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize(
        "other",
        [
            PlanRequest("d2758", 16),
            PlanRequest("d695", 24),
            PlanRequest("d695", 16, RunConfig(compression="none")),
            PlanRequest("d695", 16, RunConfig(power_budget=50.0)),
            PlanRequest("d695", 16, fault={"sleep_s": 1}),
        ],
    )
    def test_semantic_changes_change_identity(self, other):
        base = PlanRequest("d695", 16)
        assert base.fingerprint() != other.fingerprint()

    def test_request_round_trips(self):
        request = PlanRequest(
            "System1",
            32,
            RunConfig(compression="select"),
            priority=3,
            timeout_s=60.0,
            fault={"sleep_s": 1},
        )
        rebuilt = PlanRequest.from_dict(request.to_dict())
        assert rebuilt == request
        assert rebuilt.fingerprint() == request.fingerprint()

    def test_validation(self):
        with pytest.raises(ProtocolError):
            PlanRequest("", 16)
        with pytest.raises(ProtocolError):
            PlanRequest("d695", 0)
        with pytest.raises(ProtocolError):
            PlanRequest.from_dict({"design": "d695"})  # missing width
        with pytest.raises(ProtocolError, match="bad config"):
            PlanRequest.from_dict(
                {"design": "d695", "width": 16, "config": {"nope": 1}}
            )


class TestFraming:
    def test_encode_decode_round_trip(self):
        message = {"op": "submit", "design": "d695", "width": 16}
        frame = encode_message(message)
        assert frame.endswith(b"\n")
        assert decode_message(frame) == message

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError, match="not JSON"):
            decode_message(b"{nope\n")
        with pytest.raises(ProtocolError, match="empty"):
            decode_message(b"   \n")
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_message(b"[1, 2]\n")

    def test_decode_rejects_future_protocol_version(self):
        frame = encode_message({"op": "ping", "v": PROTOCOL_VERSION + 1})
        with pytest.raises(ProtocolError, match="unsupported protocol"):
            decode_message(frame)

    def test_response_helpers(self):
        ok = ok_response(job_id="j1")
        assert ok["ok"] is True and ok["v"] == PROTOCOL_VERSION
        err = error_response("backpressure", "full", retry_after=2.5)
        assert err["ok"] is False
        assert err["error"] == "backpressure"
        assert err["retry_after"] == 2.5


class TestWorkerPayload:
    def test_attempt_is_stamped(self):
        request = PlanRequest("d695", 16)
        payload = request.worker_payload(2)
        assert payload["attempt"] == 2
        assert payload["design"] == "d695"
        # The payload is exactly what from_dict accepts (minus attempt).
        payload.pop("attempt")
        assert PlanRequest.from_dict(payload) == request
