"""Unit tests for the process-safe metrics registry."""

from __future__ import annotations

import pickle
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_keeps_last_value(self):
        g = Gauge()
        g.set(1.5)
        g.set(0.25)
        assert g.value == 0.25

    def test_histogram_buckets_by_upper_boundary(self):
        h = Histogram((0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        # One bucket per boundary plus an overflow bucket at the end.
        assert h.counts == [1, 2, 1, 1]
        assert h.count == 5
        assert h.total == pytest.approx(56.05)
        assert h.mean == pytest.approx(56.05 / 5)

    def test_histogram_boundary_value_lands_in_its_bucket(self):
        h = Histogram((0.1, 1.0))
        h.observe(0.1)  # <= 0.1 goes to the first bucket
        assert h.counts == [1, 0, 0]

    def test_histogram_rejects_unsorted_boundaries(self):
        with pytest.raises(ValueError):
            Histogram((1.0, 0.1))
        with pytest.raises(ValueError):
            Histogram(())

    def test_default_buckets_are_sorted_seconds(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 60.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_snapshot_layout(self):
        reg = MetricsRegistry()
        reg.inc("runs", 2)
        reg.set_gauge("rate", 0.5)
        reg.observe("lat", 0.2, (0.1, 1.0))
        snap = reg.snapshot()
        assert snap["counters"] == {"runs": 2}
        assert snap["gauges"] == {"rate": 0.5}
        hist = snap["histograms"]["lat"]
        assert hist["boundaries"] == [0.1, 1.0]
        assert hist["counts"] == [0, 1, 0]
        assert hist["count"] == 1
        assert hist["sum"] == pytest.approx(0.2)

    def test_snapshot_is_plain_data(self):
        reg = MetricsRegistry()
        reg.inc("n")
        reg.observe("lat", 0.01)
        assert pickle.loads(pickle.dumps(reg.snapshot())) == reg.snapshot()

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 1)
        b.inc("n", 2)
        b.inc("only_b", 3)
        a.observe("lat", 0.05, (0.1, 1.0))
        b.observe("lat", 5.0, (0.1, 1.0))
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"] == {"n": 3, "only_b": 3}
        assert snap["histograms"]["lat"]["counts"] == [1, 0, 1]
        assert snap["histograms"]["lat"]["count"] == 2

    def test_merge_keeps_parent_gauge(self):
        """Gauges are last-value-wins; the parent's own value stays."""
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_gauge("rate", 0.9)
        b.set_gauge("rate", 0.1)
        b.set_gauge("worker_only", 7.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["gauges"]["rate"] == 0.9
        assert snap["gauges"]["worker_only"] == 7.0

    def test_merge_rejects_mismatched_boundaries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("lat", 0.5, (0.1, 1.0))
        b.observe("lat", 0.5, (0.5, 2.0))
        with pytest.raises(ValueError):
            a.merge(b.snapshot())

    def test_clear(self):
        reg = MetricsRegistry()
        reg.inc("n")
        reg.clear()
        assert reg.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_thread_safety_of_inc(self):
        reg = MetricsRegistry()

        def bump(_):
            for _ in range(1000):
                reg.inc("n")

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(bump, range(8)))
        assert reg.snapshot()["counters"]["n"] == 8000

    def test_default_registry_is_a_singleton(self):
        assert default_registry() is default_registry()
        assert isinstance(default_registry(), MetricsRegistry)
