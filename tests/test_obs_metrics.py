"""Unit tests for the process-safe metrics registry."""

from __future__ import annotations

import pickle
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_keeps_last_value(self):
        g = Gauge()
        g.set(1.5)
        g.set(0.25)
        assert g.value == 0.25

    def test_histogram_buckets_by_upper_boundary(self):
        h = Histogram((0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        # One bucket per boundary plus an overflow bucket at the end.
        assert h.counts == [1, 2, 1, 1]
        assert h.count == 5
        assert h.total == pytest.approx(56.05)
        assert h.mean == pytest.approx(56.05 / 5)

    def test_histogram_boundary_value_lands_in_its_bucket(self):
        h = Histogram((0.1, 1.0))
        h.observe(0.1)  # <= 0.1 goes to the first bucket
        assert h.counts == [1, 0, 0]

    def test_histogram_rejects_unsorted_boundaries(self):
        with pytest.raises(ValueError):
            Histogram((1.0, 0.1))
        with pytest.raises(ValueError):
            Histogram(())

    def test_default_buckets_are_sorted_seconds(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 60.0

    def test_latency_buckets_are_finer_at_the_low_end(self):
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)
        assert LATENCY_BUCKETS[0] < DEFAULT_BUCKETS[0]
        assert LATENCY_BUCKETS[-1] >= 120.0
        # The service-latency range (sub-10ms) has real resolution.
        assert sum(1 for b in LATENCY_BUCKETS if b <= 0.01) >= 5


class TestHistogramQuantile:
    def test_empty_histogram_returns_zero(self):
        assert Histogram((1.0,)).quantile(0.5) == 0.0
        assert Histogram((1.0,)).quantile(0.99) == 0.0

    def test_rejects_out_of_range_q(self):
        h = Histogram((1.0,))
        h.observe(0.5)
        with pytest.raises(ValueError):
            h.quantile(-0.01)
        with pytest.raises(ValueError):
            h.quantile(1.01)

    def test_single_bucket_interpolates_from_zero(self):
        h = Histogram((1.0,))
        for _ in range(4):
            h.observe(0.5)
        # All mass in [0, 1]: rank q*4 of 4 -> fraction q of the bucket.
        assert h.quantile(0.5) == pytest.approx(0.5)
        assert h.quantile(1.0) == pytest.approx(1.0)
        assert h.quantile(0.25) == pytest.approx(0.25)

    def test_interpolates_within_the_target_bucket(self):
        h = Histogram((0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 0.5, 5.0):  # counts [1, 3, 1, 0]
            h.observe(v)
        # rank(0.5) = 2.5 lands in the (0.1, 1.0] bucket: 1 observation
        # precedes it, so fraction (2.5-1)/3 of the bucket span.
        assert h.quantile(0.5) == pytest.approx(0.1 + 0.9 * (1.5 / 3))
        # rank(1.0) = 5 lands in the (1.0, 10.0] bucket at its far end.
        assert h.quantile(1.0) == pytest.approx(10.0)

    def test_overflow_bucket_reports_last_boundary(self):
        h = Histogram((0.1, 1.0))
        h.observe(50.0)
        h.observe(60.0)
        # The histogram cannot see past its last finite boundary.
        assert h.quantile(0.5) == pytest.approx(1.0)
        assert h.quantile(0.99) == pytest.approx(1.0)

    def test_mixed_overflow_and_in_range(self):
        h = Histogram((1.0,))
        h.observe(0.5)
        h.observe(99.0)
        assert h.quantile(0.25) == pytest.approx(0.5)
        assert h.quantile(0.99) == pytest.approx(1.0)

    def test_zero_quantile_of_nonempty(self):
        h = Histogram((1.0, 2.0))
        h.observe(1.5)
        # rank 0: the very first bucket with mass starts the estimate.
        assert 0.0 <= h.quantile(0.0) <= 2.0

    def test_monotone_in_q(self):
        h = Histogram(LATENCY_BUCKETS)
        for i in range(1, 200):
            h.observe(i / 100.0)
        qs = [h.quantile(q / 20) for q in range(21)]
        assert qs == sorted(qs)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_snapshot_layout(self):
        reg = MetricsRegistry()
        reg.inc("runs", 2)
        reg.set_gauge("rate", 0.5)
        reg.observe("lat", 0.2, (0.1, 1.0))
        snap = reg.snapshot()
        assert snap["counters"] == {"runs": 2}
        assert snap["gauges"] == {"rate": 0.5}
        hist = snap["histograms"]["lat"]
        assert hist["boundaries"] == [0.1, 1.0]
        assert hist["counts"] == [0, 1, 0]
        assert hist["count"] == 1
        assert hist["sum"] == pytest.approx(0.2)

    def test_snapshot_is_plain_data(self):
        reg = MetricsRegistry()
        reg.inc("n")
        reg.observe("lat", 0.01)
        assert pickle.loads(pickle.dumps(reg.snapshot())) == reg.snapshot()

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 1)
        b.inc("n", 2)
        b.inc("only_b", 3)
        a.observe("lat", 0.05, (0.1, 1.0))
        b.observe("lat", 5.0, (0.1, 1.0))
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"] == {"n": 3, "only_b": 3}
        assert snap["histograms"]["lat"]["counts"] == [1, 0, 1]
        assert snap["histograms"]["lat"]["count"] == 2

    def test_merge_keeps_parent_gauge(self):
        """Gauges are last-value-wins; the parent's own value stays."""
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_gauge("rate", 0.9)
        b.set_gauge("rate", 0.1)
        b.set_gauge("worker_only", 7.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["gauges"]["rate"] == 0.9
        assert snap["gauges"]["worker_only"] == 7.0

    def test_merge_rejects_mismatched_boundaries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("lat", 0.5, (0.1, 1.0))
        b.observe("lat", 0.5, (0.5, 2.0))
        with pytest.raises(ValueError):
            a.merge(b.snapshot())

    def test_clear(self):
        reg = MetricsRegistry()
        reg.inc("n")
        reg.clear()
        assert reg.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_thread_safety_of_inc(self):
        reg = MetricsRegistry()

        def bump(_):
            for _ in range(1000):
                reg.inc("n")

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(bump, range(8)))
        assert reg.snapshot()["counters"]["n"] == 8000

    def test_default_registry_is_a_singleton(self):
        assert default_registry() is default_registry()
        assert isinstance(default_registry(), MetricsRegistry)
