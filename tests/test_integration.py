"""End-to-end integration tests across the whole stack.

These exercise the flows a user of the library runs: load a paper
design, co-optimize it, inspect the architecture, and verify that the
compressed plan is actually deliverable (encode the scheduled streams
and expand them through the decompressor model).
"""

import numpy as np
import pytest

import repro
from repro.compression.decompressor import expand_stream, slices_compatible
from repro.compression.selective import encode_slices
from repro.core.hardware import architecture_hardware_cost
from repro.wrapper.design import design_wrapper


class TestD695Flow:
    @pytest.fixture(scope="class")
    def plans(self):
        soc = repro.load_design("d695")
        return (
            soc,
            repro.optimize_soc(soc, 24, compression=False),
            repro.optimize_soc(soc, 24, compression="auto"),
        )

    def test_every_core_scheduled_once(self, plans):
        soc, plain, _ = plans
        names = [s.config.core_name for s in plain.architecture.scheduled]
        assert sorted(names) == sorted(soc.core_names)

    def test_auto_no_worse_than_plain(self, plans):
        _, plain, auto = plans
        assert auto.test_time <= plain.test_time

    def test_volume_accounting_positive(self, plans):
        _, plain, auto = plans
        assert plain.test_data_volume > 0
        assert auto.test_data_volume > 0

    def test_gantt_renders(self, plans):
        _, plain, _ = plans
        text = plain.architecture.render_gantt()
        assert text.count("TAM") >= len(plain.tam_widths)

    def test_cpu_under_a_minute(self, plans):
        # The paper reports sub-minute planning; our CPU budget target.
        _, plain, auto = plans
        assert plain.cpu_seconds < 60
        assert auto.cpu_seconds < 60


class TestCompressedPlanIsDeliverable:
    """Encode the actual cube slices for a scheduled compressed core and
    push them through the decompressor: the plan's codeword count must
    match and the expansion must honor every care bit."""

    def test_plan_matches_bitstream(self):
        core = repro.Core(
            name="deliver",
            inputs=6,
            outputs=6,
            scan_chain_lengths=(18, 16, 15, 14, 12),
            patterns=25,
            care_bit_density=0.06,
            seed=9,
        )
        soc = repro.Soc(name="one", cores=(core,))
        plan = repro.optimize_soc(soc, 8, compression=True)
        config = plan.architecture.config_for("deliver")
        assert config.uses_compression

        cubes = repro.generate_cubes(core)
        design = design_wrapper(core, config.wrapper_chains)
        slices = cubes.slices(design).reshape(-1, config.wrapper_chains)
        stream = encode_slices(slices)

        # The optimizer's codeword accounting equals the real bitstream.
        expected_time = stream.cycles + core.patterns + min(
            design.scan_in_max, design.scan_out_max
        )
        assert config.test_time == expected_time
        assert config.volume == stream.total_bits

        decoded = expand_stream(stream)
        assert slices_compatible(slices, decoded)


class TestIndustrialFlow:
    def test_system2_compression_wins_big(self):
        soc = repro.load_design("System2")
        plain = repro.optimize_soc(soc, 24, compression=False)
        packed = repro.optimize_soc(soc, 24, compression=True)
        assert packed.test_time * 3 < plain.test_time
        assert packed.test_data_volume * 3 < plain.test_data_volume

    def test_hardware_overhead_small(self):
        soc = repro.load_design("System2")
        packed = repro.optimize_soc(soc, 24, compression=True)
        cost = architecture_hardware_cost(packed.architecture)
        assert cost.area_fraction(soc.gates) < 0.01


class TestAteIntegration:
    def test_schedule_fits_big_tester(self):
        soc = repro.load_design("d695")
        plan = repro.optimize_soc(soc, 16, compression=False)
        ate = repro.Ate(channels=16, memory_depth=50_000_000)
        assert ate.depth_for_schedule(plan.test_time).fits
        assert ate.seconds(plan.test_time) > 0


class TestSocFileRoundTripThroughOptimizer:
    def test_external_design_flow(self, tmp_path):
        soc = repro.load_design("d695")
        path = tmp_path / "design.soc"
        repro.write_soc_file(soc, path)
        loaded = repro.parse_soc_file(path)
        a = repro.optimize_soc(soc, 12, compression=False)
        b = repro.optimize_soc(loaded, 12, compression=False)
        assert a.test_time == b.test_time
        assert a.tam_widths == b.tam_widths
