"""Unit tests for the decompressor hardware cost model."""

import pytest

from repro.core.hardware import (
    CONTROLLER_FLIP_FLOPS,
    CONTROLLER_GATES,
    DecompressorCost,
    architecture_hardware_cost,
    decompressor_cost,
)
from repro.core.optimizer import optimize_per_tam, optimize_soc
from repro.soc.core import Core
from repro.soc.soc import Soc


class TestDecompressorCost:
    def test_controller_floor(self):
        cost = decompressor_cost(1)
        assert cost.flip_flops > CONTROLLER_FLIP_FLOPS
        assert cost.gates > CONTROLLER_GATES

    def test_scales_with_outputs(self):
        small = decompressor_cost(16)
        large = decompressor_cost(256)
        assert large.flip_flops > small.flip_flops
        assert large.gates > small.gates

    def test_explicit_width_accepted(self):
        cost = decompressor_cost(100, w=12)
        assert cost.code_width == 12

    def test_narrow_width_rejected(self):
        with pytest.raises(ValueError, match="too narrow"):
            decompressor_cost(100, w=5)

    def test_sub_percent_of_million_gates(self):
        # The paper: "for larger than million-gate designs ... only 1%".
        cost = decompressor_cost(255)
        assert cost.area_fraction(1_000_000) < 0.01

    def test_area_fraction_needs_positive_gates(self):
        with pytest.raises(ValueError):
            decompressor_cost(8).area_fraction(0)


class TestArchitectureCost:
    @pytest.fixture
    def sparse_soc(self):
        cores = tuple(
            Core(
                name=f"c{i}",
                inputs=8,
                outputs=8,
                scan_chain_lengths=tuple([32] * 10),
                patterns=40,
                care_bit_density=0.03,
                seed=300 + i,
            )
            for i in range(3)
        )
        return Soc(name="s", cores=cores)

    def test_uncompressed_architecture_costs_nothing(self, sparse_soc):
        result = optimize_soc(sparse_soc, 8, compression=False)
        cost = architecture_hardware_cost(result.architecture)
        assert cost.gates == 0 and cost.flip_flops == 0

    def test_per_core_counts_every_core(self, sparse_soc):
        result = optimize_soc(sparse_soc, 12, compression=True)
        compressed = [
            s for s in result.architecture.scheduled if s.config.uses_compression
        ]
        cost = architecture_hardware_cost(result.architecture)
        individual = sum(
            decompressor_cost(s.config.wrapper_chains, s.config.code_width).gates
            for s in compressed
        )
        assert cost.gates == individual

    def test_per_tam_counts_once_per_tam(self, sparse_soc):
        result = optimize_per_tam(sparse_soc, 9)
        cost = architecture_hardware_cost(result.architecture)
        tams_used = {
            s.tam_index
            for s in result.architecture.scheduled
            if s.config.uses_compression
        }
        assert cost.gates <= len(tams_used) * decompressor_cost(
            max(t.width for t in result.architecture.tams)
        ).gates
        assert cost.gates > 0

    def test_returns_dataclass(self, sparse_soc):
        result = optimize_soc(sparse_soc, 8, compression=True)
        assert isinstance(architecture_hardware_cost(result.architecture), DecompressorCost)
