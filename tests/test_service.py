"""PlanningService behavior: dedup, backpressure, priorities, lifecycle.

These tests inject a controllable runner so concurrency windows are
deterministic (a job stays in flight until the test opens its gate);
the real planning path is covered by the differential and server
integration tests.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.pipeline import RunConfig
from repro.serve import (
    BackpressureError,
    JobNotFound,
    JobState,
    PlanningService,
    PlanRequest,
    ServiceSettings,
    ShuttingDown,
)


class GatedRunner:
    """A runner whose jobs block until the test releases them."""

    def __init__(self) -> None:
        self.gate = threading.Event()
        self.calls: list[dict] = []
        self._lock = threading.Lock()

    def __call__(self, payload, *, timeout_s=None, should_cancel=None):
        with self._lock:
            self.calls.append(dict(payload))
        while not self.gate.wait(timeout=0.02):
            if should_cancel is not None and should_cancel():
                from repro.serve.errors import JobCancelled

                raise JobCancelled("cancelled by test runner")
        return json.dumps(
            {"design": payload["design"], "width": payload["width"]}
        )


def _request(width: int = 16, **kwargs) -> PlanRequest:
    return PlanRequest("d695", width, RunConfig(), **kwargs)


def _service(runner, **settings) -> PlanningService:
    defaults = dict(workers=2, isolation="thread", max_depth=4)
    defaults.update(settings)
    return PlanningService(ServiceSettings(**defaults), runner=runner)


async def _drain(service: PlanningService) -> None:
    await service.shutdown(drain=True)


class TestDedup:
    def test_identical_inflight_requests_coalesce(self):
        async def scenario():
            runner = GatedRunner()
            service = _service(runner, workers=1)
            await service.start()
            first, deduped_first = service.submit(_request())
            second, deduped_second = service.submit(_request())
            third, deduped_third = service.submit(_request())
            assert not deduped_first
            assert deduped_second and deduped_third
            assert second is first and third is first
            assert first.coalesced == 2
            assert service.counters["jobs_deduped"] == 2
            assert service.counters["jobs_submitted"] == 1
            runner.gate.set()
            job = await service.wait(first.id, timeout=10)
            assert job.state is JobState.DONE
            # One computation served all three submissions.
            assert len(runner.calls) == 1
            await _drain(service)

        asyncio.run(scenario())

    def test_different_requests_do_not_coalesce(self):
        async def scenario():
            runner = GatedRunner()
            runner.gate.set()
            service = _service(runner)
            await service.start()
            a, _ = service.submit(_request(16))
            b, _ = service.submit(_request(24))
            assert a is not b
            await service.wait(a.id, timeout=10)
            await service.wait(b.id, timeout=10)
            assert len(runner.calls) == 2
            await _drain(service)

        asyncio.run(scenario())

    def test_finished_jobs_do_not_absorb_new_submissions(self):
        async def scenario():
            runner = GatedRunner()
            runner.gate.set()
            service = _service(runner)
            await service.start()
            first, _ = service.submit(_request())
            await service.wait(first.id, timeout=10)
            second, deduped = service.submit(_request())
            assert not deduped and second is not first
            await service.wait(second.id, timeout=10)
            await _drain(service)

        asyncio.run(scenario())


class TestBackpressure:
    def test_full_queue_rejects_with_retry_after(self):
        async def scenario():
            runner = GatedRunner()
            service = _service(runner, workers=1, max_depth=2)
            await service.start()
            # Let the dispatcher pull the first job into its worker slot.
            running, _ = service.submit(_request(8))
            await asyncio.sleep(0.05)
            service.submit(_request(16))
            service.submit(_request(24))
            with pytest.raises(BackpressureError) as excinfo:
                service.submit(_request(32))
            assert excinfo.value.retry_after > 0
            assert service.counters["jobs_rejected"] == 1
            # The rejection left the service fully operational.
            runner.gate.set()
            for job_id in list(service.jobs):
                job = await service.wait(job_id, timeout=10)
                assert job.state is JobState.DONE
            await _drain(service)

        asyncio.run(scenario())

    def test_dedup_wins_over_backpressure(self):
        async def scenario():
            runner = GatedRunner()
            service = _service(runner, workers=1, max_depth=1)
            await service.start()
            job, _ = service.submit(_request(8))
            await asyncio.sleep(0.05)
            filler, _ = service.submit(_request(16))  # fills the queue
            # An identical request coalesces even while the queue is full.
            again, deduped = service.submit(_request(16))
            assert deduped and again is filler
            runner.gate.set()
            await service.wait(job.id, timeout=10)
            await service.wait(filler.id, timeout=10)
            await _drain(service)

        asyncio.run(scenario())


class TestPriorities:
    def test_high_priority_jobs_run_first(self):
        async def scenario():
            runner = GatedRunner()
            service = _service(runner, workers=1, max_depth=8)
            await service.start()
            blocker, _ = service.submit(_request(8))
            await asyncio.sleep(0.05)  # blocker occupies the only slot
            low, _ = service.submit(_request(16, priority=0))
            high, _ = service.submit(_request(24, priority=10))
            runner.gate.set()
            for job in (blocker, low, high):
                await service.wait(job.id, timeout=10)
            widths = [call["width"] for call in runner.calls]
            assert widths == [8, 24, 16]
            await _drain(service)

        asyncio.run(scenario())


class TestCancellation:
    def test_cancel_queued_job(self):
        async def scenario():
            runner = GatedRunner()
            service = _service(runner, workers=1)
            await service.start()
            blocker, _ = service.submit(_request(8))
            await asyncio.sleep(0.05)
            queued, _ = service.submit(_request(16))
            cancelled = service.cancel(queued.id)
            assert cancelled.state is JobState.CANCELLED
            runner.gate.set()
            await service.wait(blocker.id, timeout=10)
            # The cancelled job never executed.
            assert [c["width"] for c in runner.calls] == [8]
            assert service.counters["jobs_cancelled"] == 1
            await _drain(service)

        asyncio.run(scenario())

    def test_cancel_running_job(self):
        async def scenario():
            runner = GatedRunner()
            service = _service(runner, workers=1)
            await service.start()
            job, _ = service.submit(_request(8))
            await asyncio.sleep(0.05)
            assert job.state is JobState.RUNNING
            service.cancel(job.id)
            done = await service.wait(job.id, timeout=10)
            assert done.state is JobState.CANCELLED
            await _drain(service)

        asyncio.run(scenario())

    def test_unknown_job_raises(self):
        async def scenario():
            service = _service(GatedRunner())
            await service.start()
            with pytest.raises(JobNotFound):
                service.get("job-doesnotexist")
            await _drain(service)

        asyncio.run(scenario())


class TestLifecycle:
    def test_submit_after_shutdown_rejected(self):
        async def scenario():
            runner = GatedRunner()
            runner.gate.set()
            service = _service(runner)
            await service.start()
            await service.shutdown(drain=True)
            with pytest.raises(ShuttingDown):
                service.submit(_request())

        asyncio.run(scenario())

    def test_stats_shape(self):
        async def scenario():
            runner = GatedRunner()
            runner.gate.set()
            service = _service(runner)
            await service.start()
            job, _ = service.submit(_request())
            await service.wait(job.id, timeout=10)
            stats = service.stats()
            assert stats["workers"] == 2
            assert stats["queue_capacity"] == 4
            assert stats["counters"]["jobs_completed"] == 1
            assert stats["retry_after_hint"] > 0
            await _drain(service)

        asyncio.run(scenario())

    def test_history_eviction_bounds_job_map(self):
        async def scenario():
            runner = GatedRunner()
            runner.gate.set()
            service = _service(runner, history_limit=3, max_depth=16)
            await service.start()
            for width in range(8, 28, 2):
                job, _ = service.submit(_request(width))
                await service.wait(job.id, timeout=10)
            assert len(service.jobs) <= 4  # history limit + in-flight slack
            await _drain(service)

        asyncio.run(scenario())


class TestRealPlanningThreadMode:
    def test_thread_isolation_plans_for_real(self):
        async def scenario():
            service = PlanningService(
                ServiceSettings(workers=1, isolation="thread")
            )
            await service.start()
            request = PlanRequest(
                "d695", 8, RunConfig(compression="none", use_cache=False)
            )
            job, _ = service.submit(request)
            done = await service.wait(job.id, timeout=120)
            assert done.state is JobState.DONE
            exported = json.loads(done.result_json)
            assert exported["soc"] == "d695"
            assert exported["test_time"] > 0
            await _drain(service)

        asyncio.run(scenario())
