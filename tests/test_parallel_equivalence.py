"""Differential tests: the analysis engine's execution mode is invisible.

Determinism is a stated invariant of the whole flow -- the cube
generator, the sampled estimator, wrapper design, and scheduling all
resolve ties deterministically -- so running the per-core analyses
serially, fanned out over worker processes, through a cold persistent
cache, or from a warm persistent cache must produce *identical*
optimizer output, bit for bit.  These tests pin that invariant on both
academic (exact-mode) and industrial (estimate-mode) SOCs.
"""

from __future__ import annotations

import pytest

from repro.core.optimizer import optimize_per_tam, optimize_soc
from repro.explore.cache import AnalysisDiskCache
from repro.explore.dse import clear_analysis_cache
from repro.parallel import resolve_jobs
from repro.soc.industrial import load_design

#: (design, width): two ITC'02-class academic SOCs analyzed exactly,
#: plus one industrial system exercising the sampled estimator.
CASES = [
    ("d695", 12),
    ("d2758", 8),
    ("System2", 24),
]


def _signature(result):
    """Everything the paper reports about a plan, plus the schedule."""
    return (
        result.test_time,
        result.tam_widths,
        result.test_data_volume,
        tuple(
            (slot.config, slot.tam_index, slot.start, slot.end)
            for slot in result.architecture.scheduled
        ),
    )


@pytest.mark.parametrize("design,width", CASES)
def test_serial_parallel_cold_warm_identical(design, width, tmp_path):
    soc = load_design(design)
    cache_dir = tmp_path / "analysis-cache"

    clear_analysis_cache()
    serial = optimize_soc(soc, width, use_cache=False)

    clear_analysis_cache()
    parallel = optimize_soc(soc, width, jobs=4, use_cache=False)

    clear_analysis_cache()
    cold = optimize_soc(soc, width, jobs=2, cache_dir=str(cache_dir))
    assert AnalysisDiskCache(cache_dir).stats().entries == len(soc.cores)

    clear_analysis_cache()
    warm = optimize_soc(soc, width, cache_dir=str(cache_dir))

    base = _signature(serial)
    assert _signature(parallel) == base
    assert _signature(cold) == base
    assert _signature(warm) == base
    # The architectures compare equal wholesale, not just field by field.
    assert parallel.architecture == serial.architecture
    assert cold.architecture == serial.architecture
    assert warm.architecture == serial.architecture


def test_per_tam_serial_matches_parallel(tmp_path):
    soc = load_design("d695")

    clear_analysis_cache()
    serial = optimize_per_tam(soc, 12, use_cache=False)

    clear_analysis_cache()
    parallel = optimize_per_tam(soc, 12, jobs=2, cache_dir=str(tmp_path))

    clear_analysis_cache()
    warm = optimize_per_tam(soc, 12, cache_dir=str(tmp_path))

    assert _signature(parallel) == _signature(serial)
    assert _signature(warm) == _signature(serial)


def test_env_override_preserves_results(tmp_path, monkeypatch):
    """REPRO_JOBS switches the engine without changing any output."""
    soc = load_design("System2")

    clear_analysis_cache()
    serial = optimize_soc(soc, 16, use_cache=False)

    monkeypatch.setenv("REPRO_JOBS", "2")
    assert resolve_jobs(None) == 2
    clear_analysis_cache()
    via_env = optimize_soc(soc, 16, use_cache=False)

    assert _signature(via_env) == _signature(serial)


def test_wider_budget_reuses_and_extends_cache(tmp_path):
    """A warm entry from a narrow run seeds a wider run, identically."""
    soc = load_design("System2")
    cache_dir = str(tmp_path)

    clear_analysis_cache()
    optimize_soc(soc, 12, jobs=2, cache_dir=cache_dir)

    clear_analysis_cache()
    extended = optimize_soc(soc, 20, jobs=2, cache_dir=cache_dir)

    clear_analysis_cache()
    fresh = optimize_soc(soc, 20, use_cache=False)
    assert _signature(extended) == _signature(fresh)

    # The widened tables were merged back: a third run is a pure hit.
    cache = AnalysisDiskCache(cache_dir)
    clear_analysis_cache()
    warm = optimize_soc(soc, 20, cache_dir=cache_dir)
    assert _signature(warm) == _signature(fresh)


def test_resolve_jobs_knob(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(None) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) >= 1  # all CPUs
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs(None) == 5
    assert resolve_jobs(2) == 2  # explicit argument beats the env
    monkeypatch.setenv("REPRO_JOBS", "not-a-number")
    with pytest.warns(RuntimeWarning):
        assert resolve_jobs(None) == 1
