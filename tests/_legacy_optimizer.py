"""Verbatim pre-pipeline optimizer, kept as the differential oracle.

This is the co-optimization flow exactly as it stood before
``repro.pipeline`` existed (module docstring below unchanged).  The
differential tests in ``test_differential_pipeline.py`` run it next to
the pipeline-backed entry points and require bit-identical plans.  Do
not "fix" or modernize this file -- its value is that it does not move.

The paper's co-optimization flow (section 3).

Four steps, per SOC and width budget:

1. *Wrapper-chain design* -- per core, wrapper designs for every
   candidate chain count (``repro.wrapper.design``, cached).
2. *Decompressor design* -- per core, the compressed test time
   ``tau_c(w, m)`` over all feasible decompressor I/O widths
   (``repro.explore.dse`` lookup tables).
3. *Test-architecture design* -- partition the top-level TAM width into
   fixed-width TAMs (``repro.core.partition``).
4. *Test scheduling* -- longest-first list scheduling onto the TAMs
   (``repro.core.scheduler``).

:func:`optimize_soc` runs the flow with per-core decompressors (the
paper's proposal, Figure 4(c)), without TDC (Figure 4(a)), or in an
"auto" mode (our extension) that lets each core bypass its decompressor
when compression does not pay -- relevant for the high-care-density
academic benchmarks.

:func:`optimize_per_tam` implements the Figure 4(b) alternative: one
decompressor per TAM, shared by every core on that TAM, so all of them
must use the same expanded width ``M_j``.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Literal

from repro.core.architecture import (
    CoreConfig,
    DecompressorPlacement,
    TestArchitecture,
)
from repro.core.partition import PartitionSearchResult, iter_partitions, search_partitions
from repro.core.scheduler import build_architecture, schedule_cores
from repro.explore.cache import AnalysisDiskCache, resolve_cache
from repro.explore.dse import (
    DEFAULT_GRID,
    CoreAnalysis,
    Mode,
    analyze_soc_cores,
)
from repro.compression.estimator import DEFAULT_SAMPLES
from repro.soc.soc import Soc

Compression = Literal["none", "per-core", "auto", "select"]


@dataclass(frozen=True)
class OptimizeResult:
    """Outcome of one co-optimization run."""

    soc_name: str
    width_budget: int
    compression: str
    architecture: TestArchitecture
    cpu_seconds: float
    partitions_evaluated: int
    strategy: str

    @property
    def test_time(self) -> int:
        return self.architecture.test_time

    @property
    def test_data_volume(self) -> int:
        return self.architecture.test_data_volume

    @property
    def tam_widths(self) -> tuple[int, ...]:
        return tuple(t.width for t in self.architecture.tams)


def _normalize_compression(compression: bool | str) -> Compression:
    if compression is True:
        return "per-core"
    if compression is False:
        return "none"
    if compression in ("none", "per-core", "auto", "select"):
        return compression  # type: ignore[return-value]
    raise ValueError(f"unknown compression mode {compression!r}")


class _LookupTables:
    """Per-SOC time/volume/config lookups backing the scheduler."""

    def __init__(
        self,
        soc: Soc,
        compression: Compression,
        *,
        mode: Mode,
        samples: int,
        grid: int,
        max_tam_width: int | None = None,
        jobs: int | None = None,
        cache: AnalysisDiskCache | None = None,
    ) -> None:
        self.compression = compression
        self.analyses: dict[str, CoreAnalysis] = analyze_soc_cores(
            soc.cores,
            mode=mode,
            samples=samples,
            grid=grid,
            max_tam_width=max_tam_width,
            jobs=jobs,
            cache=cache,
        )
        self._time_cache: dict[tuple[str, int], int] = {}
        self._selectors: dict[str, object] = {}

    def _pick(self, name: str, width: int) -> CoreConfig:
        analysis = self.analyses[name]
        if self.compression == "select":
            from repro.explore.selection import TechniqueSelector

            selector = self._selectors.get(name)
            if selector is None:
                selector = TechniqueSelector(analysis)
                self._selectors[name] = selector
            choice = selector.select(width)
            return CoreConfig(
                core_name=name,
                uses_compression=choice.technique != "none",
                wrapper_chains=choice.wrapper_chains,
                code_width=choice.code_width,
                test_time=choice.test_time,
                volume=choice.volume,
                technique=choice.technique,
            )
        plain = analysis.uncompressed_point(width)
        if self.compression == "none":
            best = None
        else:
            best = analysis.best_compressed_for_tam(width)
        use_compressed = best is not None and (
            self.compression == "per-core" or best.test_time < plain.test_time
        )
        if use_compressed:
            assert best is not None
            return CoreConfig(
                core_name=name,
                uses_compression=True,
                wrapper_chains=best.m,
                code_width=best.code_width,
                test_time=best.test_time,
                volume=best.volume,
            )
        return CoreConfig(
            core_name=name,
            uses_compression=False,
            wrapper_chains=min(width, analysis.core.max_useful_wrapper_chains),
            code_width=None,
            test_time=plain.test_time,
            volume=plain.volume,
        )

    def time_of(self, name: str, width: int) -> int:
        key = (name, width)
        value = self._time_cache.get(key)
        if value is None:
            value = self._pick(name, width).test_time
            self._time_cache[key] = value
        return value

    def config_of(self, name: str, width: int) -> CoreConfig:
        return self._pick(name, width)


def optimize_soc(
    soc: Soc,
    tam_width: int,
    *,
    compression: bool | str = True,
    mode: Mode = "auto",
    samples: int = DEFAULT_SAMPLES,
    grid: int = DEFAULT_GRID,
    max_tams: int | None = None,
    min_tam_width: int = 1,
    strategy: str = "auto",
    jobs: int | None = None,
    cache_dir: str | None = None,
    use_cache: bool | None = None,
) -> OptimizeResult:
    """Run the four-step co-optimization for a TAM width budget.

    Parameters
    ----------
    soc:
        The design to plan.
    tam_width:
        Top-level width budget ``W_TAM``.  With per-core decompression
        the ATE channel count equals the TAM width, so this same entry
        point serves the paper's Table 1 (``W_ATE``) and Table 2 /
        Table 3 (``W_TAM``) constraints.
    compression:
        ``True``/"per-core" (the paper), ``False``/"none" (the baseline
        of Table 3), or "auto" (per-core bypass extension).
    mode, samples, grid:
        Passed to the per-core design-space exploration.
    max_tams, min_tam_width, strategy:
        Partition-search controls (see :mod:`repro.core.partition`).
    jobs:
        Worker processes for the per-core analyses (default serial; see
        :func:`repro.parallel.resolve_jobs` for the env override).
    cache_dir, use_cache:
        Persistent analysis-cache controls (see
        :func:`repro.explore.cache.resolve_cache`).  The optimizer's
        result is bit-identical with or without the cache; only the
        wall-clock changes.
    """
    if tam_width < 1:
        raise ValueError(f"TAM width must be >= 1, got {tam_width}")
    comp = _normalize_compression(compression)
    started = _time.perf_counter()
    tables = _LookupTables(
        soc,
        comp,
        mode=mode,
        samples=samples,
        grid=grid,
        max_tam_width=tam_width,
        jobs=jobs,
        cache=resolve_cache(cache_dir, use_cache),
    )
    names = list(soc.core_names)
    search = search_partitions(
        names,
        tam_width,
        tables.time_of,
        max_parts=max_tams,
        min_width=min_tam_width,
        strategy=strategy,
    )
    placement = (
        DecompressorPlacement.NONE
        if comp == "none"
        else DecompressorPlacement.PER_CORE
    )
    architecture = build_architecture(
        soc.name,
        names,
        search.outcome,
        tables.config_of,
        placement=placement,
        ate_channels=tam_width,
    )
    elapsed = _time.perf_counter() - started
    return OptimizeResult(
        soc_name=soc.name,
        width_budget=tam_width,
        compression=comp,
        architecture=architecture,
        cpu_seconds=elapsed,
        partitions_evaluated=search.partitions_evaluated,
        strategy=search.strategy,
    )


# ---------------------------------------------------------------------------
# Constrained planning (extension): power budget and precedence.
# ---------------------------------------------------------------------------


def optimize_soc_constrained(
    soc: Soc,
    tam_width: int,
    *,
    compression: bool | str = True,
    power_budget: float | None = None,
    power_of: dict[str, float] | None = None,
    precedence: tuple[tuple[str, str], ...] = (),
    mode: Mode = "auto",
    samples: int = DEFAULT_SAMPLES,
    grid: int = DEFAULT_GRID,
    max_tams: int | None = None,
    min_tam_width: int = 1,
    jobs: int | None = None,
    cache_dir: str | None = None,
    use_cache: bool | None = None,
) -> "ConstrainedResult":
    """Co-optimization under a power budget and/or precedence constraints.

    Like :func:`optimize_soc` but schedules with
    :func:`repro.core.timeline.schedule_constrained`, which may insert
    TAM idle time to respect the constraints.  When ``power_budget`` is
    given and ``power_of`` is not, per-core flat power comes from
    :func:`repro.power.model.power_table` (majority fill when
    compressing, random fill otherwise).
    """
    from repro.core.partition import iter_partitions
    from repro.core.timeline import (
        ConstrainedSchedule,
        constrained_architecture,
        schedule_constrained,
    )

    if tam_width < 1:
        raise ValueError(f"TAM width must be >= 1, got {tam_width}")
    comp = _normalize_compression(compression)
    started = _time.perf_counter()
    tables = _LookupTables(
        soc,
        comp,
        mode=mode,
        samples=samples,
        grid=grid,
        max_tam_width=tam_width,
        jobs=jobs,
        cache=resolve_cache(cache_dir, use_cache),
    )
    names = list(soc.core_names)
    if power_budget is not None and power_of is None:
        from repro.power.model import power_table

        power_of = power_table(soc, compression=comp != "none")

    if max_tams is None:
        max_tams = min(len(names), 6)
    max_tams = min(max_tams, tam_width // min_tam_width)
    if max_tams < 1:
        raise ValueError(
            f"width {tam_width} cannot host a TAM of min width {min_tam_width}"
        )

    best: ConstrainedSchedule | None = None
    evaluated = 0
    for widths in iter_partitions(tam_width, max_tams, min_tam_width):
        schedule = schedule_constrained(
            names,
            widths,
            tables.time_of,
            power_of=power_of,
            power_budget=power_budget,
            precedence=precedence,
        )
        evaluated += 1
        if best is None or schedule.makespan < best.makespan:
            best = schedule
    assert best is not None

    placement = (
        DecompressorPlacement.NONE
        if comp == "none"
        else DecompressorPlacement.PER_CORE
    )
    architecture = constrained_architecture(
        soc.name,
        best,
        tables.config_of,
        placement=placement,
        ate_channels=tam_width,
    )
    elapsed = _time.perf_counter() - started
    return ConstrainedResult(
        soc_name=soc.name,
        width_budget=tam_width,
        compression=comp,
        architecture=architecture,
        cpu_seconds=elapsed,
        partitions_evaluated=evaluated,
        strategy="exhaustive",
        peak_power=best.peak_power,
        power_budget=power_budget,
        tam_idle_cycles=best.tam_idle_cycles,
    )


@dataclass(frozen=True)
class ConstrainedResult(OptimizeResult):
    """An :class:`OptimizeResult` plus the constraint bookkeeping."""

    peak_power: float = 0.0
    power_budget: float | None = None
    tam_idle_cycles: int = 0


# ---------------------------------------------------------------------------
# Figure 4(b): one decompressor per TAM.
# ---------------------------------------------------------------------------


def _shared_m_time(analysis: CoreAnalysis, shared_m: int) -> int:
    """Core test time when its TAM's decompressor outputs ``shared_m`` bits.

    The core can only use as many wrapper chains as it has scanned
    elements; surplus decompressor outputs idle.
    """
    m = min(shared_m, analysis.core.max_useful_wrapper_chains)
    return analysis.compressed_point(m).test_time


def _shared_m_config(analysis: CoreAnalysis, shared_m: int) -> CoreConfig:
    m = min(shared_m, analysis.core.max_useful_wrapper_chains)
    point = analysis.compressed_point(m)
    return CoreConfig(
        core_name=analysis.core.name,
        uses_compression=True,
        wrapper_chains=point.m,
        code_width=point.code_width,
        test_time=point.test_time,
        volume=point.volume,
    )


def optimize_per_tam(
    soc: Soc,
    ate_channels: int,
    *,
    mode: Mode = "auto",
    samples: int = DEFAULT_SAMPLES,
    grid: int = DEFAULT_GRID,
    max_tams: int | None = None,
    min_code_width: int = 3,
    jobs: int | None = None,
    cache_dir: str | None = None,
    use_cache: bool | None = None,
) -> OptimizeResult:
    """Figure 4(b): decompressor per TAM, shared expanded width per TAM.

    The ATE channel budget is partitioned into per-TAM code widths
    ``w_j >= 3``; each TAM's decompressor expands to a single shared
    width ``M_j`` chosen from the best-``m`` candidates of the cores
    assigned to that TAM.  The reported TAM widths are the *expanded*
    on-chip widths -- the wide, costly buses the paper's Figure 4(b)
    points at.
    """
    if ate_channels < min_code_width:
        raise ValueError(
            f"ATE channels ({ate_channels}) below minimum code width "
            f"({min_code_width})"
        )
    started = _time.perf_counter()
    analyses = analyze_soc_cores(
        soc.cores,
        mode=mode,
        samples=samples,
        grid=grid,
        max_tam_width=ate_channels,
        jobs=jobs,
        cache=resolve_cache(cache_dir, use_cache),
    )
    names = list(soc.core_names)
    if max_tams is None:
        max_tams = min(len(names), 6)
    max_tams = min(max_tams, ate_channels // min_code_width)

    def code_width_time(name: str, w: int) -> int:
        analysis = analyses[name]
        best = analysis.best_for_code_width(w) or analysis.best_compressed_for_tam(w)
        if best is None:
            return analysis.uncompressed_point(w).test_time
        return best.test_time

    best_arch: tuple[int, tuple[int, ...], list[int], list[int]] | None = None
    evaluated = 0
    for widths in iter_partitions(ate_channels, max_tams, min_code_width):
        evaluated += 1
        outcome = schedule_cores(names, widths, code_width_time)
        # Fix a shared expanded width per TAM from the assigned cores'
        # favorite m values, then re-cost every core at that width.
        shared_ms: list[int] = []
        loads: list[int] = []
        for tam, w in enumerate(widths):
            members = [
                names[i] for i, t in enumerate(outcome.assignment) if t == tam
            ]
            if not members:
                shared_ms.append(1)
                loads.append(0)
                continue
            candidates = set()
            for name in members:
                best = analyses[name].best_for_code_width(w)
                if best is not None:
                    candidates.add(best.m)
            if not candidates:
                candidates = {
                    min(
                        analyses[name].core.max_useful_wrapper_chains
                        for name in members
                    )
                }
            best_m, best_load = None, None
            for m in sorted(candidates):
                load = sum(_shared_m_time(analyses[name], m) for name in members)
                if best_load is None or load < best_load:
                    best_m, best_load = m, load
            assert best_m is not None and best_load is not None
            shared_ms.append(best_m)
            loads.append(best_load)
        makespan = max(loads) if loads else 0
        if best_arch is None or makespan < best_arch[0]:
            best_arch = (makespan, widths, shared_ms, list(outcome.assignment))

    assert best_arch is not None
    _, widths, shared_ms, assignment = best_arch

    from repro.core.architecture import ScheduledCore, Tam

    tams = tuple(
        Tam(index=i, width=max(1, shared_ms[i])) for i in range(len(widths))
    )
    loads = [0] * len(widths)
    order = sorted(
        range(len(names)),
        key=lambda i: (
            -_shared_m_time(analyses[names[i]], shared_ms[assignment[i]]),
            names[i],
        ),
    )
    scheduled = []
    for index in order:
        name = names[index]
        tam = assignment[index]
        config = _shared_m_config(analyses[name], shared_ms[tam])
        start = loads[tam]
        end = start + config.test_time
        loads[tam] = end
        scheduled.append(
            ScheduledCore(config=config, tam_index=tam, start=start, end=end)
        )
    architecture = TestArchitecture(
        soc_name=soc.name,
        placement=DecompressorPlacement.PER_TAM,
        tams=tams,
        scheduled=tuple(scheduled),
        ate_channels=ate_channels,
    )
    elapsed = _time.perf_counter() - started
    return OptimizeResult(
        soc_name=soc.name,
        width_budget=ate_channels,
        compression="per-tam",
        architecture=architecture,
        cpu_seconds=elapsed,
        partitions_evaluated=evaluated,
        strategy="exhaustive",
    )
