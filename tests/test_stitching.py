"""Tests for flexible scan re-stitching."""

import pytest

from repro.explore.dse import analysis_for
from repro.soc.core import Core
from repro.wrapper.stitching import StitchingChoice, best_stitching, restitch


@pytest.fixture
def long_chain_core() -> Core:
    """A soft core stuck with two very long chains."""
    return Core(
        name="soft",
        inputs=8,
        outputs=8,
        scan_chain_lengths=(400, 400),
        patterns=40,
        care_bit_density=0.03,
        one_fraction=0.3,
        seed=17,
    )


class TestRestitch:
    def test_preserves_cell_count(self, long_chain_core):
        variant = restitch(long_chain_core, 16)
        assert variant.scan_cells == long_chain_core.scan_cells
        assert variant.num_scan_chains == 16

    def test_balanced(self, long_chain_core):
        variant = restitch(long_chain_core, 7)
        lengths = variant.scan_chain_lengths
        assert max(lengths) - min(lengths) <= 1

    def test_name_annotated(self, long_chain_core):
        assert restitch(long_chain_core, 4).name == "soft@4ch"

    def test_preserves_seed_and_patterns(self, long_chain_core):
        variant = restitch(long_chain_core, 4)
        assert variant.seed == long_chain_core.seed
        assert variant.patterns == long_chain_core.patterns

    def test_bounds(self, long_chain_core):
        with pytest.raises(ValueError):
            restitch(long_chain_core, 0)
        with pytest.raises(ValueError):
            restitch(long_chain_core, long_chain_core.scan_cells + 1)

    def test_combinational_rejected(self, comb_core):
        with pytest.raises(ValueError, match="no scan cells"):
            restitch(comb_core, 2)


class TestBestStitching:
    def test_restitching_helps_long_chains(self, long_chain_core):
        choice = best_stitching(long_chain_core, 8, compression=True)
        assert isinstance(choice, StitchingChoice)
        # Two 400-cell chains floor si at 400; re-stitching removes it.
        assert choice.best_time < choice.original_time
        assert choice.best_chains > 2
        assert choice.speedup > 1.5

    def test_never_worse_than_original(self):
        core = Core(
            name="fine",
            inputs=4,
            outputs=4,
            scan_chain_lengths=(25,) * 32,
            patterns=30,
            care_bit_density=0.03,
            seed=5,
        )
        choice = best_stitching(core, 8, compression=True)
        # Even a balanced stitching can gain (more, shorter chains means
        # fewer scan slices and fewer per-slice END codewords), but the
        # sweep must never return something slower than the original.
        assert choice.best_time <= choice.original_time

    def test_no_compression_mode(self, long_chain_core):
        choice = best_stitching(long_chain_core, 8, compression=False)
        analysis = analysis_for(choice.core)
        assert choice.best_time == analysis.time_at_tam(8, compression=False)

    def test_max_chains_cap(self, long_chain_core):
        choice = best_stitching(long_chain_core, 8, max_chains=16)
        assert choice.best_chains <= 16

    def test_combinational_rejected(self, comb_core):
        with pytest.raises(ValueError):
            best_stitching(comb_core, 4)
