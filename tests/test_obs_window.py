"""Sliding windows: pruning, rolling quantiles, snapshot/merge."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.window import (
    DEFAULT_HORIZON_S,
    SlidingWindow,
    WindowRegistry,
)

T0 = 1_000_000.0


class TestSlidingWindow:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            SlidingWindow(0.0)
        with pytest.raises(ValueError):
            SlidingWindow(10.0, max_samples=0)

    def test_count_and_rate_inside_horizon(self):
        window = SlidingWindow(10.0)
        for i in range(5):
            window.observe(float(i), now=T0 + i)
        assert window.count(now=T0 + 4) == 5
        # 5 samples over the 4 s actually observed, not the 10 s
        # horizon: the window is still warming up.
        assert window.rate(now=T0 + 4) == pytest.approx(1.25)

    def test_rate_during_warmup_uses_observed_span(self):
        # Regression: a steady 1-sample-per-second stream must read as
        # ~1/s from the first seconds on, not ramp from 0.1/s as the
        # 10s horizon slowly fills.
        window = SlidingWindow(10.0)
        window.observe(1.0, now=T0)
        window.observe(1.0, now=T0 + 1)
        window.observe(1.0, now=T0 + 2)
        assert window.rate(now=T0 + 2) == pytest.approx(1.5)  # 3 in 2 s
        assert window.summary(now=T0 + 2)["rate_per_s"] == pytest.approx(1.5)

    def test_rate_after_overflow_uses_retained_span(self):
        # Regression: with max_samples exceeded the oldest samples are
        # dropped, so the retained samples cover less than the horizon;
        # dividing by the fixed horizon understated the rate (here
        # 3/1000 =~ 0 instead of the true ~1/s).
        window = SlidingWindow(1000.0, max_samples=3)
        for i in range(50):
            window.observe(float(i), now=T0 + i)
        # Retained: samples at T0+47..T0+49 -> 3 samples over 2 s.
        assert window.rate(now=T0 + 49) == pytest.approx(1.5)

    def test_rate_full_window_divides_by_horizon(self):
        window = SlidingWindow(10.0)
        for i in range(21):
            window.observe(1.0, now=T0 + i)
        # Oldest retained sample is 10 s old: span clamps to horizon.
        assert window.rate(now=T0 + 20) == pytest.approx(11 / 10.0)

    def test_rate_zero_span_falls_back_to_horizon(self):
        window = SlidingWindow(10.0)
        for _ in range(5):
            window.observe(1.0, now=T0)
        assert window.rate(now=T0) == pytest.approx(0.5)

    def test_rate_empty_window_is_zero(self):
        assert SlidingWindow(10.0).rate(now=T0) == 0.0

    def test_old_samples_prune_out(self):
        window = SlidingWindow(10.0)
        window.observe(1.0, now=T0)
        window.observe(2.0, now=T0 + 9)
        assert window.count(now=T0 + 9) == 2
        # T0 sample is now 11s old: outside the 10s horizon.
        assert window.count(now=T0 + 11) == 1
        assert window.mean(now=T0 + 11) == pytest.approx(2.0)

    def test_quantile_is_exact_order_statistic(self):
        window = SlidingWindow(100.0)
        for value in (1.0, 2.0, 3.0, 4.0):
            window.observe(value, now=T0)
        now = T0
        assert window.quantile(0.0, now=now) == pytest.approx(1.0)
        assert window.quantile(1.0, now=now) == pytest.approx(4.0)
        # (n-1)*q positional interpolation: 3 * 0.5 = 1.5 -> 2.5.
        assert window.quantile(0.5, now=now) == pytest.approx(2.5)

    def test_quantile_edges(self):
        window = SlidingWindow(10.0)
        assert window.quantile(0.99, now=T0) == 0.0  # empty
        window.observe(7.0, now=T0)
        assert window.quantile(0.5, now=T0) == pytest.approx(7.0)
        with pytest.raises(ValueError):
            window.quantile(1.5, now=T0)
        with pytest.raises(ValueError):
            window.quantile(-0.1, now=T0)

    def test_summary_bundle(self):
        window = SlidingWindow(60.0)
        for i in range(1, 101):
            window.observe(i / 100.0, now=T0)
        summary = window.summary(now=T0)
        assert summary["count"] == 100
        assert summary["rate_per_s"] == pytest.approx(100 / 60.0, abs=1e-3)
        assert summary["mean"] == pytest.approx(0.505)
        assert summary["max"] == pytest.approx(1.0)
        assert summary["p50"] == pytest.approx(0.505, abs=1e-6)
        assert summary["p95"] < summary["p99"] <= summary["max"]

    def test_empty_summary_is_all_zero(self):
        summary = SlidingWindow(60.0).summary(now=T0)
        assert summary == {
            "count": 0,
            "rate_per_s": 0.0,
            "mean": 0.0,
            "max": 0.0,
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }

    def test_max_samples_drops_oldest_first(self):
        window = SlidingWindow(1000.0, max_samples=3)
        for i in range(5):
            window.observe(float(i), now=T0 + i)
        # Only the 3 newest survive the deque cap.
        assert window.count(now=T0 + 4) == 3
        assert window.quantile(0.0, now=T0 + 4) == pytest.approx(2.0)

    def test_snapshot_merge_roundtrip(self):
        worker = SlidingWindow(60.0)
        worker.observe(0.5, now=T0 + 1)
        worker.observe(1.5, now=T0 + 2)
        parent = SlidingWindow(60.0)
        parent.observe(1.0, now=T0 + 3)
        parent.merge(worker.snapshot(now=T0 + 3), now=T0 + 3)
        assert parent.count(now=T0 + 3) == 3
        assert parent.mean(now=T0 + 3) == pytest.approx(1.0)

    def test_merge_keeps_chronological_order_for_pruning(self):
        parent = SlidingWindow(10.0)
        parent.observe(9.0, now=T0 + 9)
        old = SlidingWindow(1000.0)
        old.observe(1.0, now=T0)  # older than parent's newest sample
        parent.merge(old.snapshot(now=T0 + 9), now=T0 + 9)
        assert parent.count(now=T0 + 9) == 2
        # Advancing past T0+10 must prune the merged-in older sample
        # even though it arrived after the newer one.
        assert parent.count(now=T0 + 11) == 1
        assert parent.mean(now=T0 + 11) == pytest.approx(9.0)

    def test_merge_empty_snapshot_is_noop(self):
        window = SlidingWindow(10.0)
        window.observe(1.0, now=T0)
        window.merge({"horizon_s": 10.0, "samples": []}, now=T0)
        assert window.count(now=T0) == 1

    def test_clear(self):
        window = SlidingWindow(10.0)
        window.observe(1.0, now=T0)
        window.clear()
        assert window.count(now=T0) == 0

    # -- quantile/merge edge cases --------------------------------------

    def test_quantile_single_sample_is_that_sample(self):
        window = SlidingWindow(10.0)
        window.observe(3.25, now=T0)
        for q in (0.0, 0.25, 0.5, 0.95, 1.0):
            assert window.quantile(q, now=T0) == pytest.approx(3.25)

    def test_quantile_all_equal_values(self):
        window = SlidingWindow(10.0)
        for _ in range(17):
            window.observe(4.0, now=T0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert window.quantile(q, now=T0) == pytest.approx(4.0)
        summary = window.summary(now=T0)
        assert summary["p50"] == summary["p99"] == pytest.approx(4.0)

    def test_merge_overlapping_horizons_prunes_by_receiver(self):
        # A long-horizon worker snapshot folded into a short-horizon
        # parent: only the samples inside the *parent's* horizon stay.
        worker = SlidingWindow(1000.0)
        worker.observe(1.0, now=T0 - 5)  # outside the parent's 10 s window
        worker.observe(2.0, now=T0 + 8)
        parent = SlidingWindow(10.0)
        parent.observe(3.0, now=T0 + 9)
        parent.merge(worker.snapshot(now=T0 + 9), now=T0 + 9)
        assert parent.count(now=T0 + 9) == 2
        assert parent.mean(now=T0 + 9) == pytest.approx(2.5)

    def test_merge_overlapping_samples_keeps_duplicates(self):
        # Identical timestamps from two sources are distinct events.
        a = SlidingWindow(60.0)
        a.observe(1.0, now=T0 + 1)
        b = SlidingWindow(60.0)
        b.observe(1.0, now=T0 + 1)
        a.merge(b.snapshot(now=T0 + 1), now=T0 + 1)
        assert a.count(now=T0 + 1) == 2


class TestWindowProperties:
    values = st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=50,
    )

    @given(values, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=120, deadline=None)
    def test_quantile_within_range_and_monotone(self, samples, q):
        window = SlidingWindow(1e9)
        for i, value in enumerate(samples):
            window.observe(value, now=T0 + i)
        now = T0 + len(samples)
        estimate = window.quantile(q, now=now)
        assert min(samples) <= estimate <= max(samples)
        assert window.quantile(0.0, now=now) == pytest.approx(min(samples))
        assert window.quantile(1.0, now=now) == pytest.approx(max(samples))
        assert estimate <= window.quantile(1.0, now=now) + 1e-9

    @given(values, values)
    @settings(max_examples=80, deadline=None)
    def test_merge_is_sample_union(self, left, right):
        now = T0 + 100.0
        a = SlidingWindow(1e9)
        for i, value in enumerate(left):
            a.observe(value, now=T0 + i)
        b = SlidingWindow(1e9)
        for i, value in enumerate(right):
            b.observe(value, now=T0 + i)
        a.merge(b.snapshot(now=now), now=now)
        assert a.count(now=now) == len(left) + len(right)
        total = sum(left) + sum(right)
        assert a.mean(now=now) == pytest.approx(
            total / (len(left) + len(right))
        )


class TestWindowRegistry:
    def test_first_caller_owns_the_shape(self):
        registry = WindowRegistry()
        first = registry.window("lat", 30.0)
        second = registry.window("lat", 99.0)
        assert second is first
        assert first.horizon_s == 30.0

    def test_default_horizon(self):
        registry = WindowRegistry()
        assert registry.window("x").horizon_s == DEFAULT_HORIZON_S

    def test_observe_and_summaries(self):
        registry = WindowRegistry()
        registry.observe("a", 1.0, now=T0)
        registry.observe("b", 2.0, now=T0)
        summaries = registry.summaries(now=T0)
        assert sorted(summaries) == ["a", "b"]
        assert summaries["a"]["count"] == 1
        assert summaries["b"]["max"] == pytest.approx(2.0)

    def test_snapshot_merge_roundtrip(self):
        worker = WindowRegistry()
        worker.observe("lat", 0.25, now=T0)
        parent = WindowRegistry()
        parent.observe("lat", 0.75, now=T0)
        parent.merge(worker.snapshot(now=T0), now=T0)
        assert parent.summaries(now=T0)["lat"]["count"] == 2

    def test_clear(self):
        registry = WindowRegistry()
        registry.observe("lat", 1.0, now=T0)
        registry.clear()
        assert registry.summaries(now=T0) == {}
