"""Fault injection: crashes, timeouts, cancellation, queue persistence.

These tests use the ``fault`` request hooks with **process** isolation
-- the real worker path, where a child can genuinely die or be
terminated -- and are the acceptance tests for the service's failure
contract: crashes retry with backoff and then complete, timeouts kill
the worker without wedging the queue, shutdown persists queued jobs for
the next service generation.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.pipeline import RunConfig
from repro.serve import (
    JobState,
    PlanningService,
    PlanRequest,
    ServiceSettings,
)
from repro.serve.errors import JobTimeout, WorkerCrashed, WorkerError
from repro.serve.service import STATE_FILENAME, STATE_SCHEMA_VERSION
from repro.serve.worker import (
    FAULT_EXIT_CODE,
    run_job_in_process,
    process_isolation_available,
)

pytestmark = pytest.mark.skipif(
    not process_isolation_available(),
    reason="multiprocessing spawn unavailable on this platform",
)

_CONFIG = RunConfig(compression="none", use_cache=False)


def _request(width: int = 8, **kwargs) -> PlanRequest:
    return PlanRequest("d695", width, _CONFIG, **kwargs)


def _settings(**overrides) -> ServiceSettings:
    defaults = dict(
        workers=1,
        isolation="process",
        max_retries=2,
        retry_base_s=0.05,
        retry_cap_s=0.2,
    )
    defaults.update(overrides)
    return ServiceSettings(**defaults)


class TestWorkerPrimitives:
    def test_crash_surfaces_exit_code(self):
        payload = _request(fault={"exit_on_attempts": [0]}).worker_payload(0)
        with pytest.raises(WorkerCrashed) as excinfo:
            run_job_in_process(payload)
        assert excinfo.value.exitcode == FAULT_EXIT_CODE

    def test_timeout_terminates_worker(self):
        payload = _request(fault={"sleep_s": 30}).worker_payload(0)
        started = time.monotonic()
        with pytest.raises(JobTimeout):
            run_job_in_process(payload, timeout_s=0.5)
        # The 30 s sleep was cut short by termination.
        assert time.monotonic() - started < 15

    def test_unknown_design_is_deterministic_worker_error(self):
        payload = PlanRequest("no-such-soc", 8, _CONFIG).worker_payload(0)
        with pytest.raises(WorkerError):
            run_job_in_process(payload)


class TestRetryOnCrash:
    def test_crashed_worker_retried_with_backoff_then_completes(self):
        async def scenario():
            service = PlanningService(_settings())
            await service.start()
            # Crash on attempt 0 only; attempt 1 runs clean.
            job, _ = service.submit(
                _request(fault={"exit_on_attempts": [0]})
            )
            done = await service.wait(job.id, timeout=300)
            await service.shutdown(drain=True)
            return service, done

        service, done = asyncio.run(scenario())
        assert done.state is JobState.DONE, done.error
        assert done.attempts == 2
        assert service.counters["jobs_retried"] >= 1
        assert service.counters["jobs_completed"] == 1
        exported = json.loads(done.result_json)
        assert exported["soc"] == "d695"

    def test_retries_exhausted_fails_with_crash_code(self):
        async def scenario():
            service = PlanningService(_settings(max_retries=1))
            await service.start()
            # Crash on every attempt the policy allows.
            job, _ = service.submit(
                _request(fault={"exit_on_attempts": [0, 1]})
            )
            done = await service.wait(job.id, timeout=300)
            await service.shutdown(drain=True)
            return service, done

        service, done = asyncio.run(scenario())
        assert done.state is JobState.FAILED
        assert done.error_code == "worker-crashed"
        assert done.attempts == 2
        assert service.counters["jobs_failed"] == 1


class TestTimeoutAndCancel:
    def test_timed_out_job_does_not_wedge_the_queue(self):
        async def scenario():
            service = PlanningService(_settings())
            await service.start()
            stuck, _ = service.submit(
                _request(fault={"sleep_s": 30}, timeout_s=0.5)
            )
            follower, _ = service.submit(_request(width=10))
            stuck_done = await service.wait(stuck.id, timeout=300)
            follower_done = await service.wait(follower.id, timeout=300)
            await service.shutdown(drain=True)
            return service, stuck_done, follower_done

        service, stuck, follower = asyncio.run(scenario())
        assert stuck.state is JobState.FAILED
        assert stuck.error_code == "timeout"
        assert service.counters["jobs_timed_out"] == 1
        # The slot was reclaimed: the next job ran to completion.
        assert follower.state is JobState.DONE, follower.error

    def test_cancel_running_job_terminates_worker(self):
        async def scenario():
            service = PlanningService(_settings())
            await service.start()
            job, _ = service.submit(_request(fault={"sleep_s": 30}))
            deadline = time.monotonic() + 60
            while job.state is not JobState.RUNNING:
                assert time.monotonic() < deadline
                await asyncio.sleep(0.02)
            service.cancel(job.id)
            done = await service.wait(job.id, timeout=300)
            await service.shutdown(drain=True)
            return done

        started = time.monotonic()
        done = asyncio.run(scenario())
        assert done.state is JobState.CANCELLED
        assert time.monotonic() - started < 25  # not the full 30 s sleep


class TestQueuePersistence:
    def test_shutdown_persists_queued_jobs_and_restart_completes_them(
        self, tmp_path
    ):
        state_dir = str(tmp_path)

        async def first_generation():
            service = PlanningService(
                _settings(state_dir=state_dir, retry_base_s=0.05)
            )
            await service.start()
            blocker, _ = service.submit(_request(fault={"sleep_s": 1.0}))
            # Yield so the dispatcher claims the blocker's worker slot;
            # the next two submissions then stay queued.
            deadline = time.monotonic() + 60
            while blocker.state is JobState.QUEUED:
                assert time.monotonic() < deadline
                await asyncio.sleep(0.02)
            queued, _ = service.submit(_request(width=10))
            queued_2, _ = service.submit(_request(width=12))
            persisted = await service.shutdown(drain=True)
            return service, persisted, [queued.id, queued_2.id]

        service, persisted, queued_ids = asyncio.run(first_generation())
        assert persisted == 2
        assert service.counters["jobs_persisted"] == 2
        state_file = tmp_path / STATE_FILENAME
        assert state_file.exists()
        saved = json.loads(state_file.read_text())
        assert saved["schema"] == STATE_SCHEMA_VERSION
        assert {r["job_id"] for r in saved["jobs"]} == set(queued_ids)

        async def second_generation():
            service = PlanningService(_settings(state_dir=state_dir))
            restored = await service.start()
            results = []
            for job_id in queued_ids:
                job = await service.wait(job_id, timeout=300)
                results.append(job)
            await service.shutdown(drain=True)
            return service, restored, results

        service2, restored, results = asyncio.run(second_generation())
        assert restored == 2
        assert service2.counters["jobs_restored"] == 2
        for job in results:
            assert job.state is JobState.DONE, job.error
        # The state file was consumed; a clean shutdown leaves none.
        assert not state_file.exists()

    def test_corrupt_state_file_does_not_block_startup(self, tmp_path):
        (tmp_path / STATE_FILENAME).write_text("{not json")

        async def scenario():
            service = PlanningService(
                ServiceSettings(
                    workers=1, isolation="thread", state_dir=str(tmp_path)
                )
            )
            restored = await service.start()
            await service.shutdown(drain=True)
            return service, restored

        service, restored = asyncio.run(scenario())
        assert restored == 0
        assert service.counters["state_corrupt"] == 1
        assert not (tmp_path / STATE_FILENAME).exists()

    def test_unparseable_record_skipped_not_fatal(self, tmp_path):
        payload = {
            "schema": STATE_SCHEMA_VERSION,
            "saved_at": 0.0,
            "jobs": [
                {"job_id": "job-bad", "request": {"design": "d695"}},
                {
                    "job_id": "job-good",
                    "submitted_at": 1.0,
                    "request": _request(width=10).to_dict(),
                },
            ],
        }
        (tmp_path / STATE_FILENAME).write_text(json.dumps(payload))

        async def scenario():
            service = PlanningService(
                ServiceSettings(
                    workers=1, isolation="thread", state_dir=str(tmp_path)
                )
            )
            restored = await service.start()
            job = await service.wait("job-good", timeout=300)
            await service.shutdown(drain=True)
            return service, restored, job

        service, restored, job = asyncio.run(scenario())
        assert restored == 1
        assert service.counters["state_corrupt"] == 1
        assert job.state is JobState.DONE, job.error
