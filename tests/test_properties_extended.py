"""Second property-based pass: cross-layer invariants.

These tie layers together: estimator vs exact coder, constrained vs
plain scheduling, preemptive vs non-preemptive, plan vs simulation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.cubes import generate_cubes
from repro.compression.dictionary import build_dictionary, canonicalize, decode, encode
from repro.compression.estimator import estimate_codewords
from repro.compression.selective import slice_costs
from repro.core.preemption import schedule_preemptive
from repro.core.timeline import schedule_constrained
from repro.soc.core import Core
from repro.wrapper.design import design_wrapper

small_core_strategy = st.builds(
    lambda chains, length, inputs, patterns, density, seed: Core(
        name=f"p{seed}",
        inputs=inputs,
        outputs=inputs,
        scan_chain_lengths=tuple([length] * chains),
        patterns=patterns,
        care_bit_density=density,
        seed=seed,
    ),
    chains=st.integers(2, 8),
    length=st.integers(5, 30),
    inputs=st.integers(0, 8),
    patterns=st.integers(2, 15),
    density=st.floats(0.01, 0.3),
    seed=st.integers(0, 5000),
)


class TestEstimatorAgainstExact:
    @given(small_core_strategy, st.integers(2, 12))
    @settings(max_examples=30, deadline=None)
    def test_estimator_tracks_exact_order_of_magnitude(self, core, m):
        """On tiny cores the estimator is noisy but must stay within a
        factor-of-two band of the exact codeword count."""
        design = design_wrapper(core, m)
        exact = int(slice_costs(generate_cubes(core).slices(design)).sum())
        estimate = estimate_codewords(core, design, samples=1024).total_codewords
        assert exact > 0
        assert 0.5 <= estimate / exact <= 2.0


class TestDictionaryProperties:
    @given(
        st.integers(2, 16).flatmap(
            lambda m: st.tuples(
                st.just(m),
                st.lists(
                    st.lists(st.sampled_from([0, 1, 2]), min_size=m, max_size=m),
                    min_size=2,
                    max_size=30,
                ),
            )
        ),
        st.integers(1, 4),
    )
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_equals_canonical(self, m_and_rows, index_bits):
        m, rows = m_and_rows
        slices = np.asarray(rows, dtype=np.int8)
        dictionary = build_dictionary(slices, index_bits)
        decoded = decode(encode(slices, dictionary), dictionary, slices.shape[0])
        assert np.array_equal(decoded, canonicalize(slices))

    @given(
        st.lists(
            st.lists(st.sampled_from([0, 1, 2]), min_size=6, max_size=6),
            min_size=2,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_bigger_dictionary_never_hurts(self, rows):
        from repro.compression.dictionary import compression_stats

        slices = np.asarray(rows, dtype=np.int8)
        small = compression_stats(slices, build_dictionary(slices, 1))
        # A 2-entry dictionary pays 2 bits per hit; a 4-entry one pays 3
        # but hits at least as often; compare hit rates, not raw bits.
        large = compression_stats(slices, build_dictionary(slices, 2))
        assert large.hit_rate >= small.hit_rate


schedule_instance = st.tuples(
    st.dictionaries(
        st.text(alphabet="abcdefgh", min_size=1, max_size=2),
        st.integers(1, 60),
        min_size=1,
        max_size=6,
    ),
    st.lists(st.integers(1, 4), min_size=1, max_size=3),
    st.floats(0.5, 5.0),
)


class TestConstrainedSchedulingProperties:
    @given(schedule_instance)
    @settings(max_examples=60, deadline=None)
    def test_power_budget_always_respected(self, instance):
        times, widths, unit_power = instance
        names = list(times)
        power = {name: unit_power for name in names}
        budget = unit_power * 2.5  # two tests at a time
        schedule = schedule_constrained(
            names,
            widths,
            lambda n, w: times[n],
            power_of=power,
            power_budget=budget,
        )
        assert schedule.peak_power <= budget + 1e-9

    @given(schedule_instance)
    @settings(max_examples=60, deadline=None)
    def test_preemptive_never_slower(self, instance):
        times, widths, unit_power = instance
        names = list(times)
        power = {name: unit_power for name in names}
        budget = unit_power * 2.5
        plain = schedule_constrained(
            names, widths, lambda n, w: times[n],
            power_of=power, power_budget=budget,
        )
        split = schedule_preemptive(
            names, widths, lambda n, w: times[n],
            power_of=power, power_budget=budget, max_segments=3,
        )
        assert split.makespan <= plain.makespan
        assert split.peak_power <= budget + 1e-9

    @given(schedule_instance)
    @settings(max_examples=60, deadline=None)
    def test_preemptive_segments_conserve_duration(self, instance):
        times, widths, _ = instance
        names = list(times)
        schedule = schedule_preemptive(
            names, widths, lambda n, w: times[n], max_segments=3
        )
        for name in names:
            segments = schedule.segments_for(name)
            assert sum(s.duration for s in segments) == times[name]
            # No two segments of any cores overlap on a TAM.
        by_tam = {}
        for segment in schedule.segments:
            by_tam.setdefault(segment.tam, []).append(segment)
        for items in by_tam.values():
            items.sort(key=lambda s: s.start)
            for a, b in zip(items, items[1:]):
                assert b.start >= a.end


class TestMakespanLowerBounds:
    @given(schedule_instance)
    @settings(max_examples=60, deadline=None)
    def test_constrained_respects_lower_bounds(self, instance):
        times, widths, _ = instance
        names = list(times)
        schedule = schedule_constrained(names, widths, lambda n, w: times[n])
        assert schedule.makespan >= max(times.values())
        assert schedule.makespan >= -(-sum(times.values()) // len(widths))
