"""Differential battery pinning every vectorized hot-path kernel.

The single-plan hot path (PR: "vectorize the single-plan hot path")
rewrote five layers with numpy -- selective slice costs, the fused
exact codeword kernel, the sampled estimator, wrapper BFD, and the
partition scheduler -- and every fast path retained its scalar
reference implementation.  This suite holds each pair bit-identical:

* **kernels** -- fast vs. reference on real benchmark cores (d695 /
  d2758 exact, the industrial ckt cores for the estimator) and on
  ``REPRO_FUZZ_SEEDS`` random cores from the fuzz generator;
* **whole plans** -- ``REPRO_SCALAR_KERNELS=1`` flips the entire
  pipeline onto the scalar stack; both plans of every catalog SOC and
  of random fuzz SOCs must produce equal architectures, and every
  fast-path plan is re-checked by the independent invariant catalog
  (:mod:`repro.verify`).

The codec fast/reference pairs (Golomb, FDR, zero-run extraction) are
pinned in ``tests/test_codecs.py`` next to their unit tests.

``REPRO_FUZZ_SEEDS`` widens the random sweeps in CI (the verification
job sets it to 200); the local default keeps the file in tens of
seconds.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from repro.compression.cubes import generate_cubes
from repro.compression.estimator import (
    estimate_codewords,
    estimate_codewords_batch,
    estimate_slice_costs,
    estimate_slice_costs_reference,
)
from repro.compression.hotpath import (
    exact_codeword_total,
    exact_codeword_totals,
    symbol_table,
)
from repro.compression.selective import slice_costs, slice_costs_reference
from repro.core.partition import (
    iter_partitions,
    partitions_list,
    search_partitions,
)
from repro.core.scheduler import (
    TimeTable,
    schedule_cores,
    schedule_cores_indexed,
    schedule_makespans_batch,
)
from repro.explore.dse import analysis_for, clear_analysis_cache
from repro.pipeline import RunConfig, plan
from repro.pipeline.tables import LookupTables
from repro.soc.industrial import load_design
from repro.verify.fuzz import random_core, random_soc
from repro.verify.invariants import verify_plan
from repro.wrapper.design import (
    _design_wrapper_uncached,
    clear_wrapper_design_cache,
    design_wrapper,
    design_wrappers_batch,
)

FUZZ_SEEDS = int(os.environ.get("REPRO_FUZZ_SEEDS", 24))
#: Plan-level differentials replan every SOC twice; scale them slower.
PLAN_SEEDS = max(4, FUZZ_SEEDS // 4)

#: Chain counts probed on real benchmark cores: every small m (where
#: group effects are strongest) plus a spread of larger ones.
BENCH_MS = (1, 2, 3, 4, 5, 6, 7, 8, 12, 17, 23, 31, 46, 64)


def _bench_cores(name):
    return load_design(name).cores


# ---------------------------------------------------------------------------
# Exact kernels on real benchmark cores.
# ---------------------------------------------------------------------------


class TestExactKernelsOnBenchmarks:
    @pytest.mark.parametrize("design_name", ["d695", "d2758"])
    def test_fused_totals_match_dense_slice_costs(self, design_name):
        """The fused kernel equals the dense per-design path, per core."""
        for core in _bench_cores(design_name):
            cubes = generate_cubes(core)
            designs = [design_wrapper(core, m) for m in BENCH_MS]
            fused = exact_codeword_totals(
                cubes, designs, symbols=symbol_table(cubes)
            )
            dense = np.array(
                [slice_costs(cubes.slices(d)).sum() for d in designs],
                dtype=np.int64,
            )
            assert np.array_equal(fused, dense), (design_name, core.name)

    def test_single_design_wrapper_matches(self):
        core = _bench_cores("d695")[0]
        cubes = generate_cubes(core)
        design = design_wrapper(core, 5)
        assert exact_codeword_total(cubes, design) == int(
            slice_costs(cubes.slices(design)).sum()
        )

    def test_mismatched_core_rejected(self):
        cores = _bench_cores("d695")
        cubes = generate_cubes(cores[0])
        foreign = design_wrapper(cores[1], 3)
        with pytest.raises(ValueError):
            exact_codeword_totals(cubes, [foreign])

    def test_mismatched_symbol_table_rejected(self):
        core = _bench_cores("d695")[0]
        cubes = generate_cubes(core)
        design = design_wrapper(core, 3)
        bad = np.zeros((2, 3, 3), dtype=np.int8)
        with pytest.raises(ValueError):
            exact_codeword_totals(cubes, [design], symbols=bad)


def test_slice_costs_match_encode_reference_on_fuzz_cores():
    """Vectorized slice costs == per-slice ``encode_slice`` ground truth.

    The reference walks every sampled slice through the actual encoder,
    so this also re-pins the vectorized path to the codeword semantics,
    not just to another array formulation.
    """
    for seed in range(FUZZ_SEEDS):
        rng = random.Random(10_000 + seed)
        core = random_core(rng, seed)
        cubes = generate_cubes(core)
        for m in (1, 2, 3, rng.randint(4, 12)):
            design = design_wrapper(core, m)
            slices = cubes.slices(design)
            fast = slice_costs(slices)
            ref = slice_costs_reference(slices)
            assert np.array_equal(fast, ref), (seed, m)
            assert exact_codeword_total(cubes, design) == int(ref.sum()), (
                seed,
                m,
            )


# ---------------------------------------------------------------------------
# Sampled estimator.
# ---------------------------------------------------------------------------


class TestEstimatorDifferential:
    #: ckt cores drive the estimate mode on the System SOCs.
    CKT_CORES = ("ckt-1", "ckt-5", "ckt-11")

    def _cores(self):
        by_name = {c.name: c for c in load_design("System4").cores}
        return [by_name[name] for name in self.CKT_CORES]

    def test_vectorized_costs_match_reference(self):
        for core in self._cores():
            for m in (1, 3, 8, 33):
                design = design_wrapper(core, m)
                fast = estimate_slice_costs(core, design, samples=192)
                ref = estimate_slice_costs_reference(core, design, samples=192)
                assert np.array_equal(fast, ref), (core.name, m)

    def test_batch_matches_per_design_calls(self):
        for core in self._cores():
            designs = [design_wrapper(core, m) for m in (1, 2, 5, 9, 17, 40)]
            batch = estimate_codewords_batch(core, designs, samples=192)
            singles = [
                estimate_codewords(core, d, samples=192) for d in designs
            ]
            assert batch == singles, core.name

    def test_batch_on_fuzz_cores(self):
        for seed in range(FUZZ_SEEDS):
            rng = random.Random(20_000 + seed)
            core = random_core(rng, seed)
            ms = sorted({rng.randint(1, 10) for _ in range(4)})
            designs = [design_wrapper(core, m) for m in ms]
            batch = estimate_codewords_batch(core, designs, samples=64)
            singles = [
                estimate_codewords(core, d, samples=64) for d in designs
            ]
            assert batch == singles, seed


# ---------------------------------------------------------------------------
# Wrapper BFD batch.
# ---------------------------------------------------------------------------


class TestWrapperBatchDifferential:
    def _check_core(self, core, ms):
        clear_wrapper_design_cache()
        batch = design_wrappers_batch(core, ms)
        try:
            for m in ms:
                assert batch[m] == _design_wrapper_uncached(core, m), (
                    core.name,
                    m,
                )
        finally:
            clear_wrapper_design_cache()

    @pytest.mark.parametrize("design_name", ["d695", "System1"])
    def test_batch_matches_sequential_bfd(self, design_name):
        for core in load_design(design_name).cores:
            self._check_core(core, list(BENCH_MS))

    def test_batch_on_fuzz_cores(self):
        for seed in range(FUZZ_SEEDS):
            rng = random.Random(30_000 + seed)
            core = random_core(rng, seed)
            ms = sorted({rng.randint(1, 14) for _ in range(5)})
            self._check_core(core, ms)


# ---------------------------------------------------------------------------
# Scheduler and partition search.
# ---------------------------------------------------------------------------


def _random_table(rng):
    names = [f"c{i}" for i in range(rng.randint(1, 12))]
    times = {
        (name, w): rng.randint(1, 400)
        for name in names
        for w in range(1, 33)
    }
    return names, (lambda name, w: times[(name, w)])


class TestSchedulerDifferential:
    def test_indexed_matches_scalar_on_random_tables(self):
        for seed in range(FUZZ_SEEDS):
            rng = random.Random(40_000 + seed)
            names, time_of = _random_table(rng)
            table = TimeTable(names, time_of)
            for _ in range(5):
                widths = tuple(
                    rng.randint(1, 32) for _ in range(rng.randint(1, 6))
                )
                assert schedule_cores_indexed(
                    table, widths
                ) == schedule_cores(names, widths, time_of), (seed, widths)

    def test_batch_makespans_match_scalar(self):
        for seed in range(FUZZ_SEEDS):
            rng = random.Random(50_000 + seed)
            names, time_of = _random_table(rng)
            table = TimeTable(names, time_of)
            total = rng.randint(1, 28)
            max_parts = rng.randint(1, 6)
            min_width = rng.randint(1, max(1, total // 2))
            parts = list(iter_partitions(total, max_parts, min_width))
            batch = schedule_makespans_batch(table, parts)
            ref = np.array(
                [
                    schedule_cores(names, p, time_of).makespan
                    for p in parts
                ],
                dtype=np.int64,
            )
            assert np.array_equal(batch, ref), (seed, total, max_parts)

    def test_exhaustive_search_matches_scalar_loop(self):
        """Vectorized argmin keeps the scalar loop's first-win tie-break."""
        for seed in range(FUZZ_SEEDS):
            rng = random.Random(60_000 + seed)
            names, time_of = _random_table(rng)
            total = rng.randint(1, 24)
            fast = search_partitions(
                names, total, time_of, strategy="exhaustive"
            )
            best = None
            for widths in iter_partitions(total, min(len(names), 6), 1):
                outcome = schedule_cores(names, widths, time_of)
                if best is None or outcome.makespan < best.makespan:
                    best = outcome
            assert fast.outcome == best, seed
            assert fast.partitions_evaluated == len(
                partitions_list(total, min(len(names), 6), 1)
            )

    def test_batch_rejects_bad_widths(self):
        table = TimeTable(["a"], lambda n, w: w)
        with pytest.raises(ValueError):
            schedule_makespans_batch(table, [()])
        with pytest.raises(ValueError):
            schedule_makespans_batch(table, [(2, 0)])

    def test_on_benchmark_tables(self):
        """Same checks over real DSE-backed time tables (d695 cores)."""
        soc = load_design("d695")
        tables = LookupTables(
            {
                core.name: analysis_for(core, mode="exact")
                for core in soc.cores
            },
            "per-core",
        )
        names = [core.name for core in soc.cores]
        time_of = tables.time_of
        table = TimeTable(names, time_of)
        parts = list(iter_partitions(12, 4, 1))
        batch = schedule_makespans_batch(table, parts)
        for widths, makespan in zip(parts, batch.tolist()):
            scalar = schedule_cores(names, widths, time_of)
            assert scalar == schedule_cores_indexed(table, widths)
            assert scalar.makespan == makespan, widths


def test_partitions_list_matches_iterator():
    cases = [(64, 6, 1), (32, 4, 2), (17, 3, 1), (5, 6, 1), (1, 1, 1)]
    rng = random.Random(7)
    cases += [
        (rng.randint(1, 40), rng.randint(1, 6), rng.randint(1, 4))
        for _ in range(20)
    ]
    for total, max_parts, min_width in cases:
        assert partitions_list(total, max_parts, min_width) == tuple(
            iter_partitions(total, max_parts, min_width)
        ), (total, max_parts, min_width)


# ---------------------------------------------------------------------------
# Whole plans: fast stack vs. REPRO_SCALAR_KERNELS=1.
# ---------------------------------------------------------------------------


def _plan_fingerprint(result):
    return (
        result.architecture,
        result.test_time,
        result.test_data_volume,
        result.tam_widths,
        result.partitions_evaluated,
        result.strategy,
    )


def _plan_both_ways(soc, width, config, monkeypatch):
    """Plan cold on the fast stack, then cold on the scalar stack."""
    monkeypatch.delenv("REPRO_SCALAR_KERNELS", raising=False)
    clear_analysis_cache()
    clear_wrapper_design_cache()
    fast = plan(soc, width, config)
    monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
    clear_analysis_cache()
    clear_wrapper_design_cache()
    scalar = plan(soc, width, config)
    monkeypatch.delenv("REPRO_SCALAR_KERNELS", raising=False)
    clear_analysis_cache()
    clear_wrapper_design_cache()
    return fast, scalar


CATALOG = ("d695", "d2758", "System1", "System2", "System3", "System4")


@pytest.mark.parametrize("design_name", CATALOG)
def test_plans_bit_identical_on_catalog(design_name, monkeypatch):
    """Fast and scalar stacks plan every catalog SOC identically.

    The fast-path plan additionally passes the independent invariant
    checker, so the speedup cannot have bought an inconsistent plan.
    """
    soc = load_design(design_name)
    config = RunConfig(use_cache=False)
    fast, scalar = _plan_both_ways(soc, 16, config, monkeypatch)
    assert _plan_fingerprint(fast) == _plan_fingerprint(scalar)
    report = verify_plan(fast, soc, config=config)
    assert report.ok, "\n".join(v.format() for v in report.violations)


def test_plans_bit_identical_on_fuzz_socs(monkeypatch):
    for seed in range(PLAN_SEEDS):
        rng = random.Random(70_000 + seed)
        soc = random_soc(rng)
        width = rng.randint(4, 20)
        config = RunConfig(compression="per-core", mode="exact", use_cache=False)
        fast, scalar = _plan_both_ways(soc, width, config, monkeypatch)
        assert _plan_fingerprint(fast) == _plan_fingerprint(scalar), seed
        report = verify_plan(fast, soc, config=config)
        assert report.ok, (seed, [v.format() for v in report.violations])
