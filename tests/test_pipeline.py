"""Unit tests for the staged pipeline: config, registry, tables."""

from __future__ import annotations

import pytest

from repro.core.robust import robust_plan
from repro.pipeline import (
    ArchitectureStage,
    DecompressorStage,
    LookupTables,
    Pipeline,
    PlanResult,
    RunConfig,
    ScheduleStage,
    Stage,
    WrapperStage,
    available_stages,
    normalize_compression,
    pipeline_for,
    plan,
    register_stage,
    stage_factory,
    unregister_stage,
)
from repro.reporting.export import result_from_json, result_to_json


# ---------------------------------------------------------------------------
# RunConfig
# ---------------------------------------------------------------------------


class TestRunConfig:
    def test_defaults_are_standard_flow(self):
        config = RunConfig()
        assert config.compression == "per-core"
        assert not config.is_constrained

    def test_rejects_unknown_compression(self):
        with pytest.raises(ValueError, match="compression"):
            RunConfig(compression="zip")

    def test_rejects_bad_min_tam_width(self):
        with pytest.raises(ValueError, match="min_tam_width"):
            RunConfig(min_tam_width=0)

    def test_normalize_compression_bools(self):
        assert normalize_compression(True) == "per-core"
        assert normalize_compression(False) == "none"
        with pytest.raises(ValueError, match="compression"):
            normalize_compression("bogus")

    def test_precedence_normalized_to_tuples(self):
        config = RunConfig(precedence=[["a", "b"], ("c", "d")])
        assert config.precedence == (("a", "b"), ("c", "d"))
        assert config.is_constrained

    def test_replace_returns_new_frozen_config(self):
        config = RunConfig()
        other = config.replace(jobs=4, compression="auto")
        assert other.jobs == 4
        assert other.compression == "auto"
        assert config.jobs is None  # original untouched
        with pytest.raises(AttributeError):
            other.jobs = 8

    def test_resolve_cache_honors_use_cache_false(self, tmp_path):
        config = RunConfig(cache_dir=str(tmp_path), use_cache=False)
        assert config.resolve_cache() is None

    def test_resolve_cache_explicit_dir(self, tmp_path):
        config = RunConfig(cache_dir=str(tmp_path))
        cache = config.resolve_cache()
        assert cache is not None
        assert str(tmp_path) in str(cache.directory)

    def test_is_constrained_flags(self):
        assert RunConfig(power_budget=10.0).is_constrained
        assert RunConfig(power_of={"a": 1.0}).is_constrained
        assert not RunConfig().is_constrained


# ---------------------------------------------------------------------------
# Pipeline assembly and routing
# ---------------------------------------------------------------------------


class TestPipelineRouting:
    def test_pipeline_for_standard(self):
        assert pipeline_for(RunConfig()).name == "standard"

    def test_pipeline_for_constrained(self):
        assert pipeline_for(RunConfig(power_budget=5.0)).name == "constrained"

    def test_pipeline_for_per_tam(self):
        assert pipeline_for(RunConfig(compression="per-tam")).name == "per-tam"

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError, match="at least one stage"):
            Pipeline([])

    def test_pipeline_without_schedule_stage_fails(self, tiny_soc):
        incomplete = Pipeline([WrapperStage(), DecompressorStage()])
        with pytest.raises(RuntimeError, match="architecture"):
            incomplete.run(tiny_soc, 8, RunConfig())

    def test_plan_produces_plan_result(self, tiny_soc):
        result = plan(tiny_soc, 8, RunConfig(compression="auto"))
        assert isinstance(result, PlanResult)
        assert result.soc_name == "tiny"
        assert result.width_budget == 8
        assert result.test_time > 0
        assert sum(result.tam_widths) <= 8
        stages = [name for name, _ in result.stage_timings]
        assert stages == ["wrapper", "decompressor", "architecture", "schedule"]
        assert result.cpu_seconds >= sum(s for _, s in result.stage_timings)


# ---------------------------------------------------------------------------
# Stage registry
# ---------------------------------------------------------------------------


class TestStageRegistry:
    def test_builtin_stages_registered(self):
        stages = available_stages()
        assert "partition" in stages["architecture"]
        assert "anneal" in stages["architecture"]
        assert "constrained" in stages["architecture"]
        assert "per-tam" in stages["architecture"]
        assert "robust" in stages["architecture"]
        assert "list" in stages["schedule"]
        assert "constrained" in stages["schedule"]

    def test_unknown_slot_rejected(self):
        with pytest.raises(ValueError, match="slot"):
            register_stage("wrapper", "custom", WrapperStage)

    def test_unknown_name_lists_registered(self):
        with pytest.raises(KeyError, match="partition"):
            stage_factory("architecture", "does-not-exist")

    def test_custom_stage_plugs_in(self, tiny_soc):
        """A drop-in architecture stage runs inside the standard flow."""

        class WidestFirstStage(Stage):
            name = "architecture"

            def run(self, ctx):
                from repro.core.partition import search_partitions

                ctx.search = search_partitions(
                    ctx.names,
                    ctx.width_budget,
                    ctx.tables.time_of,
                    max_parts=1,  # single TAM: trivially valid partition
                    min_width=1,
                    strategy="exhaustive",
                )
                ctx.partitions_evaluated = ctx.search.partitions_evaluated
                ctx.strategy = "single-tam"

        register_stage("architecture", "single-tam", WidestFirstStage)
        try:
            pipeline = Pipeline.from_registry("single-tam", "list")
            result = pipeline.run(tiny_soc, 8, RunConfig(compression="auto"))
            assert result.strategy == "single-tam"
            assert result.tam_widths == (8,)
        finally:
            unregister_stage("architecture", "single-tam")
        assert "single-tam" not in available_stages()["architecture"]

    def test_anneal_stage_produces_valid_plan(self, tiny_soc):
        pipeline = Pipeline.from_registry("anneal", "list")
        result = pipeline.run(tiny_soc, 8, RunConfig(compression="auto"))
        assert result.strategy == "anneal"
        assert result.test_time > 0
        assert sum(result.tam_widths) <= 8

    def test_exhaustive_matches_standard_auto_on_small_soc(self, tiny_soc):
        """Auto resolves to exhaustive at this size: same plan either way."""
        config = RunConfig(compression="auto")
        via_auto = plan(tiny_soc, 8, config)
        via_registry = Pipeline.from_registry("exhaustive", "list").run(
            tiny_soc, 8, config
        )
        assert via_registry.architecture == via_auto.architecture


# ---------------------------------------------------------------------------
# Robust planning through the pipeline
# ---------------------------------------------------------------------------


class TestRobustStage:
    def test_robust_plan_reports_both_makespans(self, tiny_soc):
        robust = robust_plan(tiny_soc, 8, epsilon=0.2)
        assert robust.result.strategy.startswith("robust-")
        assert robust.worst_case_makespan >= robust.nominal_makespan
        assert robust.regret >= 1.0
        assert robust.epsilon == 0.2

    def test_robust_result_round_trips(self, tiny_soc):
        robust = robust_plan(tiny_soc, 8)
        restored = result_from_json(result_to_json(robust.result))
        assert restored == robust.result


# ---------------------------------------------------------------------------
# LookupTables: bounded LRU memo layers (satellite 1)
# ---------------------------------------------------------------------------


class TestLookupTablesBounds:
    def _tables(self, soc, compression="auto"):
        config = RunConfig(compression=compression)
        analyses = config.analyses(soc.cores, max_tam_width=8)
        return LookupTables(analyses, compression)

    def test_time_cache_is_bounded(self, tiny_soc):
        tables = self._tables(tiny_soc)
        tables.time_cache_max_entries = 4
        for width in range(1, 9):
            for name in tables.analyses:
                tables.time_of(name, width)
        info = tables.cache_info()
        assert info["time_entries"] <= 4
        assert info["evictions"] > 0

    def test_eviction_is_lru_ordered(self, tiny_soc):
        tables = self._tables(tiny_soc)
        tables.time_cache_max_entries = 2
        names = list(tables.analyses)
        tables.time_of(names[0], 1)
        tables.time_of(names[0], 2)
        tables.time_of(names[0], 1)  # refresh (name, 1)
        tables.time_of(names[0], 3)  # evicts (name, 2), not (name, 1)
        assert (names[0], 1) in tables._time_cache
        assert (names[0], 2) not in tables._time_cache

    def test_selector_cache_is_bounded(self, tiny_soc):
        tables = self._tables(tiny_soc, compression="select")
        tables.selector_cache_max_entries = 1
        for name in tables.analyses:
            tables.config_of(name, 4)
        info = tables.cache_info()
        assert info["selector_entries"] <= 1

    def test_eviction_does_not_change_answers(self, tiny_soc):
        unbounded = self._tables(tiny_soc)
        bounded = self._tables(tiny_soc)
        bounded.time_cache_max_entries = 1
        for width in (1, 3, 5, 3, 1):
            for name in unbounded.analyses:
                assert bounded.time_of(name, width) == unbounded.time_of(
                    name, width
                )

    def test_hit_and_miss_counters(self, tiny_soc):
        tables = self._tables(tiny_soc)
        name = next(iter(tables.analyses))
        tables.time_of(name, 4)
        tables.time_of(name, 4)
        info = tables.cache_info()
        assert info["misses"] >= 1
        assert info["hits"] >= 1
