"""Unit tests for wrapper-chain design (BFD) and the timing model."""

import heapq

import numpy as np
import pytest

from repro.soc.core import Core
from repro.wrapper.design import (
    WrapperDesign,
    _distribute_cells,
    design_wrapper,
    pareto_wrapper_designs,
)
from repro.wrapper.timing import (
    scan_test_time,
    uncompressed_tam_volume,
    uncompressed_test_time,
)


def reference_distribute(scan_load, m, cells):
    """Literal one-cell-at-a-time greedy, as the algorithm is described."""
    counts = [0] * m
    heap = [(scan_load[h], h) for h in range(m)]
    heapq.heapify(heap)
    for _ in range(cells):
        load, h = heapq.heappop(heap)
        counts[h] += 1
        heapq.heappush(heap, (load + 1, h))
    return counts


class TestDistributeCells:
    @pytest.mark.parametrize("cells", [0, 1, 3, 7, 20, 100])
    def test_matches_reference_max(self, cells):
        scan_load = [5, 0, 9, 3, 3]
        ours = _distribute_cells(scan_load, 5, cells)
        ref = reference_distribute(scan_load, 5, cells)
        assert sum(ours) == cells
        ours_max = max(l + c for l, c in zip(scan_load, ours))
        ref_max = max(l + c for l, c in zip(scan_load, ref))
        assert ours_max == ref_max

    def test_zero_cells(self):
        assert _distribute_cells([1, 2], 2, 0) == [0, 0]

    def test_equal_loads_spread_evenly(self):
        counts = _distribute_cells([4, 4, 4], 3, 9)
        assert sorted(counts) == [3, 3, 3]

    def test_fills_valleys_first(self):
        counts = _distribute_cells([0, 10], 2, 5)
        assert counts == [5, 0]

    def test_overflow_beyond_level(self):
        counts = _distribute_cells([0, 0], 2, 11)
        assert sorted(counts) == [5, 6]

    @pytest.mark.parametrize("seed", range(6))
    def test_random_cases_match_reference(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, 12))
        scan_load = [int(x) for x in rng.integers(0, 50, m)]
        cells = int(rng.integers(0, 200))
        ours = _distribute_cells(scan_load, m, cells)
        ref = reference_distribute(scan_load, m, cells)
        assert sum(ours) == cells
        assert max(l + c for l, c in zip(scan_load, ours)) == max(
            l + c for l, c in zip(scan_load, ref)
        )


class TestDesignWrapper:
    def test_rejects_zero_chains(self, small_core):
        with pytest.raises(ValueError):
            design_wrapper(small_core, 0)

    def test_single_chain_concatenates_everything(self, small_core):
        design = design_wrapper(small_core, 1)
        assert design.scan_in_max == small_core.scan_in_bits
        assert design.scan_out_max == small_core.scan_out_bits

    def test_every_scan_chain_assigned_once(self, small_core):
        design = design_wrapper(small_core, 3)
        assigned = [c for chain in design.chains_scan for c in chain]
        assert sorted(assigned) == list(range(small_core.num_scan_chains))

    def test_all_io_cells_assigned(self, small_core):
        design = design_wrapper(small_core, 3)
        assert sum(design.chains_inputs) == small_core.wrapper_input_cells
        assert sum(design.chains_outputs) == small_core.wrapper_output_cells

    def test_si_never_below_longest_chain(self, small_core):
        for m in range(1, 12):
            design = design_wrapper(small_core, m)
            assert design.scan_in_max >= max(small_core.scan_chain_lengths)

    def test_si_non_increasing_in_m(self, small_core):
        values = [design_wrapper(small_core, m).scan_in_max for m in range(1, 12)]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_more_chains_than_items_leaves_empty(self, small_core):
        design = design_wrapper(small_core, 25)
        assert design.used_chains <= small_core.max_useful_wrapper_chains
        assert design.num_chains == 25

    def test_combinational_core(self, comb_core):
        design = design_wrapper(comb_core, 4)
        assert design.scan_in_max == 4  # 16 inputs over 4 chains
        assert design.scan_out_max == 2  # 8 outputs over 4 chains

    def test_bfd_balances_chains(self):
        core = Core(
            name="c",
            inputs=0,
            outputs=0,
            scan_chain_lengths=(8, 8, 4, 4, 4, 4),
            patterns=1,
        )
        design = design_wrapper(core, 2)
        # Perfect balance exists: (8+4+4) and (8+4+4).
        assert design.scan_in_max == 16

    def test_deterministic(self, small_core):
        assert design_wrapper(small_core, 3) == design_wrapper(small_core, 3)

    def test_pareto_designs_cover_range(self, small_core):
        designs = pareto_wrapper_designs(small_core, 6)
        assert sorted(designs) == [1, 2, 3, 4, 5, 6]

    def test_pareto_rejects_bad_max(self, small_core):
        with pytest.raises(ValueError):
            pareto_wrapper_designs(small_core, 0)


class TestActiveInputsPerSlice:
    def test_counts_sum_to_scan_in_bits(self, small_core):
        design = design_wrapper(small_core, 3)
        counts = design.active_inputs_per_slice()
        assert counts.sum() == small_core.scan_in_bits

    def test_monotone_non_decreasing(self, small_core):
        # Leading-pad alignment: later shift cycles have >= active chains.
        design = design_wrapper(small_core, 4)
        counts = design.active_inputs_per_slice()
        assert all(b >= a for a, b in zip(counts, counts[1:]))

    def test_last_slice_counts_all_nonempty(self, small_core):
        design = design_wrapper(small_core, 4)
        counts = design.active_inputs_per_slice()
        nonempty = sum(1 for L in design.scan_in_lengths if L)
        assert counts[-1] == nonempty


class TestPositionMatrix:
    def test_every_bit_appears_exactly_once(self, small_core):
        design = design_wrapper(small_core, 3)
        matrix = design.scan_in_position_matrix()
        flat = matrix[matrix >= 0]
        assert sorted(flat.tolist()) == list(range(small_core.scan_in_bits))

    def test_shape(self, small_core):
        design = design_wrapper(small_core, 3)
        matrix = design.scan_in_position_matrix()
        assert matrix.shape == (design.scan_in_max, 3)

    def test_pad_positions_lead(self, small_core):
        design = design_wrapper(small_core, 3)
        matrix = design.scan_in_position_matrix()
        for h in range(matrix.shape[1]):
            column = matrix[:, h]
            real = np.flatnonzero(column >= 0)
            if real.size:
                # Once real bits start, they continue to the end.
                assert np.array_equal(
                    real, np.arange(real[0], matrix.shape[0])
                )

    def test_combinational_matrix(self, comb_core):
        design = design_wrapper(comb_core, 8)
        matrix = design.scan_in_position_matrix()
        assert (matrix >= 0).sum() == comb_core.inputs


class TestTiming:
    def test_formula(self):
        assert scan_test_time(10, 7, 5) == (1 + 7) * 10 + 5

    def test_symmetric_in_si_so(self):
        assert scan_test_time(4, 9, 3) == scan_test_time(4, 3, 9)

    def test_rejects_zero_patterns(self):
        with pytest.raises(ValueError):
            scan_test_time(0, 1, 1)

    def test_uncompressed_test_time_decreases_with_width(self, small_core):
        times = [uncompressed_test_time(small_core, w) for w in range(1, 12)]
        assert all(b <= a for a, b in zip(times, times[1:]))

    def test_uncompressed_volume_includes_padding(self, small_core):
        design = design_wrapper(small_core, 3)
        volume = uncompressed_tam_volume(small_core, design)
        assert volume >= small_core.test_data_volume
        longest = max(design.scan_in_max, design.scan_out_max)
        assert volume == small_core.patterns * longest * 3


class TestWrapperDesignCache:
    """The memo must stay bounded and key on core *value*, not identity."""

    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        from repro.wrapper.design import clear_wrapper_design_cache

        clear_wrapper_design_cache()
        yield
        clear_wrapper_design_cache()

    def _core(self, i: int) -> Core:
        return Core(
            name=f"growth-{i}",
            inputs=4,
            outputs=4,
            scan_chain_lengths=(8, 7, 6),
            patterns=5,
            seed=i,
        )

    def test_memory_growth_is_bounded(self, monkeypatch):
        """Regression: the old lru_cache pinned every core ever analyzed."""
        import repro.wrapper.design as design_mod

        monkeypatch.setattr(design_mod, "WRAPPER_CACHE_MAX_ENTRIES", 8)
        for i in range(50):
            design_wrapper(self._core(i), 2)
        info = design_mod.wrapper_cache_info()
        assert info["entries"] <= 8
        assert info["evictions"] == 50 - 8
        assert info["misses"] == 50

    def test_eviction_is_least_recently_used(self, monkeypatch):
        import repro.wrapper.design as design_mod

        monkeypatch.setattr(design_mod, "WRAPPER_CACHE_MAX_ENTRIES", 2)
        a, b, c = self._core(1), self._core(2), self._core(3)
        design_wrapper(a, 2)
        design_wrapper(b, 2)
        design_wrapper(a, 2)  # refresh a
        design_wrapper(c, 2)  # evicts b, the stalest
        before = design_mod.wrapper_cache_info()["misses"]
        design_wrapper(a, 2)  # still cached
        design_wrapper(b, 2)  # was evicted: recomputed
        after = design_mod.wrapper_cache_info()["misses"]
        assert after - before == 1

    def test_value_equal_cores_share_entries(self):
        import repro.wrapper.design as design_mod

        first = design_wrapper(self._core(7), 3)
        hits_before = design_mod.wrapper_cache_info()["hits"]
        again = design_wrapper(self._core(7), 3)  # distinct instance
        assert again is first
        assert design_mod.wrapper_cache_info()["hits"] == hits_before + 1

    def test_clear_resets_entries_and_counters(self):
        import repro.wrapper.design as design_mod

        design_wrapper(self._core(1), 2)
        design_wrapper(self._core(1), 2)
        design_mod.clear_wrapper_design_cache()
        info = design_mod.wrapper_cache_info()
        assert info["entries"] == 0
        assert info["hits"] == 0 and info["misses"] == 0

    def test_cached_design_is_correct_after_eviction_churn(self, monkeypatch):
        import repro.wrapper.design as design_mod

        monkeypatch.setattr(design_mod, "WRAPPER_CACHE_MAX_ENTRIES", 4)
        core = self._core(99)
        reference = design_wrapper(core, 3)
        for i in range(20):
            design_wrapper(self._core(i), 2)
        assert design_wrapper(core, 3) == reference
