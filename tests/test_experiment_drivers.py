"""Tests of the experiment drivers at reduced scale.

The full paper-scale runs live in the benchmark harness; these tests
make sure the drivers produce well-formed data quickly (one design /
one width each) so regressions surface in the unit suite.
"""

import pytest

from repro.reporting.experiments import (
    figure4_data,
    format_figure4,
    format_table1,
    format_table2,
    format_table3,
    table1_rows,
    table2_rows,
    table3_rows,
)


class TestTable1Driver:
    @pytest.fixture(scope="class")
    def rows(self):
        return table1_rows(designs=("d695",), channels=(10,))

    def test_row_shape(self, rows):
        assert len(rows) == 1
        row = rows[0]
        assert row.design == "d695"
        assert row.ate_channels == 10
        assert row.proposed_time > 0
        assert row.soc_level_time and row.soc_level_time > 0

    def test_ratio(self, rows):
        row = rows[0]
        assert row.ratio == pytest.approx(
            row.proposed_time / row.soc_level_time
        )

    def test_format(self, rows):
        text = format_table1(rows)
        assert "Table 1" in text and "d695" in text

    def test_without_comparator(self):
        rows = table1_rows(
            designs=("d695",), channels=(10,), include_soc_level=False
        )
        assert rows[0].soc_level_time is None
        assert rows[0].ratio is None
        assert "n.a." in format_table1(rows)


class TestTable2Driver:
    def test_row_shape(self):
        rows = table2_rows(designs=("d695",), widths=(12,))
        row = rows[0]
        assert row.tam_width == 12
        assert row.soc_level_channels is not None
        assert row.soc_level_channels < 12
        assert "Table 2" in format_table2(rows)


class TestTable3Driver:
    def test_row_shape(self):
        rows = table3_rows(designs=("d695",), widths=(10,))
        row = rows[0]
        assert row.time_no_tdc > 0 and row.time_tdc > 0
        assert row.initial_volume_bits > 0
        assert row.time_reduction == pytest.approx(
            row.time_no_tdc / row.time_tdc
        )
        text = format_table3(rows)
        assert "average time reduction" in text

    def test_auto_compression_mode(self):
        rows = table3_rows(designs=("d695",), widths=(10,), compression="auto")
        assert rows[0].time_reduction >= 0.999


class TestFigure4Driver:
    def test_small_system(self):
        data = figure4_data("System2", 12, max_tams=2)
        assert data.no_tdc.test_time > data.per_core.test_time
        text = format_figure4(data)
        assert "(b) decompressor per TAM" in text
