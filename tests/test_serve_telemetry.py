"""Live service telemetry: metrics/health ops, trace stitching, top.

The stitching test is the acceptance check of the telemetry layer: one
submission through the real TCP transport with process isolation must
produce client, protocol, queue, and worker spans that all carry the
same ``request_id`` -- with the worker's spans recorded in a different
process and re-rooted under the ``serve/attempt`` span.

The concurrent-stats test pins the ``stats`` op's consistency under a
duplicate-heavy many-client load (satellite of the same change).
"""

from __future__ import annotations

import asyncio
import io
import json
import os
import threading
import time

import pytest

from repro import obs
from repro.pipeline import RunConfig
from repro.serve import (
    PlanningService,
    ServiceClient,
    ServiceServer,
    ServiceSettings,
    ServiceTelemetry,
    connect_with_retry,
    health_view,
)
from repro.serve.telemetry import HEALTH_WINDOW_S
from repro.obs.expo import parse_openmetrics


# ---------------------------------------------------------------------------
# In-process server harness: the asyncio loop runs on a background
# thread so the test (and its obs context) shares the process with the
# service -- required for span collection on the serve side.
# ---------------------------------------------------------------------------


class InProcessServer:
    def __init__(self, settings: ServiceSettings, runner=None) -> None:
        self.settings = settings
        self.runner = runner
        self.server: ServiceServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    def __enter__(self) -> "InProcessServer":
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, daemon=True
        )
        self._thread.start()

        async def boot() -> ServiceServer:
            service = PlanningService(self.settings, runner=self.runner)
            server = ServiceServer(service, port=0)
            await server.start()
            return server

        self.server = asyncio.run_coroutine_threadsafe(
            boot(), self._loop
        ).result(timeout=30)
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._loop is not None
        if self.server is not None:
            asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop
            ).result(timeout=120)
        self._loop.call_soon_threadsafe(self._loop.stop)
        assert self._thread is not None
        self._thread.join(timeout=10)
        self._loop.close()

    @property
    def port(self) -> int:
        assert self.server is not None
        return self.server.port

    def client(self) -> ServiceClient:
        return connect_with_retry("127.0.0.1", self.port)


def _echo_runner(payload, *, timeout_s=None, should_cancel=None):
    return json.dumps({"design": payload["design"]})


# ---------------------------------------------------------------------------
# ServiceTelemetry / health_view units.
# ---------------------------------------------------------------------------


class TestServiceTelemetry:
    def test_counts_and_windows_record_when_enabled(self):
        telemetry = ServiceTelemetry(enabled=True)
        telemetry.count("jobs_submitted", 2)
        telemetry.set_queue_depth(5)
        telemetry.observe_execution(0.2)
        telemetry.observe_turnaround(0.5)
        snapshot = telemetry.registry.snapshot()
        assert snapshot["counters"]["serve.jobs_submitted"] == 2
        assert snapshot["gauges"]["serve.queue_depth"] == 5.0
        assert snapshot["histograms"]["serve.job_seconds"]["count"] == 1
        rolling = telemetry.rolling()
        assert rolling["job_seconds"]["count"] == 1
        assert rolling["turnaround_seconds"]["p99"] == pytest.approx(0.5)

    def test_rolling_rate_uses_observed_span_during_warmup(self):
        # The health op's rate must reflect actual traffic from the
        # first seconds of uptime: 5 jobs over the 4 observed seconds
        # reads ~1.25/s, not 5 / HEALTH_WINDOW_S =~ 0.08/s.
        telemetry = ServiceTelemetry(enabled=True)
        window = telemetry.windows.window("job_seconds", HEALTH_WINDOW_S)
        t0 = 1_000_000.0
        for i in range(5):
            window.observe(0.1, now=t0 + i)
        rolling = telemetry.windows.summaries(now=t0 + 4)
        assert rolling["job_seconds"]["rate_per_s"] == pytest.approx(1.25)

    def test_disabled_telemetry_records_nothing(self):
        telemetry = ServiceTelemetry(enabled=False)
        telemetry.count("jobs_submitted")
        telemetry.set_queue_depth(5)
        telemetry.observe_execution(0.2)
        telemetry.observe_turnaround(0.5)
        telemetry.merge_worker_metrics({"counters": {"x": 1}})
        assert telemetry.registry.snapshot()["counters"] == {}
        assert telemetry.rolling() == {}
        assert telemetry.openmetrics() == "# EOF\n"

    def test_openmetrics_exposition_parses(self):
        telemetry = ServiceTelemetry()
        telemetry.count("jobs_completed", 3)
        telemetry.observe_execution(0.01)
        series = parse_openmetrics(telemetry.openmetrics())
        assert series["repro_serve_jobs_completed_total"] == 3
        assert series["repro_serve_job_seconds_count"] == 1

    def test_merge_worker_metrics(self):
        telemetry = ServiceTelemetry()
        telemetry.merge_worker_metrics(
            {"counters": {"pipeline.runs": 4}, "gauges": {}, "histograms": {}}
        )
        snapshot = telemetry.registry.snapshot()
        assert snapshot["counters"]["pipeline.runs"] == 4


class TestHealthView:
    def _view(self, **overrides):
        defaults = dict(
            telemetry=ServiceTelemetry(),
            counters={"jobs_submitted": 10, "jobs_completed": 8,
                      "jobs_failed": 1, "jobs_cancelled": 1},
            queue_depth=2,
            queue_capacity=64,
            running=1,
            workers=4,
            accepting=True,
            dispatcher_alive=True,
            uptime_s=12.5,
        )
        defaults.update(overrides)
        return health_view(**defaults)

    def test_ok_when_accepting_and_dispatching(self):
        view = self._view()
        assert view["status"] == "ok"
        assert view["uptime_s"] == 12.5
        assert view["window_s"] == HEALTH_WINDOW_S
        assert view["queue_depth"] == 2

    def test_draining_once_admission_stops(self):
        assert self._view(accepting=False)["status"] == "draining"

    def test_degraded_when_dispatcher_died(self):
        view = self._view(dispatcher_alive=False)
        assert view["status"] == "degraded"

    def test_error_budget_math(self):
        budget = self._view()["error_budget"]
        assert budget["submitted"] == 10
        assert budget["completed"] == 8
        assert budget["failure_rate"] == pytest.approx(0.2)

    def test_zero_submissions_is_zero_rate(self):
        budget = self._view(counters={})["error_budget"]
        assert budget["failure_rate"] == 0.0

    def test_disabled_telemetry_has_no_rolling_block(self):
        view = self._view(telemetry=ServiceTelemetry(enabled=False))
        assert view["rolling"] == {}
        assert view["telemetry"] is False


# ---------------------------------------------------------------------------
# Protocol ops over the real transport (injected runner: fast).
# ---------------------------------------------------------------------------


def _settings(**overrides) -> ServiceSettings:
    defaults = dict(workers=2, isolation="thread", max_depth=16)
    defaults.update(overrides)
    return ServiceSettings(**defaults)


class TestTelemetryOps:
    def test_metrics_and_health_ops(self):
        with InProcessServer(_settings(), runner=_echo_runner) as srv:
            with srv.client() as client:
                ticket = client.submit("d695", 8)
                client.result(ticket.job_id)
                series = parse_openmetrics(client.metrics())
                assert series["repro_serve_jobs_submitted_total"] == 1
                assert series["repro_serve_jobs_completed_total"] == 1
                assert series["repro_serve_requests_total"] >= 2
                health = client.health()
                assert health["status"] == "ok"
                assert health["telemetry"] is True
                assert health["error_budget"]["completed"] == 1
                assert "turnaround_seconds" in health["rolling"]

    def test_request_id_minted_and_echoed(self):
        with InProcessServer(_settings(), runner=_echo_runner) as srv:
            with srv.client() as client:
                ticket = client.submit("d695", 8)
                assert ticket.request_id.startswith("req-")
                status = client.status(ticket.job_id)
                assert status["request_id"] == ticket.request_id

    def test_deduped_submission_reports_original_request_id(self):
        with InProcessServer(
            _settings(workers=1), runner=_gated_echo_factory()
        ) as srv:
            with srv.client() as client:
                first = client.submit(
                    "d695", 8, request_id="req-original0001"
                )
                second = client.submit(
                    "d695", 8, request_id="req-duplicate001"
                )
                assert second.deduped
                assert first.request_id == "req-original0001"
                assert second.request_id == "req-original0001"
                _release_gates()
                client.result(first.job_id)

    def test_disabled_telemetry_degrades_gracefully(self):
        with InProcessServer(
            _settings(telemetry=False), runner=_echo_runner
        ) as srv:
            with srv.client() as client:
                ticket = client.submit("d695", 8)
                client.result(ticket.job_id)
                assert client.metrics() == "# EOF\n"
                health = client.health()
                assert health["telemetry"] is False
                assert health["rolling"] == {}
                # The authoritative stats counters stay correct.
                stats = client.stats()
                assert stats["telemetry"] is False
                assert stats["counters"]["jobs_completed"] == 1


_GATES: list[threading.Event] = []


def _gated_echo_factory():
    gate = threading.Event()
    _GATES.append(gate)

    def runner(payload, *, timeout_s=None, should_cancel=None):
        gate.wait(timeout=30)
        return json.dumps({"design": payload["design"]})

    return runner


def _release_gates() -> None:
    for gate in _GATES:
        gate.set()
    _GATES.clear()


# ---------------------------------------------------------------------------
# Satellite: the stats op stays consistent under duplicate-heavy
# concurrent load from many clients.
# ---------------------------------------------------------------------------


class TestStatsUnderConcurrentLoad:
    CLIENTS = 8
    SUBMITS_PER_CLIENT = 6
    UNIQUE_WIDTHS = (8, 12, 16)  # 3 unique fingerprints, duplicate-heavy

    def test_counters_and_gauge_stay_consistent(self):
        settings = _settings(workers=2, max_depth=32)
        with InProcessServer(
            settings, runner=_gated_echo_factory()
        ) as srv:
            observations: list[dict] = []
            errors: list[Exception] = []
            start = threading.Barrier(self.CLIENTS + 1)

            def client_main(index: int) -> None:
                try:
                    with srv.client() as client:
                        start.wait(timeout=30)
                        for i in range(self.SUBMITS_PER_CLIENT):
                            width = self.UNIQUE_WIDTHS[
                                (index + i) % len(self.UNIQUE_WIDTHS)
                            ]
                            client.submit("d695", width)
                            observations.append(client.stats())
                except Exception as error:  # pragma: no cover
                    errors.append(error)

            threads = [
                threading.Thread(target=client_main, args=(i,))
                for i in range(self.CLIENTS)
            ]
            for thread in threads:
                thread.start()
            start.wait(timeout=30)
            for thread in threads:
                thread.join(timeout=60)
            assert not errors

            # Every concurrent snapshot satisfies the invariants.
            for stats in observations:
                counters = stats["counters"]
                assert 0 <= stats["queue_depth"] <= stats["queue_capacity"]
                assert stats["running"] <= stats["workers"]
                assert counters.get("jobs_deduped", 0) <= (
                    self.CLIENTS * self.SUBMITS_PER_CLIENT
                )
                assert counters.get("jobs_submitted", 0) >= len(
                    set(self.UNIQUE_WIDTHS)
                ) - stats["queue_capacity"]  # trivially non-negative bound

            _release_gates()
            with srv.client() as client:
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    stats = client.stats()
                    done = stats["counters"].get("jobs_completed", 0)
                    if (
                        done == stats["counters"].get("jobs_submitted", 0)
                        and stats["running"] == 0
                    ):
                        break
                    time.sleep(0.05)
                counters = stats["counters"]
                total = self.CLIENTS * self.SUBMITS_PER_CLIENT
                # Every submission was accepted, coalesced, or rejected.
                assert (
                    counters.get("jobs_submitted", 0)
                    + counters.get("jobs_deduped", 0)
                    + counters.get("jobs_rejected", 0)
                ) == total
                # Duplicate-heavy: far fewer jobs than submissions.
                assert counters["jobs_submitted"] < total
                assert counters["jobs_deduped"] > 0
                assert counters["jobs_completed"] == counters[
                    "jobs_submitted"
                ]
                assert stats["queue_depth"] == 0
                # The telemetry mirror agrees with the authoritative
                # counters at quiescence.
                series = parse_openmetrics(client.metrics())
                assert series["repro_serve_jobs_submitted_total"] == (
                    counters["jobs_submitted"]
                )
                assert series["repro_serve_queue_depth"] == 0


# ---------------------------------------------------------------------------
# Acceptance: one request's trace stitches client -> queue -> worker
# across the process boundary under a single request id.
# ---------------------------------------------------------------------------


class TestTraceStitching:
    def test_worker_report_stripping_keeps_wire_payload_identical(self):
        from repro.serve.worker import execute_plan

        payload = {
            "design": "d695",
            "width": 8,
            "config": {"compression": "none", "use_cache": False},
        }

        def normalized(text: str) -> dict:
            data = json.loads(text)

            def scrub(node):
                if isinstance(node, dict):
                    return {
                        k: scrub(v)
                        for k, v in node.items()
                        if not k.endswith("seconds")  # timings vary per run
                    }
                if isinstance(node, list):
                    return [scrub(v) for v in node]
                return node

            return scrub(data)

        baseline = execute_plan(payload)
        with obs.enabled():
            collected = execute_plan(payload, strip_report=True)
        # Stripping the attached RunReport keeps the wire payload
        # field-for-field identical to the un-observed run.
        assert "report" not in json.loads(collected)
        assert normalized(collected) == normalized(baseline)

    def test_cross_process_trace_shares_one_request_id(self):
        settings = _settings(
            workers=1, isolation="process", default_timeout_s=300.0
        )
        config = RunConfig(compression="none", use_cache=False)
        with obs.enabled() as active:
            with InProcessServer(settings) as srv:
                with srv.client() as client:
                    ticket = client.submit("d695", 8, config)
                    client.result(ticket.job_id)
            rid = ticket.request_id
            assert rid.startswith("req-")
            spans = [
                span
                for span in active.tracer.spans
                if span.attrs.get("request_id") == rid
            ]
            names = {span.name for span in spans}
            # Client, protocol, queue-wait, execution, and worker spans
            # all share the request id.
            assert {
                "client/submit",
                "serve/submit",
                "serve/queued",
                "serve/attempt",
                "worker/plan",
            } <= names
            worker_spans = [s for s in spans if s.name == "worker/plan"]
            attempt_spans = [s for s in spans if s.name == "serve/attempt"]
            assert len(worker_spans) == 1
            # The worker really ran in another process, and its spans
            # were re-rooted under the attempt span's path.
            assert worker_spans[0].pid != os.getpid()
            assert worker_spans[0].pid == worker_spans[0].attrs["pid"]
            assert worker_spans[0].path.startswith(
                attempt_spans[0].path + "/"
            )
            # The worker's nested pipeline spans came along too,
            # keeping their own hierarchy below worker/plan.
            nested = [
                span
                for span in active.tracer.spans
                if span.path.startswith(worker_spans[0].path + "/")
            ]
            assert nested, "worker pipeline spans missing from the trace"


# ---------------------------------------------------------------------------
# The top dashboard renderer (pure) and poll loop.
# ---------------------------------------------------------------------------


class TestTopDashboard:
    STATS = {
        "queue_depth": 8,
        "queue_capacity": 64,
        "running": 2,
        "workers": 4,
        "accepting": True,
        "retry_after_hint": 1.5,
        "counters": {"jobs_submitted": 10, "jobs_completed": 7,
                     "jobs_deduped": 3},
    }
    HEALTH = {
        "status": "ok",
        "uptime_s": 120.0,
        "telemetry": True,
        "window_s": 60.0,
        "rolling": {
            "job_seconds": {
                "count": 7, "rate_per_s": 0.12, "mean": 0.2,
                "max": 0.9, "p50": 0.15, "p95": 0.4, "p99": 0.8,
            },
        },
        "error_budget": {
            "failure_rate": 0.1, "failed": 1, "timed_out": 0,
            "cancelled": 0, "rejected": 2, "invalid_plan": 0,
        },
    }

    def test_render_contains_the_load_picture(self):
        from repro.serve.top import render_dashboard

        frame = render_dashboard(self.STATS, self.HEALTH)
        assert "status ok" in frame
        assert "8/64" in frame
        assert "running 2/4" in frame
        assert "submitted=10" in frame
        assert "p99=" in frame and "800.0ms" in frame
        assert "failure_rate=10.00%" in frame
        assert "rejected=2" in frame

    def test_render_without_telemetry_omits_rolling(self):
        from repro.serve.top import render_dashboard

        health = dict(self.HEALTH, rolling={}, telemetry=False)
        frame = render_dashboard(self.STATS, health)
        assert "telemetry off" in frame
        assert "rolling latency" not in frame

    def test_run_top_polls_and_stops(self):
        from repro.serve.top import run_top

        class FakeClient:
            def __init__(self, outer):
                self.calls = 0
                self.outer = outer

            def stats(self):
                self.calls += 1
                return dict(self.outer.STATS)

            def health(self):
                return dict(self.outer.HEALTH)

        sleeps: list[float] = []
        out = io.StringIO()
        client = FakeClient(self)
        code = run_top(
            client,
            interval_s=0.5,
            iterations=3,
            out=out,
            clear=False,
            sleep=sleeps.append,
        )
        assert code == 0
        assert client.calls == 3
        assert sleeps == [0.5, 0.5]
        assert out.getvalue().count("repro-soc top") == 3

    def test_run_top_reports_unreachable_service(self, capsys):
        from repro.serve.top import run_top

        class DeadClient:
            def stats(self):
                raise ConnectionRefusedError("gone")

            def health(self):  # pragma: no cover
                return {}

        assert run_top(DeadClient(), iterations=1, out=io.StringIO()) == 3
        assert "unreachable" in capsys.readouterr().err
