"""Tests for multi-frequency TAM planning."""

import pytest

from repro.core.multifrequency import (
    FrequencyTam,
    _tam_options,
    optimize_multifrequency,
)
from repro.core.partition import iter_partitions
from repro.core.scheduler import schedule_cores


def divisible(work):
    return lambda name, width: -(-work[name] // width)


class TestTamOptions:
    def test_factorizations(self):
        options = _tam_options(8, (1, 2, 4))
        assert FrequencyTam(8, 1) in options
        assert FrequencyTam(4, 2) in options
        assert FrequencyTam(2, 4) in options

    def test_non_dividing_ratio_skipped(self):
        options = _tam_options(6, (1, 2, 4))
        assert FrequencyTam(3, 2) in options
        assert all(o.ratio != 4 for o in options)

    def test_bandwidth_invariant(self):
        for option in _tam_options(12, (1, 2, 4)):
            assert option.bandwidth == 12


class TestOptimize:
    def test_validation(self):
        with pytest.raises(ValueError):
            optimize_multifrequency([], 4, lambda n, w: 1)
        with pytest.raises(ValueError):
            optimize_multifrequency(["a"], 0, lambda n, w: 1)
        with pytest.raises(ValueError):
            optimize_multifrequency(["a"], 4, lambda n, w: 1, ratios=(0,))

    def test_single_rate_reduces_to_plain_search(self):
        work = {"a": 120, "b": 77, "c": 55}
        names = list(work)
        time_of = divisible(work)
        multi = optimize_multifrequency(
            names, 8, time_of, ratios=(1,), max_tams=3
        )
        plain = min(
            schedule_cores(names, widths, time_of).makespan
            for widths in iter_partitions(8, 3)
        )
        assert multi.makespan == plain

    def test_faster_clocks_never_hurt(self):
        work = {"a": 200, "b": 150, "c": 90}
        names = list(work)
        time_of = divisible(work)
        base = optimize_multifrequency(names, 8, time_of, ratios=(1,))
        fast = optimize_multifrequency(names, 8, time_of, ratios=(1, 2, 4))
        assert fast.makespan <= base.makespan

    def test_bandwidth_budget_respected(self):
        work = {"a": 100, "b": 60}
        plan = optimize_multifrequency(list(work), 6, divisible(work))
        assert sum(t.bandwidth for t in plan.tams) <= 6

    def test_fast_narrow_tam_saves_wires(self):
        """At equal bandwidth, a 2x-clocked TAM halves the wires.

        With divisible work, time ~ work / (width * ratio), so the fast
        option matches the wide one while using fewer wires; the search
        must find a plan no worse than the single-rate one with at most
        the same wire count.
        """
        work = {"a": 400}
        plan = optimize_multifrequency(
            ["a"], 8, divisible(work), ratios=(1, 2, 4)
        )
        single = optimize_multifrequency(["a"], 8, divisible(work), ratios=(1,))
        assert plan.makespan <= single.makespan
        assert plan.total_wires <= 8

    def test_frequency_limits_respected(self):
        work = {"slow": 100, "fast": 100}
        plan = optimize_multifrequency(
            list(work),
            8,
            divisible(work),
            ratios=(1, 4),
            freq_limit={"slow": 1},
        )
        tam_of = {name: plan.tams[t] for name, t in zip(work, plan.assignment)}
        assert tam_of["slow"].ratio == 1

    def test_impossible_limits_raise(self):
        work = {"slow": 100}
        with pytest.raises(ValueError, match="no feasible"):
            optimize_multifrequency(
                ["slow"],
                4,
                divisible(work),
                ratios=(4,),  # only 4x TAMs exist...
                freq_limit={"slow": 1},  # ...but the core can't take them
            )

    def test_assignment_covers_all_cores(self):
        work = {f"c{i}": 50 + i for i in range(5)}
        plan = optimize_multifrequency(list(work), 10, divisible(work))
        assert len(plan.assignment) == 5
        assert all(0 <= t < len(plan.tams) for t in plan.assignment)

    def test_configurations_counted(self):
        work = {"a": 10}
        plan = optimize_multifrequency(["a"], 4, divisible(work))
        assert plan.configurations_evaluated > 0
