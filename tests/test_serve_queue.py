"""Unit tests for the service job queue and job state machine."""

from __future__ import annotations

import asyncio

import pytest

from repro.pipeline import RunConfig
from repro.serve.jobs import Job, JobQueue, JobState, QueueFull
from repro.serve.protocol import PlanRequest


def _job(priority: int = 0, width: int = 16) -> Job:
    return Job(
        request=PlanRequest(
            "d695", width, RunConfig(), priority=priority
        )
    )


def _run(coro):
    return asyncio.run(coro)


class TestJobStateMachine:
    def test_initial_state(self):
        job = _job()
        assert job.state is JobState.QUEUED
        assert not job.state.terminal
        assert job.attempts == 0

    def test_done_transition(self):
        job = _job()
        job.mark_running()
        assert job.state is JobState.RUNNING
        assert job.started_at is not None
        job.mark_done('{"x": 1}')
        assert job.state is JobState.DONE
        assert job.state.terminal
        assert job.result_json == '{"x": 1}'
        assert job.finished_at is not None

    def test_failed_transition_records_code(self):
        job = _job()
        job.mark_running()
        job.mark_failed("timeout", "exceeded deadline")
        assert job.state is JobState.FAILED
        assert job.error_code == "timeout"
        assert "deadline" in job.error

    def test_cancelled_is_terminal(self):
        job = _job()
        job.mark_cancelled()
        assert job.state is JobState.CANCELLED
        assert job.state.terminal

    def test_done_event_set_on_finish(self):
        async def scenario():
            job = _job()
            job.done_event = asyncio.Event()
            job.mark_done("{}")
            assert job.done_event.is_set()

        _run(scenario())

    def test_fingerprint_matches_request(self):
        job = _job()
        assert job.fingerprint == job.request.fingerprint()


class TestJobQueue:
    def test_rejects_bad_depth(self):
        async def scenario():
            with pytest.raises(ValueError):
                JobQueue(0)

        _run(scenario())

    def test_fifo_within_priority(self):
        async def scenario():
            queue = JobQueue(8)
            jobs = [_job(width=16 + i) for i in range(3)]
            for job in jobs:
                queue.push(job)
            popped = [await queue.pop() for _ in range(3)]
            assert popped == jobs

        _run(scenario())

    def test_higher_priority_pops_first(self):
        async def scenario():
            queue = JobQueue(8)
            low = _job(priority=0)
            high = _job(priority=5, width=24)
            mid = _job(priority=2, width=32)
            for job in (low, high, mid):
                queue.push(job)
            assert await queue.pop() is high
            assert await queue.pop() is mid
            assert await queue.pop() is low

        _run(scenario())

    def test_bounded_depth_raises_queue_full(self):
        async def scenario():
            queue = JobQueue(2)
            queue.push(_job())
            queue.push(_job(width=24))
            assert queue.full
            with pytest.raises(QueueFull):
                queue.push(_job(width=32))
            # Popping frees a slot again.
            await queue.pop()
            queue.push(_job(width=32))

        _run(scenario())

    def test_pop_waits_for_push(self):
        async def scenario():
            queue = JobQueue(4)
            job = _job()

            async def pusher():
                await asyncio.sleep(0.01)
                queue.push(job)

            task = asyncio.create_task(pusher())
            popped = await asyncio.wait_for(queue.pop(), timeout=2)
            await task
            assert popped is job

        _run(scenario())

    def test_cancelled_jobs_are_skipped(self):
        async def scenario():
            queue = JobQueue(4)
            first = _job()
            second = _job(width=24)
            queue.push(first)
            queue.push(second)
            first.mark_cancelled()
            assert await queue.pop() is second

        _run(scenario())

    def test_cancelled_jobs_do_not_count_toward_depth(self):
        async def scenario():
            queue = JobQueue(2)
            first = _job()
            queue.push(first)
            queue.push(_job(width=24))
            first.mark_cancelled()
            assert len(queue) == 1
            queue.push(_job(width=32))  # does not raise

        _run(scenario())

    def test_closed_queue_returns_none_immediately(self):
        async def scenario():
            queue = JobQueue(4)
            queue.push(_job())
            queue.close()
            # Shutdown semantics: remaining jobs are persisted, not
            # dispatched.
            assert await queue.pop() is None
            assert len(queue.snapshot()) == 1

        _run(scenario())

    def test_close_wakes_blocked_pop(self):
        async def scenario():
            queue = JobQueue(4)

            async def closer():
                await asyncio.sleep(0.01)
                queue.close()

            task = asyncio.create_task(closer())
            assert await asyncio.wait_for(queue.pop(), timeout=2) is None
            await task

        _run(scenario())

    def test_snapshot_preserves_pop_order(self):
        async def scenario():
            queue = JobQueue(8)
            low = _job(priority=0)
            high = _job(priority=9, width=24)
            queue.push(low)
            queue.push(high)
            snapshot = queue.snapshot()
            assert [r["job_id"] for r in snapshot] == [high.id, low.id]
            assert snapshot[0]["request"]["width"] == 24

        _run(scenario())
