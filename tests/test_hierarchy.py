"""Tests for hierarchical SOC planning."""

import pytest

import repro
from repro.soc.core import Core
from repro.soc.hierarchy import ChildSocCore, optimize_hierarchical
from repro.soc.soc import Soc


def _leaf(name: str, chains: int, seed: int, density: float = 0.04) -> Core:
    return Core(
        name=name,
        inputs=6,
        outputs=6,
        scan_chain_lengths=(25,) * chains,
        patterns=30,
        care_bit_density=density,
        one_fraction=0.3,
        seed=seed,
    )


@pytest.fixture
def child_soc() -> Soc:
    return Soc(
        name="childA",
        cores=(_leaf("a1", 8, 1), _leaf("a2", 12, 2), _leaf("a3", 6, 3)),
    )


class TestChildSocCore:
    def test_envelope_monotone(self, child_soc):
        child = ChildSocCore(child_soc)
        times = [child.test_time(w) for w in (4, 8, 16)]
        assert times[0] >= times[1] >= times[2]

    def test_envelope_cached(self, child_soc):
        child = ChildSocCore(child_soc)
        child.plan_at(8)
        assert 8 in child._envelope

    def test_rejects_zero_width(self, child_soc):
        with pytest.raises(ValueError):
            ChildSocCore(child_soc).plan_at(0)

    def test_volume_positive(self, child_soc):
        assert ChildSocCore(child_soc).volume(8) > 0


class TestOptimizeHierarchical:
    def test_plan_covers_all_members(self, child_soc):
        members = [ChildSocCore(child_soc), _leaf("top1", 10, 9), _leaf("top2", 6, 10)]
        plan = optimize_hierarchical("parent", members, 16)
        names = {s.config.core_name for s in plan.architecture.scheduled}
        assert names == {"childA", "top1", "top2"}
        assert plan.child_names == ("childA",)

    def test_budget_respected(self, child_soc):
        members = [ChildSocCore(child_soc), _leaf("top1", 10, 9)]
        plan = optimize_hierarchical("parent", members, 12)
        assert sum(plan.tam_widths) <= 12

    def test_makespan_consistent(self, child_soc):
        members = [ChildSocCore(child_soc), _leaf("top1", 10, 9)]
        plan = optimize_hierarchical("parent", members, 12)
        assert plan.test_time == plan.architecture.test_time

    def test_child_slot_matches_envelope(self, child_soc):
        child = ChildSocCore(child_soc)
        members = [child, _leaf("top1", 10, 9)]
        plan = optimize_hierarchical("parent", members, 12)
        slot = next(
            s
            for s in plan.architecture.scheduled
            if s.config.core_name == "childA"
        )
        width = {t.index: t.width for t in plan.architecture.tams}[slot.tam_index]
        assert slot.config.test_time == child.test_time(width)

    def test_flat_equals_hierarchy_of_one_level(self, child_soc):
        """Planning the child standalone = its envelope at full width."""
        child = ChildSocCore(child_soc)
        flat = repro.optimize_soc(child_soc, 10, compression=True)
        assert child.test_time(10) == flat.test_time

    def test_duplicate_names_rejected(self, child_soc):
        with pytest.raises(ValueError, match="duplicate"):
            optimize_hierarchical(
                "p", [ChildSocCore(child_soc), _leaf("childA", 4, 5)], 8
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            optimize_hierarchical("p", [], 8)

    def test_wider_parent_never_slower(self, child_soc):
        members = [ChildSocCore(child_soc), _leaf("top1", 10, 9)]
        narrow = optimize_hierarchical("p", members, 8)
        wide = optimize_hierarchical("p", members, 16)
        assert wide.test_time <= narrow.test_time

    def test_no_compression_mode(self, child_soc):
        members = [
            ChildSocCore(child_soc, compression=False),
            _leaf("top1", 10, 9),
        ]
        plan = optimize_hierarchical("p", members, 12, compression="none")
        for slot in plan.architecture.scheduled:
            if slot.config.core_name != "childA":
                assert not slot.config.uses_compression
