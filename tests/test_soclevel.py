"""Unit tests for the SOC-level ("virtual TAM") decompressor comparator."""

import pytest

from repro.core.architecture import DecompressorPlacement
from repro.core.optimizer import optimize_soc
from repro.core.soclevel import optimize_soc_level_decompressor
from repro.soc.core import Core
from repro.soc.soc import Soc


@pytest.fixture
def sparse_soc() -> Soc:
    cores = tuple(
        Core(
            name=f"c{i}",
            inputs=8,
            outputs=8,
            scan_chain_lengths=tuple([32] * (8 + 4 * i)),
            patterns=50,
            care_bit_density=0.03,
            seed=200 + i,
        )
        for i in range(3)
    )
    return Soc(name="sparse3", cores=cores)


class TestSocLevel:
    def test_rejects_too_few_channels(self, sparse_soc):
        with pytest.raises(ValueError):
            optimize_soc_level_decompressor(sparse_soc, 3)

    def test_placement_and_channels(self, sparse_soc):
        result = optimize_soc_level_decompressor(sparse_soc, 8)
        assert result.architecture.placement is DecompressorPlacement.SOC_LEVEL
        assert result.architecture.ate_channels == 8

    def test_internal_width_addressable(self, sparse_soc):
        with pytest.raises(ValueError, match="addressable"):
            optimize_soc_level_decompressor(sparse_soc, 6, internal_width=100)

    def test_internal_width_positive(self, sparse_soc):
        with pytest.raises(ValueError):
            optimize_soc_level_decompressor(sparse_soc, 8, internal_width=0)

    def test_time_at_least_internal_schedule(self, sparse_soc):
        result = optimize_soc_level_decompressor(sparse_soc, 8, internal_width=24)
        internal = optimize_soc(sparse_soc, 24, compression=False)
        assert result.test_time >= internal.test_time

    def test_wide_internal_tam_reported(self, sparse_soc):
        result = optimize_soc_level_decompressor(sparse_soc, 8)
        # The expanded on-chip TAM is wider than the channel budget.
        assert result.architecture.total_tam_width > 8

    def test_uses_few_channels_effectively(self, sparse_soc):
        # The whole point of [18]: a few channels drive a wide virtual
        # TAM, so the test time beats the no-TDC plan at equal channels.
        soc_level = optimize_soc_level_decompressor(sparse_soc, 8)
        plain = optimize_soc(sparse_soc, 8, compression=False)
        assert soc_level.test_time < plain.test_time

    def test_per_core_wins_at_equal_tam_wires(self, sparse_soc):
        """The paper's Table 2 claim, on a small instance."""
        wires = 24
        per_core = optimize_soc(sparse_soc, wires, compression=True)
        from repro.compression.selective import code_parameters

        _, channels = code_parameters(wires)
        soc_level = optimize_soc_level_decompressor(
            sparse_soc, channels, internal_width=wires
        )
        assert per_core.test_time <= soc_level.test_time

    def test_volume_accounts_code_width(self, sparse_soc):
        result = optimize_soc_level_decompressor(sparse_soc, 8, internal_width=24)
        assert result.test_data_volume > 0
