"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Hermeticity: CLI entry points enable the persistent analysis cache at
# ~/.cache by default; the suite must never write outside its sandbox.
# Tests that exercise the cache pass an explicit cache_dir/tmp_path,
# which overrides this veto (see repro.explore.cache.resolve_cache).
os.environ.setdefault("REPRO_NO_CACHE", "1")

from repro.soc.core import Core
from repro.soc.soc import Soc

# Deterministic property testing: the estimator-accuracy and scheduling
# properties assert quantitative bands, which must not depend on the
# run-to-run randomness of hypothesis' example search.
settings.register_profile(
    "repro",
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def small_core() -> Core:
    """A small sequential core, cheap to analyze exactly."""
    return Core(
        name="small",
        inputs=6,
        outputs=4,
        scan_chain_lengths=(12, 10, 9, 7),
        patterns=20,
        care_bit_density=0.3,
        seed=42,
    )


@pytest.fixture
def comb_core() -> Core:
    """A combinational core (wrapper cells only)."""
    return Core(
        name="comb",
        inputs=16,
        outputs=8,
        patterns=10,
        care_bit_density=0.7,
        seed=7,
    )


@pytest.fixture
def sparse_core() -> Core:
    """A sparse core, the regime where compression pays."""
    return Core(
        name="sparse",
        inputs=10,
        outputs=10,
        scan_chain_lengths=tuple([40] * 12),
        patterns=50,
        care_bit_density=0.03,
        seed=11,
    )


@pytest.fixture
def tiny_soc(small_core, comb_core, sparse_core) -> Soc:
    return Soc(name="tiny", cores=(small_core, comb_core, sparse_core))


@pytest.fixture(autouse=True)
def _fresh_analysis_cache():
    """Keep the module-level DSE cache from leaking between tests."""
    from repro.explore.dse import clear_analysis_cache

    yield
    clear_analysis_cache()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(123)
