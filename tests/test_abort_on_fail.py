"""Tests for abort-on-first-fail expected time and the ratio ordering."""

import itertools

import pytest

import repro
from repro.core.abort_on_fail import (
    expected_improvement,
    expected_session_time,
    reorder_within_tams,
)
from repro.core.architecture import (
    CoreConfig,
    DecompressorPlacement,
    ScheduledCore,
    Tam,
    TestArchitecture,
)


def _serial_arch(order, times):
    """One TAM, cores back-to-back in the given order."""
    slots = []
    clock = 0
    for name in order:
        config = CoreConfig(
            core_name=name,
            uses_compression=False,
            wrapper_chains=1,
            code_width=None,
            test_time=times[name],
            volume=0,
        )
        slots.append(
            ScheduledCore(config=config, tam_index=0, start=clock, end=clock + times[name])
        )
        clock += times[name]
    return TestArchitecture(
        soc_name="s",
        placement=DecompressorPlacement.NONE,
        tams=(Tam(0, 1),),
        scheduled=tuple(slots),
        ate_channels=1,
    )


class TestExpectedSessionTime:
    def test_no_failures_gives_makespan(self):
        arch = _serial_arch(["a", "b"], {"a": 5, "b": 7})
        assert expected_session_time(arch, {}) == pytest.approx(12.0)

    def test_certain_first_failure(self):
        arch = _serial_arch(["a", "b"], {"a": 5, "b": 7})
        assert expected_session_time(arch, {"a": 1.0}) == pytest.approx(5.0)

    def test_two_core_expectation_by_hand(self):
        arch = _serial_arch(["a", "b"], {"a": 4, "b": 6})
        p = {"a": 0.5, "b": 0.5}
        # 0.5*4 + 0.5*0.5*10 + 0.25*10 = 2 + 2.5 + 2.5
        assert expected_session_time(arch, p) == pytest.approx(7.0)

    def test_invalid_probability(self):
        arch = _serial_arch(["a"], {"a": 4})
        with pytest.raises(ValueError):
            expected_session_time(arch, {"a": 1.5})

    def test_parallel_tams(self):
        config = lambda name, t: CoreConfig(  # noqa: E731
            core_name=name,
            uses_compression=False,
            wrapper_chains=1,
            code_width=None,
            test_time=t,
            volume=0,
        )
        arch = TestArchitecture(
            soc_name="s",
            placement=DecompressorPlacement.NONE,
            tams=(Tam(0, 1), Tam(1, 1)),
            scheduled=(
                ScheduledCore(config=config("a", 4), tam_index=0, start=0, end=4),
                ScheduledCore(config=config("b", 10), tam_index=1, start=0, end=10),
            ),
            ate_channels=2,
        )
        # a fails -> abort at 4; else b fails -> abort at 10; else 10.
        value = expected_session_time(arch, {"a": 0.5, "b": 0.5})
        assert value == pytest.approx(0.5 * 4 + 0.5 * 10)


class TestRatioRule:
    def test_single_tam_ratio_rule_is_optimal(self):
        times = {"a": 10, "b": 3, "c": 7, "d": 2}
        probs = {"a": 0.02, "b": 0.4, "c": 0.1, "d": 0.05}
        best = min(
            expected_session_time(_serial_arch(order, times), probs)
            for order in itertools.permutations(times)
        )
        reordered = reorder_within_tams(_serial_arch(list(times), times), probs)
        assert expected_session_time(reordered, probs) == pytest.approx(best)

    def test_reorder_never_hurts_serial(self):
        import numpy as np

        for seed in range(10):
            rng = np.random.default_rng(seed)
            names = [f"c{i}" for i in range(5)]
            times = {n: int(rng.integers(1, 50)) for n in names}
            probs = {n: float(rng.uniform(0, 0.5)) for n in names}
            arch = _serial_arch(names, times)
            before, after, _ = expected_improvement(arch, probs)
            assert after <= before + 1e-9

    def test_makespan_preserved(self):
        times = {"a": 10, "b": 3, "c": 7}
        probs = {"a": 0.5, "b": 0.1, "c": 0.9}
        arch = _serial_arch(list(times), times)
        reordered = reorder_within_tams(arch, probs)
        assert reordered.test_time == arch.test_time

    def test_gappy_tams_left_alone(self):
        config = CoreConfig(
            core_name="a",
            uses_compression=False,
            wrapper_chains=1,
            code_width=None,
            test_time=5,
            volume=0,
        )
        other = CoreConfig(
            core_name="b",
            uses_compression=False,
            wrapper_chains=1,
            code_width=None,
            test_time=5,
            volume=0,
        )
        arch = TestArchitecture(
            soc_name="s",
            placement=DecompressorPlacement.NONE,
            tams=(Tam(0, 1),),
            scheduled=(
                ScheduledCore(config=config, tam_index=0, start=0, end=5),
                ScheduledCore(config=other, tam_index=0, start=9, end=14),
            ),
            ate_channels=1,
        )
        # Idle gap (power/precedence artifact): ordering must not move.
        reordered = reorder_within_tams(arch, {"b": 0.9})
        starts = sorted(s.start for s in reordered.scheduled)
        assert starts == [0, 9]


class TestOnRealPlan:
    def test_d695_plan_improves(self):
        soc = repro.load_design("d695")
        plan = repro.optimize_soc(soc, 16, compression=False)
        probs = {name: 0.02 + 0.01 * i for i, name in enumerate(soc.core_names)}
        before, after, reordered = expected_improvement(plan.architecture, probs)
        assert after <= before
        assert reordered.test_time == plan.test_time
