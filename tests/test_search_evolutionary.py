"""The evolutionary backend and its persistent study store.

The backend is a population search over the joint (partition,
assignment) space: mutation reuses the annealer's move set, crossover
mixes assignment vectors, selection ranks by Pareto front over
``(makespan, volume, peak-power proxy)``.  The key promises tested
here:

* operators always produce *valid* states (budget, min width, TAM
  references);
* results are deterministic in the seed;
* a study saved at generation ``k`` and resumed to ``n`` is
  **bit-identical** to a straight ``n``-generation run -- same
  architecture, same evaluation count;
* the 100+-core synthetic workload (``repro.soc.synthetic``) plans
  end-to-end through the pipeline with verification on, which is the
  regime the backend exists for (the partition space at ``W=128``
  dwarfs ``AUTO_PARTITION_LIMIT``).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.pipeline import RunConfig, plan
from repro.search import (
    Evaluator,
    SearchSpace,
    SearchState,
    Study,
    resolve_search_space,
    run_search,
)
from repro.search.backends.evolutionary import (
    crossover_states,
    mutate_state,
    random_state,
    rank_population,
)
from repro.search.study import STUDY_KIND, STUDY_SCHEMA
from repro.soc.synthetic import synthetic_soc


def _workload(seed: int, n: int = 8):
    rng = np.random.default_rng(seed)
    names = [f"c{i}" for i in range(n)]
    base = {name: int(rng.integers(40, 4000)) for name in names}

    def time_of(name: str, width: int) -> int:
        return -(-base[name] // width) + 3

    return names, time_of


def _valid(state: SearchState, space: SearchSpace, num_cores: int) -> bool:
    return (
        sum(state.widths) == space.total_width
        and 1 <= len(state.widths) <= space.max_parts
        and all(w >= space.min_width for w in state.widths)
        and len(state.assignment) == num_cores
        and all(0 <= t < len(state.widths) for t in state.assignment)
    )


# ----------------------------------------------------------------------
# Operators.
# ----------------------------------------------------------------------


class TestOperators:
    def test_random_state_is_valid(self):
        space = resolve_search_space(10, 17, max_parts=5, min_width=2)
        rng = np.random.default_rng(0)
        for _ in range(200):
            assert _valid(random_state(rng, space, 10), space, 10)

    def test_random_state_min_width_one_tam(self):
        space = resolve_search_space(4, 5, max_parts=1)
        rng = np.random.default_rng(1)
        state = random_state(rng, space, 4)
        assert state.widths == (5,)
        assert state.assignment == (0, 0, 0, 0)

    def test_crossover_keeps_parent_a_widths(self):
        space = resolve_search_space(6, 12, max_parts=4)
        rng = np.random.default_rng(2)
        for _ in range(100):
            a = random_state(rng, space, 6)
            b = random_state(rng, space, 6)
            child = crossover_states(rng, a, b)
            assert child.widths == a.widths
            assert _valid(child, space, 6)
            for i, tam in enumerate(child.assignment):
                assert tam in (a.assignment[i], b.assignment[i])

    def test_mutation_preserves_budget(self):
        space = resolve_search_space(8, 14, max_parts=4, min_width=2)
        rng = np.random.default_rng(3)
        for _ in range(100):
            state = random_state(rng, space, 8)
            mutated = mutate_state(rng, state, space, 2)
            assert _valid(mutated, space, 8)

    def test_mutation_in_cramped_space_terminates(self):
        """max_parts=1 disables every move; the try budget bounds it."""
        space = resolve_search_space(4, 4, max_parts=1)
        rng = np.random.default_rng(4)
        state = SearchState(widths=(4,), assignment=(0, 0, 0, 0))
        assert mutate_state(rng, state, space, 3) == state

    def test_rank_population_front_order(self):
        fitness = [
            (10.0, 5.0, 1.0),  # dominated by the two below
            (8.0, 4.0, 1.0),
            (9.0, 1.0, 0.5),   # trades volume for makespan: same front
            (8.0, 4.0, 1.0),   # duplicate of index 1
        ]
        order, front_size = rank_population(fitness)
        assert front_size == 3
        assert order[:3] == [1, 3, 2]  # by makespan then index
        assert order[3] == 0


# ----------------------------------------------------------------------
# Backend behavior.
# ----------------------------------------------------------------------


class TestEvolutionaryBackend:
    def test_deterministic_in_seed(self):
        names, time_of = _workload(0)
        opts = dict(generations=6, population=8, seed=42)
        a = run_search(
            names, 12, time_of, strategy="evolutionary", options=opts
        )
        b = run_search(
            names, 12, time_of, strategy="evolutionary", options=opts
        )
        assert a == b

    def test_result_is_canonical_and_feasible(self):
        names, time_of = _workload(1)
        result = run_search(
            names, 12, time_of,
            strategy="evolutionary",
            options=dict(generations=5, population=8, seed=0),
        )
        assert result.strategy == "evolutionary"
        assert sum(result.widths) == 12
        assert all(
            a >= b for a, b in zip(result.widths, result.widths[1:])
        )
        assert result.makespan == Evaluator(names, time_of).makespan_of(
            result.widths, result.outcome.assignment
        )

    def test_multi_objective_lookups_are_used(self):
        """With volume/power wired, fitness vectors are 3-D (the ranks
        differ from pure makespan ordering at least sometimes)."""
        names, time_of = _workload(2)
        result = run_search(
            names, 12, time_of,
            strategy="evolutionary",
            options=dict(generations=4, population=8, seed=0),
            volume_of=lambda name, width: width * 100,
            power_of=lambda name: float(len(name)),
        )
        assert result.strategy == "evolutionary"
        assert sum(result.widths) == 12

    def test_zero_generations_returns_initial_best(self):
        names, time_of = _workload(3)
        result = run_search(
            names, 12, time_of,
            strategy="evolutionary",
            options=dict(generations=0, population=6, seed=0),
        )
        # The single-TAM seed member is always in the initial population,
        # so the best-of-init is at most its makespan.
        single = Evaluator(names, time_of).makespan_of(
            (12,), (0,) * len(names)
        )
        assert result.makespan <= single
        assert result.partitions_evaluated == 6

    @pytest.mark.parametrize(
        "opts, match",
        [
            (dict(population=1), "population"),
            (dict(generations=-1), "generations"),
            (dict(crossover=1.5), "crossover"),
            (dict(mutations=0), "mutations"),
            (dict(tournament=0), "tournament"),
            (dict(elite=-1), "elite"),
            (dict(resume=True), "study path"),
        ],
    )
    def test_option_validation(self, opts, match):
        names, time_of = _workload(4)
        with pytest.raises(ValueError, match=match):
            run_search(
                names, 12, time_of, strategy="evolutionary", options=opts
            )


# ----------------------------------------------------------------------
# The study store and --resume.
# ----------------------------------------------------------------------


class TestStudyResume:
    def test_resume_is_bit_identical_to_straight_run(self, tmp_path):
        names, time_of = _workload(5)
        study = str(tmp_path / "study.json")
        base = dict(population=8, seed=9)
        straight = run_search(
            names, 12, time_of,
            strategy="evolutionary",
            options=dict(generations=8, **base),
        )
        partial = run_search(
            names, 12, time_of,
            strategy="evolutionary",
            options=dict(generations=3, study=study, **base),
        )
        resumed = run_search(
            names, 12, time_of,
            strategy="evolutionary",
            options=dict(generations=8, study=study, resume=True, **base),
        )
        assert resumed == straight
        assert partial.partitions_evaluated < straight.partitions_evaluated

    def test_resume_past_end_is_a_no_op(self, tmp_path):
        names, time_of = _workload(5)
        study = str(tmp_path / "study.json")
        opts = dict(population=6, seed=1, study=study)
        done = run_search(
            names, 12, time_of,
            strategy="evolutionary", options=dict(generations=4, **opts),
        )
        again = run_search(
            names, 12, time_of,
            strategy="evolutionary",
            options=dict(generations=4, resume=True, **opts),
        )
        assert again == done

    def test_study_file_is_schema_stamped(self, tmp_path):
        names, time_of = _workload(6)
        study = tmp_path / "study.json"
        run_search(
            names, 12, time_of,
            strategy="evolutionary",
            options=dict(
                generations=2, population=6, seed=0, study=str(study)
            ),
        )
        payload = json.loads(study.read_text())
        assert payload["kind"] == STUDY_KIND
        assert payload["schema"] == STUDY_SCHEMA
        assert payload["generation"] == 2
        assert payload["best"] is not None
        assert len(payload["history"]) == 2
        assert payload["population"]

    def test_mismatched_study_refuses_resume(self, tmp_path):
        names, time_of = _workload(6)
        study = str(tmp_path / "study.json")
        run_search(
            names, 12, time_of,
            strategy="evolutionary",
            options=dict(generations=2, population=6, seed=0, study=study),
        )
        with pytest.raises(ValueError, match="refusing to resume"):
            run_search(
                names, 12, time_of,
                strategy="evolutionary",
                options=dict(
                    generations=4, population=6, seed=1,
                    study=study, resume=True,
                ),
            )

    def test_load_rejects_foreign_json(self, tmp_path):
        bogus = tmp_path / "not_a_study.json"
        bogus.write_text(json.dumps({"kind": "bench-hotpath"}))
        with pytest.raises(ValueError, match="not a search study"):
            Study.load(bogus)
        wrong_schema = tmp_path / "wrong_schema.json"
        wrong_schema.write_text(
            json.dumps({"kind": STUDY_KIND, "schema": 999})
        )
        with pytest.raises(ValueError, match="schema"):
            Study.load(wrong_schema)


# ----------------------------------------------------------------------
# End-to-end: the 100+-core synthetic workload.
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def synth120():
    return synthetic_soc(120)


class TestManyCoreEndToEnd:
    def test_plans_and_verifies_at_scale(self, synth120):
        """A 120-core SOC, non-enumerable space, verification on."""
        result = plan(
            synth120,
            64,
            RunConfig(
                strategy="evolutionary",
                search_opts=(
                    ("generations", "3"),
                    ("population", "6"),
                    ("seed", "0"),
                ),
                verify=True,
            ),
        )
        assert result.strategy == "evolutionary"
        assert result.soc_name == "synth120"
        assert sum(result.tam_widths) <= 64
        assert len(result.architecture.scheduled) == 120

    def test_pipeline_resume_bit_identical(self, synth120, tmp_path):
        study = str(tmp_path / "synth120.json")
        base = (("population", "6"), ("seed", "3"))
        straight = plan(
            synth120,
            64,
            RunConfig(
                strategy="evolutionary",
                search_opts=base + (("generations", "4"),),
            ),
        )
        plan(
            synth120,
            64,
            RunConfig(
                strategy="evolutionary",
                search_opts=base
                + (("generations", "2"), ("study", study)),
            ),
        )
        resumed = plan(
            synth120,
            64,
            RunConfig(
                strategy="evolutionary",
                search_opts=base
                + (
                    ("generations", "4"),
                    ("study", study),
                    ("resume", "true"),
                ),
            ),
        )
        assert resumed.architecture == straight.architecture
        assert resumed.partitions_evaluated == straight.partitions_evaluated
        assert resumed.test_time == straight.test_time


# ----------------------------------------------------------------------
# CLI surface: --strategy evolutionary, --search-opt, --study/--resume.
# ----------------------------------------------------------------------


class TestCli:
    def test_plan_evolutionary_with_study(self, tmp_path, capsys):
        study = tmp_path / "cli_study.json"
        argv = [
            "plan", "d695", "--width", "12",
            "--strategy", "evolutionary",
            "--search-opt", "generations=2",
            "--search-opt", "population=6",
            "--study", str(study),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "(evolutionary)" in out
        assert study.exists()
        assert main(argv + ["--resume"]) == 0

    def test_malformed_search_opt_is_a_usage_error(self, capsys):
        code = main(
            [
                "plan", "d695", "--width", "12",
                "--strategy", "anneal", "--search-opt", "iterations",
            ]
        )
        assert code == 2
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_unknown_search_opt_is_a_usage_error(self, capsys):
        code = main(
            [
                "plan", "d695", "--width", "12",
                "--strategy", "anneal", "--search-opt", "bogus=1",
            ]
        )
        assert code == 2
        assert "known options" in capsys.readouterr().err
