"""Tests for the simulated-annealing architecture search."""

import pytest

from repro.core.anneal import anneal_search
from repro.core.partition import iter_partitions, search_partitions
from repro.core.scheduler import schedule_cores


def divisible(work):
    return lambda name, width: -(-work[name] // width)


WORK = {"a": 300, "b": 240, "c": 150, "d": 80, "e": 40}


class TestAnnealSearch:
    def test_validation(self):
        with pytest.raises(ValueError):
            anneal_search([], 8, lambda n, w: 1)
        with pytest.raises(ValueError):
            anneal_search(["a"], 1, lambda n, w: 1, min_width=2)
        with pytest.raises(ValueError):
            anneal_search(["a"], 8, lambda n, w: 1, cooling=1.0)

    def test_deterministic_in_seed(self):
        time_of = divisible(WORK)
        a = anneal_search(list(WORK), 10, time_of, seed=3, iterations=800)
        b = anneal_search(list(WORK), 10, time_of, seed=3, iterations=800)
        assert a.outcome == b.outcome

    def test_widths_respect_budget_and_floor(self):
        result = anneal_search(
            list(WORK), 10, divisible(WORK), min_width=2, iterations=800
        )
        assert sum(result.widths) <= 10
        assert all(w >= 2 for w in result.widths)
        assert all(a >= b for a, b in zip(result.widths, result.widths[1:]))

    def test_makespan_matches_assignment(self):
        time_of = divisible(WORK)
        result = anneal_search(list(WORK), 10, time_of, iterations=1000)
        loads = [0] * len(result.widths)
        for name, tam in zip(WORK, result.outcome.assignment):
            loads[tam] += time_of(name, result.widths[tam])
        assert max(loads) == result.makespan

    def test_close_to_exhaustive(self):
        time_of = divisible(WORK)
        exact = search_partitions(
            list(WORK), 10, time_of, strategy="exhaustive"
        )
        sa = anneal_search(list(WORK), 10, time_of, iterations=4000, seed=1)
        assert sa.makespan <= exact.makespan * 1.10

    def test_never_worse_than_serial(self):
        time_of = divisible(WORK)
        serial = schedule_cores(list(WORK), [10], time_of).makespan
        sa = anneal_search(list(WORK), 10, time_of, iterations=500)
        assert sa.makespan <= serial

    def test_strategy_dispatch(self):
        result = search_partitions(
            list(WORK), 10, divisible(WORK), strategy="anneal"
        )
        assert result.strategy == "anneal"

    def test_single_core(self):
        result = anneal_search(["a"], 6, divisible({"a": 60}), iterations=200)
        # Best for one core is the full width.
        assert result.makespan == 10
