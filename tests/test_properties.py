"""Property-based tests (hypothesis) for the core invariants.

The invariants pinned here are the load-bearing ones:

* the selective codec is lossless on care bits for any slice content;
* the vectorized cost kernel always agrees with the real encoder;
* wrapper design conserves scanned elements and never beats the
  longest-scan-chain lower bound;
* partition enumeration yields exactly the integer partitions;
* list scheduling produces consistent makespans.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.decompressor import expand_stream, slices_compatible
from repro.compression.golomb import GolombCode
from repro.compression.fdr import FdrCode
from repro.compression.selective import (
    code_parameters,
    encode_slice,
    encode_slices,
    slice_costs,
)
from repro.core.partition import iter_partitions
from repro.core.scheduler import schedule_cores
from repro.soc.core import Core, varied_chain_lengths
from repro.wrapper.design import design_wrapper

slice_strategy = st.lists(
    st.sampled_from([0, 1, 2]), min_size=1, max_size=40
).map(lambda xs: np.asarray(xs, dtype=np.int8))

slices_strategy = st.integers(min_value=1, max_value=24).flatmap(
    lambda m: st.lists(
        st.lists(st.sampled_from([0, 1, 2]), min_size=m, max_size=m),
        min_size=1,
        max_size=12,
    ).map(lambda rows: np.asarray(rows, dtype=np.int8))
)


class TestCodecProperties:
    @given(slices_strategy)
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_is_x_compatible(self, slices):
        stream = encode_slices(slices)
        decoded = expand_stream(stream)
        assert slices_compatible(slices, decoded)

    @given(slices_strategy)
    @settings(max_examples=150, deadline=None)
    def test_cost_kernel_matches_encoder(self, slices):
        vector = slice_costs(slices)
        direct = [len(encode_slice(row)) for row in slices]
        assert vector.tolist() == direct

    @given(slice_strategy)
    @settings(max_examples=150, deadline=None)
    def test_cost_bounds(self, row):
        cost = len(encode_slice(row))
        m = row.size
        k, _ = code_parameters(m)
        # At least the END codeword; at most END + 2 words per group.
        assert 1 <= cost <= 1 + 2 * (-(-m // k))

    @given(slice_strategy)
    @settings(max_examples=100, deadline=None)
    def test_x_only_positions_are_free(self, row):
        base_cost = len(encode_slice(row))
        widened = np.concatenate([row, np.full(5, 2, dtype=np.int8)])
        if code_parameters(widened.size)[0] == code_parameters(row.size)[0]:
            # Same group size: appending X bits can only add empty groups.
            assert len(encode_slice(widened)) <= base_cost + 1


class TestRunLengthProperties:
    @given(
        st.lists(st.sampled_from([0, 1]), min_size=1, max_size=300),
        st.sampled_from([2, 4, 8, 16]),
    )
    @settings(max_examples=100, deadline=None)
    def test_golomb_roundtrip(self, bits, b):
        data = np.asarray(bits, dtype=np.int8)
        code = GolombCode(b)
        assert np.array_equal(code.decode(code.encode(data), data.size), data)

    @given(st.lists(st.sampled_from([0, 1]), min_size=1, max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_fdr_roundtrip(self, bits):
        data = np.asarray(bits, dtype=np.int8)
        code = FdrCode()
        assert np.array_equal(code.decode(code.encode(data), data.size), data)

    @given(
        st.lists(st.sampled_from([0, 1]), min_size=1, max_size=300),
        st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=100, deadline=None)
    def test_lengths_match(self, bits, b):
        data = np.asarray(bits, dtype=np.int8)
        assert GolombCode(b).encoded_length(data) == len(GolombCode(b).encode(data))
        assert FdrCode().encoded_length(data) == len(FdrCode().encode(data))


core_strategy = st.builds(
    lambda chains, inputs, outputs, patterns, seed: Core(
        name=f"h{seed}",
        inputs=inputs,
        outputs=outputs,
        scan_chain_lengths=tuple(chains),
        patterns=patterns,
        care_bit_density=0.2,
        seed=seed,
    ),
    chains=st.lists(st.integers(1, 40), min_size=0, max_size=10),
    inputs=st.integers(0, 30),
    outputs=st.integers(0, 30),
    patterns=st.integers(1, 20),
    seed=st.integers(0, 10_000),
)


class TestWrapperProperties:
    @given(core_strategy, st.integers(1, 16))
    @settings(max_examples=120, deadline=None)
    def test_conservation_and_bounds(self, core, m):
        design = design_wrapper(core, m)
        assigned = sorted(c for chain in design.chains_scan for c in chain)
        assert assigned == list(range(core.num_scan_chains))
        assert sum(design.chains_inputs) == core.wrapper_input_cells
        assert sum(design.chains_outputs) == core.wrapper_output_cells
        longest = max(core.scan_chain_lengths, default=0)
        assert design.scan_in_max >= longest
        assert design.scan_in_max >= -(-core.scan_in_bits // m)
        assert sum(design.scan_in_lengths) == core.scan_in_bits

    @given(core_strategy, st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_position_matrix_is_a_bijection(self, core, m):
        design = design_wrapper(core, m)
        matrix = design.scan_in_position_matrix()
        real = matrix[matrix >= 0]
        assert sorted(real.tolist()) == list(range(core.scan_in_bits))

    @given(
        st.integers(1, 500),
        st.integers(1, 20),
        st.floats(0.0, 0.5),
        st.integers(0, 100),
    )
    @settings(max_examples=100, deadline=None)
    def test_varied_chains_conserve_cells(self, total, chains, spread, seed):
        if total < chains:
            return
        lengths = varied_chain_lengths(total, chains, spread=spread, seed=seed)
        assert sum(lengths) == total
        assert all(x >= 1 for x in lengths)


class TestPartitionProperties:
    @given(st.integers(1, 30), st.integers(1, 6), st.integers(1, 4))
    @settings(max_examples=80, deadline=None)
    def test_partitions_are_valid_and_unique(self, total, parts, min_width):
        if total < min_width:
            assert list(iter_partitions(total, parts, min_width)) == []
            return
        seen = set()
        for widths in iter_partitions(total, parts, min_width):
            assert sum(widths) == total
            assert len(widths) <= parts
            assert all(x >= min_width for x in widths)
            assert all(a >= b for a, b in zip(widths, widths[1:]))
            assert widths not in seen
            seen.add(widths)
        assert (total,) in seen


class TestSchedulerProperties:
    @given(
        st.dictionaries(
            st.text(alphabet="abcdefgh", min_size=1, max_size=3),
            st.integers(1, 100),
            min_size=1,
            max_size=8,
        ),
        st.lists(st.integers(1, 8), min_size=1, max_size=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_makespan_consistency(self, times, widths):
        names = list(times)
        outcome = schedule_cores(names, widths, lambda n, w: times[n])
        loads = [0] * len(widths)
        for name, tam in zip(names, outcome.assignment):
            loads[tam] += times[name]
        assert outcome.makespan == max(loads)
        # Makespan can never beat the longest single test or the average.
        assert outcome.makespan >= max(times.values())
