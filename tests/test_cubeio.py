"""Tests for cube import/export and external-cube analysis."""

import numpy as np
import pytest

from repro.compression.cubeio import (
    format_patterns,
    load_cubes_npz,
    parse_patterns,
    read_patterns,
    save_cubes_npz,
    write_patterns,
)
from repro.compression.cubes import TestCubeSet, X, generate_cubes
from repro.explore.dse import CoreAnalysis, analysis_for


class TestNpzRoundTrip:
    def test_roundtrip(self, small_core, tmp_path):
        cubes = generate_cubes(small_core)
        path = tmp_path / "cubes.npz"
        save_cubes_npz(cubes, path)
        loaded = load_cubes_npz(path)
        assert loaded.core == small_core
        assert np.array_equal(loaded.bits, cubes.bits)

    def test_combinational_roundtrip(self, comb_core, tmp_path):
        cubes = generate_cubes(comb_core)
        path = tmp_path / "c.npz"
        save_cubes_npz(cubes, path)
        assert load_cubes_npz(path).core == comb_core


class TestPatternText:
    def test_roundtrip(self, small_core, tmp_path):
        cubes = generate_cubes(small_core)
        path = tmp_path / "pats.txt"
        write_patterns(cubes, path)
        loaded = read_patterns(small_core, path)
        assert np.array_equal(loaded.bits, cubes.bits)

    def test_format_uses_x_for_dont_care(self, small_core):
        cubes = generate_cubes(small_core)
        text = format_patterns(cubes)
        assert "X" in text and "#" in text

    def test_accepts_dash_and_lowercase(self, small_core):
        cubes = generate_cubes(small_core)
        text = format_patterns(cubes).replace("X", "-")
        loaded = parse_patterns(small_core, text)
        assert np.array_equal(loaded.bits, cubes.bits)

    def test_rejects_bad_character(self, small_core):
        text = "2" * small_core.scan_in_bits
        with pytest.raises(ValueError, match="invalid pattern character"):
            parse_patterns(small_core, text)

    def test_rejects_wrong_width(self, small_core):
        text = "01"
        with pytest.raises(ValueError, match="bits"):
            parse_patterns(small_core, text)

    def test_rejects_wrong_count(self, small_core):
        one_line = "0" * small_core.scan_in_bits
        with pytest.raises(ValueError, match="declares"):
            parse_patterns(small_core, one_line)


class TestExternalCubeAnalysis:
    def test_injected_cubes_used(self, small_core):
        """A hand-made all-X cube set must compress to the floor."""
        bits = np.full(
            (small_core.patterns, small_core.scan_in_bits), X, dtype=np.int8
        )
        empty = TestCubeSet(core=small_core, bits=bits)
        with_data = CoreAnalysis(small_core, cubes=generate_cubes(small_core))
        with_empty = CoreAnalysis(small_core, cubes=empty)
        m = 4
        assert (
            with_empty.compressed_point(m).codewords
            < with_data.compressed_point(m).codewords
        )
        # All-X: exactly one END codeword per slice.
        design_si = with_empty.compressed_point(m).scan_in_max
        assert (
            with_empty.compressed_point(m).codewords
            == small_core.patterns * design_si
        )

    def test_foreign_cubes_rejected(self, small_core, comb_core):
        with pytest.raises(ValueError, match="different core"):
            CoreAnalysis(small_core, cubes=generate_cubes(comb_core))

    def test_estimate_mode_conflict(self, small_core):
        with pytest.raises(ValueError, match="estimate"):
            CoreAnalysis(
                small_core, mode="estimate", cubes=generate_cubes(small_core)
            )

    def test_cache_keyed_by_cube_identity(self, small_core):
        cubes = generate_cubes(small_core)
        a = analysis_for(small_core, cubes=cubes)
        b = analysis_for(small_core, cubes=cubes)
        c = analysis_for(small_core)
        assert a is b
        assert a is not c

    def test_default_analysis_matches_generated_cubes(self, small_core):
        """Injecting the generator's own output changes nothing."""
        default = analysis_for(small_core)
        injected = CoreAnalysis(small_core, cubes=generate_cubes(small_core))
        assert (
            default.compressed_point(5).codewords
            == injected.compressed_point(5).codewords
        )
