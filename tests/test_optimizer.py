"""Integration-grade unit tests for the co-optimizer."""

import pytest

from repro.core.architecture import DecompressorPlacement
from repro.core.optimizer import optimize_per_tam, optimize_soc
from repro.soc.core import Core
from repro.soc.soc import Soc


@pytest.fixture
def sparse_soc() -> Soc:
    """Three sparse cores: the compression-friendly regime."""
    cores = tuple(
        Core(
            name=f"c{i}",
            inputs=8,
            outputs=8,
            scan_chain_lengths=tuple([30 + 4 * i] * (10 + 2 * i)),
            patterns=40 + 10 * i,
            care_bit_density=0.03,
            seed=100 + i,
        )
        for i in range(3)
    )
    return Soc(name="sparse3", cores=cores)


class TestOptimizeSoc:
    def test_rejects_zero_width(self, tiny_soc):
        with pytest.raises(ValueError):
            optimize_soc(tiny_soc, 0)

    def test_rejects_bad_compression(self, tiny_soc):
        with pytest.raises(ValueError, match="compression"):
            optimize_soc(tiny_soc, 8, compression="maybe")

    def test_schedule_covers_every_core(self, tiny_soc):
        result = optimize_soc(tiny_soc, 8, compression=False)
        scheduled = {s.config.core_name for s in result.architecture.scheduled}
        assert scheduled == set(tiny_soc.core_names)

    def test_width_budget_respected(self, tiny_soc):
        for width in (4, 9, 16):
            result = optimize_soc(tiny_soc, width, compression=False)
            assert sum(result.tam_widths) <= width

    def test_time_non_increasing_in_width(self, sparse_soc):
        times = [
            optimize_soc(sparse_soc, w, compression=True).test_time
            for w in (6, 12, 24)
        ]
        assert times[0] >= times[1] >= times[2]

    def test_compression_helps_sparse_soc(self, sparse_soc):
        plain = optimize_soc(sparse_soc, 12, compression=False)
        packed = optimize_soc(sparse_soc, 12, compression=True)
        assert packed.test_time < plain.test_time
        assert packed.test_data_volume < plain.test_data_volume

    def test_auto_never_worse_than_either_pure_mode(self, tiny_soc):
        plain = optimize_soc(tiny_soc, 10, compression=False)
        packed = optimize_soc(tiny_soc, 10, compression=True)
        auto = optimize_soc(tiny_soc, 10, compression="auto")
        assert auto.test_time <= min(plain.test_time, packed.test_time)

    def test_placement_flags(self, sparse_soc):
        plain = optimize_soc(sparse_soc, 8, compression=False)
        packed = optimize_soc(sparse_soc, 8, compression=True)
        assert plain.architecture.placement is DecompressorPlacement.NONE
        assert packed.architecture.placement is DecompressorPlacement.PER_CORE

    def test_compressed_configs_record_decompressor(self, sparse_soc):
        result = optimize_soc(sparse_soc, 12, compression=True)
        for slot in result.architecture.scheduled:
            config = slot.config
            if config.uses_compression:
                assert config.code_width is not None
                assert config.code_width <= max(result.tam_widths)
                assert config.wrapper_chains > config.code_width

    def test_narrow_tam_falls_back_to_uncompressed(self, sparse_soc):
        # Width 2 cannot host a w >= 3 code anywhere.
        result = optimize_soc(sparse_soc, 2, compression=True)
        assert all(
            not s.config.uses_compression for s in result.architecture.scheduled
        )

    def test_cpu_time_recorded(self, sparse_soc):
        result = optimize_soc(sparse_soc, 8, compression=True)
        assert result.cpu_seconds > 0

    def test_strategy_forwarded(self, sparse_soc):
        greedy = optimize_soc(sparse_soc, 8, compression=False, strategy="greedy")
        assert greedy.strategy == "greedy"

    def test_max_tams_respected(self, sparse_soc):
        result = optimize_soc(sparse_soc, 12, compression=False, max_tams=2)
        assert len(result.tam_widths) <= 2

    def test_makespan_equals_architecture_time(self, sparse_soc):
        result = optimize_soc(sparse_soc, 10, compression=True)
        finishes = result.architecture.tam_finish_times().values()
        assert result.test_time == max(finishes)


class TestOptimizePerTam:
    def test_rejects_too_few_channels(self, sparse_soc):
        with pytest.raises(ValueError):
            optimize_per_tam(sparse_soc, 2)

    def test_placement(self, sparse_soc):
        result = optimize_per_tam(sparse_soc, 9)
        assert result.architecture.placement is DecompressorPlacement.PER_TAM

    def test_cores_on_same_tam_share_width(self, sparse_soc):
        result = optimize_per_tam(sparse_soc, 9)
        width_of = {t.index: t.width for t in result.architecture.tams}
        for slot in result.architecture.scheduled:
            config = slot.config
            useful = sparse_soc.core(config.core_name).max_useful_wrapper_chains
            expected = min(width_of[slot.tam_index], useful)
            assert config.wrapper_chains == expected

    def test_expanded_tams_wider_than_channels(self, sparse_soc):
        result = optimize_per_tam(sparse_soc, 9)
        assert result.architecture.total_tam_width > 9

    def test_per_core_never_slower_than_per_tam(self, sparse_soc):
        per_core = optimize_soc(sparse_soc, 9, compression=True)
        per_tam = optimize_per_tam(sparse_soc, 9)
        # Per-core decompression strictly generalizes the per-TAM choice
        # given identical partitioning freedom; allow small slack for the
        # different partition spaces (per-TAM parts must be >= 3).
        assert per_core.test_time <= per_tam.test_time * 1.05
