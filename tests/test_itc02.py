"""Unit tests for the ITC'02-style .soc parser/writer."""

import pytest

from repro.soc.benchmarks import load_benchmark
from repro.soc.itc02 import (
    SocFormatError,
    format_soc,
    parse_soc,
    parse_soc_file,
    write_soc_file,
)

MINIMAL = """
SocName demo
Module 1 alpha
  Inputs 4
  Outputs 3
  Patterns 7
End
"""

FULL = """
# a comment
SocName demo2
TotalModules 2
SocGates 1234
SocLatches 99

Module 1 alpha
  Inputs 4
  Outputs 3
  Bidirs 1
  ScanChains 2 : 10 8
  Patterns 7
  CareBitDensity 0.25
  OneFraction 0.4
  Seed 77
  Gates 500
End
Module 2 beta  # trailing comment
  Inputs 2
  Outputs 2
  Patterns 3
End
"""


class TestParsing:
    def test_minimal(self):
        soc = parse_soc(MINIMAL)
        assert soc.name == "demo"
        assert soc.core_names == ("alpha",)
        core = soc.core("alpha")
        assert (core.inputs, core.outputs, core.patterns) == (4, 3, 7)

    def test_full_fields(self):
        soc = parse_soc(FULL)
        assert soc.gates == 1234
        assert soc.latches == 99
        alpha = soc.core("alpha")
        assert alpha.bidirs == 1
        assert alpha.scan_chain_lengths == (10, 8)
        assert alpha.care_bit_density == 0.25
        assert alpha.one_fraction == 0.4
        assert alpha.seed == 77
        assert alpha.gates == 500

    def test_comments_and_blanks_ignored(self):
        soc = parse_soc(FULL)
        assert len(soc) == 2

    def test_module_without_end_is_closed_at_eof(self):
        soc = parse_soc("SocName x\nModule 1 a\n  Inputs 1\n  Outputs 1\n  Patterns 2\n")
        assert soc.core("a").patterns == 2

    def test_missing_soc_name(self):
        with pytest.raises(SocFormatError, match="SocName"):
            parse_soc("Module 1 a\nEnd\n")

    def test_end_without_module(self):
        with pytest.raises(SocFormatError, match="End without"):
            parse_soc("SocName x\nEnd\n")

    def test_unknown_module_field(self):
        with pytest.raises(SocFormatError, match="unknown module field"):
            parse_soc("SocName x\nModule 1 a\n  Bogus 3\nEnd\n")

    def test_unknown_toplevel_directive(self):
        with pytest.raises(SocFormatError, match="unexpected"):
            parse_soc("SocName x\nBogus 1\n")

    def test_scanchains_count_mismatch(self):
        bad = "SocName x\nModule 1 a\n  ScanChains 3 : 1 2\nEnd\n"
        with pytest.raises(SocFormatError, match="declares 3"):
            parse_soc(bad)

    def test_scanchains_missing_colon(self):
        bad = "SocName x\nModule 1 a\n  ScanChains 2 1 2\nEnd\n"
        with pytest.raises(SocFormatError, match="count"):
            parse_soc(bad)

    def test_invalid_module_values_report_line(self):
        bad = "SocName x\nModule 1 a\n  Inputs -4\nEnd\n"
        with pytest.raises(SocFormatError, match="invalid module"):
            parse_soc(bad)

    def test_module_without_name_gets_index_name(self):
        soc = parse_soc("SocName x\nModule 3\n  Inputs 1\n  Outputs 1\nEnd\n")
        assert soc.core_names == ("module3",)


class TestRoundTrip:
    def test_roundtrip_preserves_everything(self):
        original = parse_soc(FULL)
        again = parse_soc(format_soc(original))
        assert again == original

    def test_roundtrip_d695(self):
        d695 = load_benchmark("d695")
        again = parse_soc(format_soc(d695))
        assert again == d695

    def test_file_roundtrip(self, tmp_path):
        d695 = load_benchmark("d695")
        path = tmp_path / "d695.soc"
        write_soc_file(d695, path)
        assert parse_soc_file(path) == d695
