"""Unit tests for the Core data model and chain-length helpers."""

import pytest

from repro.soc.core import (
    Core,
    balanced_chain_lengths,
    total_scan_elements,
    validate_cores,
    varied_chain_lengths,
)


class TestCoreValidation:
    def test_minimal_core(self):
        core = Core(name="c", inputs=1, outputs=1)
        assert core.scan_cells == 0
        assert core.is_combinational

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            Core(name="", inputs=1, outputs=1)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError, match="inputs"):
            Core(name="c", inputs=-1, outputs=1)

    def test_negative_outputs_rejected(self):
        with pytest.raises(ValueError, match="outputs"):
            Core(name="c", inputs=1, outputs=-2)

    def test_zero_patterns_rejected(self):
        with pytest.raises(ValueError, match="patterns"):
            Core(name="c", inputs=1, outputs=1, patterns=0)

    def test_density_bounds(self):
        with pytest.raises(ValueError, match="care_bit_density"):
            Core(name="c", inputs=1, outputs=1, care_bit_density=0.0)
        with pytest.raises(ValueError, match="care_bit_density"):
            Core(name="c", inputs=1, outputs=1, care_bit_density=1.5)

    def test_one_fraction_bounds(self):
        with pytest.raises(ValueError, match="one_fraction"):
            Core(name="c", inputs=1, outputs=1, one_fraction=-0.1)

    def test_zero_length_chain_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Core(name="c", inputs=1, outputs=1, scan_chain_lengths=(4, 0))

    def test_chain_lengths_coerced_to_ints(self):
        core = Core(name="c", inputs=1, outputs=1, scan_chain_lengths=[3, 4])
        assert core.scan_chain_lengths == (3, 4)
        assert isinstance(core.scan_chain_lengths, tuple)


class TestCoreDerived:
    def test_scan_cells(self, small_core):
        assert small_core.scan_cells == 12 + 10 + 9 + 7

    def test_wrapper_cells_with_bidirs(self):
        core = Core(name="c", inputs=4, outputs=3, bidirs=2)
        assert core.wrapper_input_cells == 6
        assert core.wrapper_output_cells == 5

    def test_scan_in_out_bits(self, small_core):
        assert small_core.scan_in_bits == 38 + 6
        assert small_core.scan_out_bits == 38 + 4

    def test_max_useful_wrapper_chains(self, small_core):
        # 4 scan chains + max(6 inputs, 4 outputs) = 10
        assert small_core.max_useful_wrapper_chains == 10

    def test_max_useful_at_least_one(self):
        core = Core(name="c", inputs=0, outputs=0, patterns=1)
        assert core.max_useful_wrapper_chains == 1

    def test_test_data_volume(self, small_core):
        assert small_core.test_data_volume == 20 * 44

    def test_with_patterns(self, small_core):
        other = small_core.with_patterns(5)
        assert other.patterns == 5
        assert other.name == small_core.name
        assert small_core.patterns == 20  # original untouched

    def test_with_seed(self, small_core):
        assert small_core.with_seed(99).seed == 99

    def test_describe_mentions_name_and_chains(self, small_core):
        text = small_core.describe()
        assert "small" in text
        assert "4 scan chains" in text

    def test_cores_are_hashable(self, small_core):
        assert hash(small_core) == hash(small_core)
        assert {small_core: 1}[small_core] == 1


class TestBalancedChains:
    def test_even_split(self):
        assert balanced_chain_lengths(12, 4) == (3, 3, 3, 3)

    def test_remainder_goes_first(self):
        assert balanced_chain_lengths(14, 4) == (4, 4, 3, 3)

    def test_sum_preserved(self):
        for total in (17, 100, 638):
            for chains in (1, 3, 16):
                assert sum(balanced_chain_lengths(total, chains)) == total

    def test_zero_chains_with_cells_rejected(self):
        with pytest.raises(ValueError):
            balanced_chain_lengths(5, 0)

    def test_zero_everything(self):
        assert balanced_chain_lengths(0, 0) == ()

    def test_more_chains_than_cells_rejected(self):
        with pytest.raises(ValueError):
            balanced_chain_lengths(3, 5)


class TestVariedChains:
    def test_sum_preserved(self):
        lengths = varied_chain_lengths(1000, 13, spread=0.2, seed=3)
        assert sum(lengths) == 1000
        assert len(lengths) == 13

    def test_all_positive(self):
        lengths = varied_chain_lengths(50, 20, spread=0.5, seed=1)
        assert all(x >= 1 for x in lengths)

    def test_deterministic(self):
        a = varied_chain_lengths(997, 10, spread=0.15, seed=5)
        b = varied_chain_lengths(997, 10, spread=0.15, seed=5)
        assert a == b

    def test_seed_changes_result(self):
        a = varied_chain_lengths(997, 10, spread=0.15, seed=5)
        b = varied_chain_lengths(997, 10, spread=0.15, seed=6)
        assert a != b

    def test_zero_spread_is_balanced(self):
        assert varied_chain_lengths(100, 4, spread=0.0, seed=9) == (25, 25, 25, 25)

    def test_spread_bounds(self):
        with pytest.raises(ValueError, match="spread"):
            varied_chain_lengths(100, 4, spread=1.0, seed=0)

    def test_actually_varies(self):
        lengths = varied_chain_lengths(10_000, 40, spread=0.2, seed=2)
        assert len(set(lengths)) > 1


class TestHelpers:
    def test_total_scan_elements(self, small_core, comb_core):
        assert total_scan_elements([small_core, comb_core]) == 38

    def test_validate_cores_rejects_duplicates(self, small_core):
        with pytest.raises(ValueError, match="duplicate"):
            validate_cores([small_core, small_core])

    def test_validate_cores_accepts_unique(self, small_core, comb_core):
        validate_cores([small_core, comb_core])
