"""Tests for the flexible-width rectangle-packing backend (repro.pack)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.pack import (
    HEURISTICS,
    CoreRectangles,
    PackedPlan,
    PackedRect,
    RectCandidate,
    Skyline,
    core_rectangles,
    pack_rectangles,
    packed_architecture,
)
from repro.pack.packer import area_lower_bound
from repro.pack.rects import pareto_candidates
from repro.core.architecture import (
    CoreConfig,
    DecompressorPlacement,
    ScheduledCore,
    Tam,
    TestArchitecture,
)
from repro.pipeline import RunConfig, pipeline_for, plan
from repro.reporting.export import result_from_json, result_to_json
from repro.soc.benchmarks import load_benchmark
from repro.soc.synthetic import synthetic_soc
from repro.verify import verify_architecture, verify_packed, verify_plan


def family(name: str, *shapes: tuple[int, int]) -> CoreRectangles:
    return CoreRectangles(
        name=name,
        candidates=tuple(RectCandidate(width=w, time=t) for w, t in shapes),
    )


def check_geometry(plan_: PackedPlan) -> None:
    """Brute-force: pairwise disjoint rectangles inside the strip."""
    for rect in plan_.rects:
        assert 0 <= rect.x
        assert rect.x + rect.width <= plan_.width_budget
        assert 0 <= rect.start <= rect.end
    for i, a in enumerate(plan_.rects):
        for b in plan_.rects[i + 1 :]:
            in_time = a.start < b.end and b.start < a.end
            in_x = a.x < b.x + b.width and b.x < a.x + a.width
            assert not (in_time and in_x), f"{a} overlaps {b}"


# ---------------------------------------------------------------------------
# Rectangle families.
# ---------------------------------------------------------------------------


class TestRectangles:
    def test_candidate_validation(self):
        with pytest.raises(ValueError):
            RectCandidate(width=0, time=5)
        with pytest.raises(ValueError):
            RectCandidate(width=1, time=-1)

    def test_family_requires_pareto_order(self):
        with pytest.raises(ValueError):
            family("c", (1, 10), (2, 10))  # time does not improve
        with pytest.raises(ValueError):
            family("c", (2, 10), (1, 20))  # width not ascending
        with pytest.raises(ValueError):
            CoreRectangles(name="c", candidates=())

    def test_family_extremes(self):
        f = family("c", (1, 30), (2, 16), (4, 9))
        assert f.narrowest == RectCandidate(1, 30)
        assert f.widest == RectCandidate(4, 9)

    def test_pareto_drops_dominated_widths(self):
        corners = pareto_candidates(
            [(1, 30), (2, 30), (3, 16), (4, 16), (5, 9)]
        )
        assert corners == (
            RectCandidate(1, 30),
            RectCandidate(3, 16),
            RectCandidate(5, 9),
        )

    def test_core_rectangles_from_time_fn(self):
        times = {1: 40, 2: 20, 3: 20, 4: 10}
        fams = core_rectangles(["a"], lambda n, w: times[w], 4)
        assert fams[0].candidates == (
            RectCandidate(1, 40),
            RectCandidate(2, 20),
            RectCandidate(4, 10),
        )

    def test_max_widths_thins_but_keeps_extremes(self):
        fams = core_rectangles(
            ["a"], lambda n, w: 100 - w, 50, max_widths=3
        )
        widths = [c.width for c in fams[0].candidates]
        assert len(widths) == 3
        assert widths[0] == 1 and widths[-1] == 50

    def test_max_widths_below_two_rejected(self):
        with pytest.raises(ValueError):
            core_rectangles(["a"], lambda n, w: 100 - w, 8, max_widths=1)


# ---------------------------------------------------------------------------
# Skyline.
# ---------------------------------------------------------------------------


class TestSkyline:
    def test_starts_flat(self):
        sky = Skyline(8)
        assert sky.makespan == 0
        assert sky.support(0, 8) == 0

    def test_place_and_support(self):
        sky = Skyline(8)
        sky.place(0, 4, 10)
        assert sky.support(0, 4) == 10
        assert sky.support(4, 4) == 0
        assert sky.support(2, 4) == 10  # straddles the step
        assert sky.makespan == 10

    def test_positions_are_segment_starts_plus_flush(self):
        sky = Skyline(8)
        sky.place(0, 3, 10)
        assert list(sky.positions(2)) == [(0, 10), (3, 0), (6, 0)]

    def test_positions_too_wide_is_empty(self):
        assert list(Skyline(4).positions(5)) == []

    def test_place_merges_equal_heights(self):
        sky = Skyline(8)
        sky.place(0, 4, 10)
        sky.place(4, 4, 10)
        assert sky.segments == (type(sky.segments[0])(0, 8, 10),)

    def test_place_below_support_rejected(self):
        sky = Skyline(8)
        sky.place(0, 4, 10)
        with pytest.raises(ValueError):
            sky.place(2, 2, 5)

    def test_out_of_strip_rejected(self):
        with pytest.raises(ValueError):
            Skyline(4).support(2, 4)


# ---------------------------------------------------------------------------
# Packer.
# ---------------------------------------------------------------------------


class TestPacker:
    FAMILIES = (
        family("alpha", (1, 60), (2, 32), (4, 18)),
        family("bravo", (1, 40), (2, 22), (3, 16)),
        family("charlie", (1, 24), (2, 13)),
        family("delta", (1, 12), (2, 7)),
    )

    @pytest.mark.parametrize("heuristic", HEURISTICS + ("auto",))
    def test_geometry_and_budget(self, heuristic):
        plan_ = pack_rectangles("toy", self.FAMILIES, 4, heuristic=heuristic)
        check_geometry(plan_)
        assert {r.name for r in plan_.rects} == {
            f.name for f in self.FAMILIES
        }
        assert plan_.placements_evaluated > 0
        assert plan_.makespan >= area_lower_bound(self.FAMILIES, 4)

    def test_deterministic(self):
        a = pack_rectangles("toy", self.FAMILIES, 4, heuristic="bottom-left")
        b = pack_rectangles("toy", self.FAMILIES, 4, heuristic="bottom-left")
        assert a == b

    def test_auto_picks_no_worse_than_either(self):
        auto = pack_rectangles("toy", self.FAMILIES, 4, heuristic="auto")
        singles = [
            pack_rectangles("toy", self.FAMILIES, 4, heuristic=h)
            for h in HEURISTICS
        ]
        assert auto.makespan == min(p.makespan for p in singles)
        assert auto.placements_evaluated == sum(
            p.placements_evaluated for p in singles
        )

    def test_single_core_sits_at_origin(self):
        plan_ = pack_rectangles(
            "one", (family("solo", (1, 20), (4, 6)),), 4
        )
        rect = plan_.rects[0]
        assert (rect.x, rect.start) == (0, 0)
        assert plan_.makespan == 6  # picks the fastest shape

    def test_unknown_heuristic_rejected(self):
        with pytest.raises(ValueError, match="unknown packing heuristic"):
            pack_rectangles("toy", self.FAMILIES, 4, heuristic="best-fit")

    def test_too_wide_family_rejected(self):
        with pytest.raises(ValueError, match="only 2 wires"):
            pack_rectangles("toy", self.FAMILIES, 2)

    def test_area_lower_bound_uses_min_area_shape(self):
        fams = (family("a", (1, 10), (2, 4)),)  # min area 8 (2x4)
        assert area_lower_bound(fams, 2) == 4

    def test_utilization_bounded(self):
        plan_ = pack_rectangles("toy", self.FAMILIES, 4)
        assert 0.0 < plan_.utilization <= 1.0


# ---------------------------------------------------------------------------
# Materialization.
# ---------------------------------------------------------------------------


def config_for(name: str, width: int, time: int) -> CoreConfig:
    return CoreConfig(
        core_name=name,
        uses_compression=False,
        wrapper_chains=width,
        code_width=None,
        test_time=time,
        volume=width * time,
    )


class TestMaterialization:
    def test_one_tam_per_rectangle(self):
        times = {("a", 2): 10, ("b", 1): 8}
        plan_ = PackedPlan(
            soc_name="toy",
            width_budget=3,
            heuristic="bottom-left",
            rects=(
                PackedRect(name="a", x=0, width=2, start=0, end=10),
                PackedRect(name="b", x=2, width=1, start=0, end=8),
            ),
        )
        arch = packed_architecture(
            plan_,
            lambda n, w: config_for(n, w, times[(n, w)]),
            placement=DecompressorPlacement.NONE,
        )
        assert [t.width for t in arch.tams] == [2, 1]
        assert arch.ate_channels == 3
        assert arch.test_time == 10
        slots = {s.config.core_name: (s.start, s.end) for s in arch.scheduled}
        assert slots == {"a": (0, 10), "b": (0, 8)}

    def test_height_mismatch_rejected(self):
        plan_ = PackedPlan(
            soc_name="toy",
            width_budget=2,
            heuristic="bottom-left",
            rects=(PackedRect(name="a", x=0, width=2, start=0, end=10),),
        )
        with pytest.raises(ValueError, match="cycles tall"):
            packed_architecture(
                plan_,
                lambda n, w: config_for(n, w, 11),
                placement=DecompressorPlacement.NONE,
            )


# ---------------------------------------------------------------------------
# Packed verification.
# ---------------------------------------------------------------------------


class TestVerifyPacked:
    def times(self, name: str, width: int) -> int:
        table = {
            ("a", 2): 10,
            ("b", 1): 8,
            ("c", 2): 5,
        }
        return table[(name, width)]

    def plan(self, **overrides) -> PackedPlan:
        fields = dict(
            soc_name="toy",
            width_budget=3,
            heuristic="bottom-left",
            rects=(
                PackedRect(name="a", x=0, width=2, start=0, end=10),
                PackedRect(name="b", x=2, width=1, start=0, end=8),
                PackedRect(name="c", x=1, width=2, start=10, end=15),
            ),
        )
        fields.update(overrides)
        return PackedPlan(**fields)

    def test_clean_plan_passes(self):
        report = verify_packed(self.plan(), ["a", "b", "c"], self.times)
        assert report.ok, report.summary()
        assert "rect-overlap" in report.checks
        assert "channel-budget" in report.checks

    def test_overlap_detected(self):
        bad = self.plan(
            rects=(
                PackedRect(name="a", x=0, width=2, start=0, end=10),
                PackedRect(name="b", x=1, width=1, start=5, end=13),
                PackedRect(name="c", x=1, width=2, start=13, end=18),
            )
        )
        report = verify_packed(bad, ["a", "b", "c"], self.times)
        assert any(v.code == "rect-overlap" for v in report.violations)

    def test_out_of_strip_detected(self):
        bad = self.plan(
            rects=(
                PackedRect(name="a", x=2, width=2, start=0, end=10),
                PackedRect(name="b", x=0, width=1, start=0, end=8),
                PackedRect(name="c", x=0, width=2, start=10, end=15),
            )
        )
        report = verify_packed(bad, ["a", "b", "c"], self.times)
        assert any(v.code == "rect-bounds" for v in report.violations)

    def test_wrong_height_detected(self):
        bad = self.plan(
            rects=(
                PackedRect(name="a", x=0, width=2, start=0, end=11),
                PackedRect(name="b", x=2, width=1, start=0, end=8),
                PackedRect(name="c", x=1, width=2, start=11, end=16),
            )
        )
        report = verify_packed(bad, ["a", "b", "c"], self.times)
        assert any(v.code == "width-support" for v in report.violations)

    def test_missing_core_detected(self):
        report = verify_packed(self.plan(), ["a", "b", "c", "d"], self.times)
        assert any(v.code == "core-membership" for v in report.violations)

    def test_packed_width_budget_is_instantaneous(self):
        """Sum of TAM widths over budget is fine if time-shared."""
        arch = TestArchitecture(
            soc_name="toy",
            placement=DecompressorPlacement.NONE,
            tams=(Tam(index=0, width=2), Tam(index=1, width=2)),
            scheduled=(
                ScheduledCore(
                    config=config_for("a", 2, 10),
                    tam_index=0,
                    start=0,
                    end=10,
                ),
                ScheduledCore(
                    config=config_for("b", 2, 5),
                    tam_index=1,
                    start=10,
                    end=15,
                ),
            ),
            ate_channels=2,
        )
        assert not verify_architecture(arch).ok  # fixed rule: 4 > 2
        assert verify_architecture(arch, packed=True).ok

    def test_packed_width_budget_catches_concurrent_overflow(self):
        arch = TestArchitecture(
            soc_name="toy",
            placement=DecompressorPlacement.NONE,
            tams=(Tam(index=0, width=2), Tam(index=1, width=2)),
            scheduled=(
                ScheduledCore(
                    config=config_for("a", 2, 10),
                    tam_index=0,
                    start=0,
                    end=10,
                ),
                ScheduledCore(
                    config=config_for("b", 2, 5),
                    tam_index=1,
                    start=5,
                    end=10,
                ),
            ),
            ate_channels=3,
        )
        report = verify_architecture(arch, packed=True)
        assert any(v.code == "width-budget" for v in report.violations)


# ---------------------------------------------------------------------------
# Pipeline integration.
# ---------------------------------------------------------------------------


PACKING = dict(architecture="packing", schedule="packing")


class TestPackingPipeline:
    def test_end_to_end_verified_plan(self):
        soc = synthetic_soc(6)
        config = RunConfig(**PACKING, verify=True)
        result = plan(soc, 12, config)
        assert result.strategy.startswith("packing-")
        assert result.partitions_evaluated > 0
        report = verify_plan(result, soc, config=config)
        assert report.ok, report.summary()

    def test_heuristic_opt_selects_rule(self):
        soc = synthetic_soc(4)
        for heuristic in HEURISTICS:
            config = RunConfig(
                **PACKING, pack_opts=(("heuristic", heuristic),)
            )
            result = plan(soc, 8, config)
            assert result.strategy == f"packing-{heuristic}"

    def test_unknown_pack_opt_rejected(self):
        soc = synthetic_soc(4)
        config = RunConfig(**PACKING, pack_opts=(("shape", "oval"),))
        with pytest.raises(ValueError, match="unknown --pack-opt"):
            plan(soc, 8, config)

    def test_unknown_heuristic_rejected(self):
        soc = synthetic_soc(4)
        config = RunConfig(**PACKING, pack_opts=(("heuristic", "nope"),))
        with pytest.raises(ValueError, match="unknown packing heuristic"):
            plan(soc, 8, config)

    def test_packing_stages_must_pair(self):
        with pytest.raises(ValueError, match="selected together"):
            pipeline_for(RunConfig(architecture="packing"))
        with pytest.raises(ValueError, match="selected together"):
            pipeline_for(RunConfig(schedule="packing"))

    def test_explicit_nonpacking_stage_selection_still_works(self):
        flavor = pipeline_for(
            RunConfig(architecture="greedy", schedule="list")
        )
        assert flavor.name == "greedy+list"

    def test_export_roundtrip_keeps_packed_strategy(self):
        soc = synthetic_soc(4)
        config = RunConfig(**PACKING)
        result = plan(soc, 8, config)
        back = result_from_json(result_to_json(result))
        assert back.strategy == result.strategy
        # The serve gate path: verify the re-imported plan (packed
        # width rule engages off the strategy prefix alone).
        report = verify_plan(back, soc, config=config)
        assert report.ok, report.summary()

    def test_config_roundtrip_keeps_stage_selection(self):
        config = RunConfig(**PACKING, pack_opts=(("heuristic", "diagonal"),))
        assert RunConfig.from_dict(config.to_dict()) == config

    def test_benchmark_socs_pack_and_verify(self):
        # d695 is the cheapest real benchmark; the full six-design
        # sweep lives in the packing benchmark (scripts/bench_packing).
        soc = load_benchmark("d695")
        config = RunConfig(**PACKING, verify=True)
        result = plan(soc, 16, config)
        assert verify_plan(result, soc, config=config).ok


# ---------------------------------------------------------------------------
# Serve gate.
# ---------------------------------------------------------------------------


class TestPackedServeGate:
    """The service path covers packed plans end to end.

    ``execute_plan`` is the worker-side entry the planning service
    runs for every submission: config rebuilt from the wire form,
    the pipeline routed by it, and the result re-proven by the
    unconditional ``verify_plan`` gate before serialization.
    """

    def _payload(self) -> dict:
        config = RunConfig(**PACKING, use_cache=False)
        return {"design": "synth6", "width": 8, "config": config.to_dict()}

    def test_worker_plans_and_verifies_packed(self):
        from repro.serve.worker import execute_plan

        exported = json.loads(execute_plan(self._payload()))
        assert exported["optimizer"]["strategy"].startswith("packing-")

    def test_gate_rejects_corrupted_packed_plan(self):
        from repro.serve.worker import InvalidPlan, execute_plan

        payload = self._payload()
        payload["fault"] = {"corrupt_plan": "overlap"}
        with pytest.raises(InvalidPlan, match="overlap"):
            execute_plan(payload)


# ---------------------------------------------------------------------------
# CLI.
# ---------------------------------------------------------------------------


class TestPackingCli:
    def test_plan_with_packing_flags(self, capsys):
        code = main(
            [
                "plan",
                "d695",
                "--width",
                "16",
                "--architecture",
                "packing",
                "--schedule",
                "packing",
                "--pack-opt",
                "heuristic=bottom-left",
                "--verify",
                "--no-cache",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "packing-bottom-left" in out

    def test_mismatched_stage_flags_are_usage_error(self, capsys):
        code = main(
            [
                "plan",
                "d695",
                "--width",
                "16",
                "--architecture",
                "packing",
                "--no-cache",
            ]
        )
        assert code == 2
        assert "selected together" in capsys.readouterr().err

    def test_malformed_pack_opt_is_usage_error(self, capsys):
        code = main(
            [
                "plan",
                "d695",
                "--width",
                "16",
                "--architecture",
                "packing",
                "--schedule",
                "packing",
                "--pack-opt",
                "heuristic",
                "--no-cache",
            ]
        )
        assert code == 2
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_verify_subcommand_plans_packed(self, capsys):
        code = main(
            [
                "verify",
                "d695",
                "--width",
                "16",
                "--architecture",
                "packing",
                "--schedule",
                "packing",
                "--no-cache",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ok" in out

    def test_verify_exported_packed_plan(self, tmp_path, capsys):
        soc = synthetic_soc(4)
        result = plan(soc, 8, RunConfig(**PACKING))
        path = tmp_path / "packed.json"
        path.write_text(result_to_json(result), encoding="utf-8")
        code = main(["verify", "--plan", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "ok" in out
        # Sanity: the file really records the packed strategy.
        stored = json.loads(path.read_text())["optimizer"]["strategy"]
        assert stored.startswith("packing")
