"""Tests for per-core compression-technique selection."""

import pytest

from repro.core.optimizer import optimize_soc
from repro.explore.dse import CoreAnalysis, analysis_for
from repro.explore.selection import TechniqueSelector, select_technique
from repro.soc.core import Core
from repro.soc.soc import Soc


class TestSelectTechnique:
    def test_picks_minimum_time(self, sparse_core):
        analysis = analysis_for(sparse_core)
        choice = select_technique(analysis, 8)
        plain = analysis.uncompressed_point(8).test_time
        selective = analysis.best_compressed_for_tam(8).test_time
        assert choice.test_time <= min(plain, selective)
        assert choice.technique in ("none", "selective", "dictionary")

    def test_dense_core_keeps_none_or_dictionary(self, comb_core):
        analysis = analysis_for(comb_core)
        choice = select_technique(analysis, 4)
        # 70% care density: selective encoding must not win.
        assert choice.technique != "selective"

    def test_estimate_mode_skips_dictionary(self):
        big = Core(
            name="big",
            inputs=10,
            outputs=10,
            scan_chain_lengths=(500,) * 100,
            patterns=2000,
            care_bit_density=0.02,
        )
        analysis = CoreAnalysis(big)  # auto -> estimate
        selector = TechniqueSelector(analysis)
        assert selector.dictionary_choice(8) is None
        assert selector.select(8).technique in ("none", "selective")

    def test_selector_caches_choices(self, sparse_core):
        selector = TechniqueSelector(analysis_for(sparse_core))
        assert selector.select(8) is selector.select(8)

    def test_dictionary_fields_populated(self, sparse_core):
        selector = TechniqueSelector(analysis_for(sparse_core))
        choice = selector.dictionary_choice(8)
        assert choice is not None
        assert choice.index_bits in (4, 8)
        assert 0.0 <= choice.hit_rate <= 1.0
        assert choice.code_width == 8

    def test_choice_consistent_with_config_rules(self, sparse_core):
        choice = select_technique(analysis_for(sparse_core), 6)
        if choice.technique == "none":
            assert choice.code_width is None
        else:
            assert choice.code_width is not None


class TestSelectModeOptimizer:
    @pytest.fixture
    def mixed_soc(self, sparse_core, comb_core, small_core):
        return Soc(name="mixed", cores=(sparse_core, comb_core, small_core))

    def test_select_never_worse_than_auto(self, mixed_soc):
        auto = optimize_soc(mixed_soc, 10, compression="auto")
        select = optimize_soc(mixed_soc, 10, compression="select")
        assert select.test_time <= auto.test_time

    def test_techniques_recorded(self, mixed_soc):
        result = optimize_soc(mixed_soc, 10, compression="select")
        techniques = {
            s.config.core_name: s.config.technique
            for s in result.architecture.scheduled
        }
        assert set(techniques) == set(mixed_soc.core_names)
        assert all(
            t in ("none", "selective", "dictionary") for t in techniques.values()
        )

    def test_default_technique_resolution(self):
        from repro.core.architecture import CoreConfig

        plain = CoreConfig(
            core_name="a",
            uses_compression=False,
            wrapper_chains=2,
            code_width=None,
            test_time=1,
            volume=1,
        )
        assert plain.technique == "none"
        packed = CoreConfig(
            core_name="a",
            uses_compression=True,
            wrapper_chains=8,
            code_width=5,
            test_time=1,
            volume=1,
        )
        assert packed.technique == "selective"

    def test_technique_validation(self):
        from repro.core.architecture import CoreConfig

        with pytest.raises(ValueError, match="unknown technique"):
            CoreConfig(
                core_name="a",
                uses_compression=True,
                wrapper_chains=8,
                code_width=5,
                test_time=1,
                volume=1,
                technique="huffman",
            )
        with pytest.raises(ValueError, match="requires uses_compression"):
            CoreConfig(
                core_name="a",
                uses_compression=False,
                wrapper_chains=8,
                code_width=None,
                test_time=1,
                volume=1,
                technique="dictionary",
            )
