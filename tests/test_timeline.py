"""Unit tests for the constrained (power + precedence) scheduler."""

import pytest

from repro.core.scheduler import schedule_cores
from repro.core.timeline import (
    PrecedenceError,
    _peak_power,
    PlacedInterval,
    schedule_constrained,
)


def flat_time(times):
    return lambda name, width: times[name]


class TestUnconstrainedEquivalence:
    def test_reduces_to_paper_scheduler(self):
        times = {"a": 9, "b": 7, "c": 5, "d": 3, "e": 2}
        widths = [2, 1]
        baseline = schedule_cores(list(times), widths, flat_time(times))
        constrained = schedule_constrained(list(times), widths, flat_time(times))
        assert constrained.makespan == baseline.makespan
        assert constrained.tam_idle_cycles == 0

    def test_back_to_back_per_tam(self):
        times = {"a": 4, "b": 3, "c": 2}
        schedule = schedule_constrained(list(times), [1], flat_time(times))
        intervals = sorted(schedule.intervals, key=lambda iv: iv.start)
        assert intervals[0].start == 0
        for first, second in zip(intervals, intervals[1:]):
            assert second.start == first.end


class TestValidation:
    def test_requires_tam(self):
        with pytest.raises(ValueError):
            schedule_constrained(["a"], [], flat_time({"a": 1}))

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            schedule_constrained(["a"], [0], flat_time({"a": 1}))

    def test_unknown_precedence_core(self):
        with pytest.raises(PrecedenceError, match="unknown"):
            schedule_constrained(
                ["a"], [1], flat_time({"a": 1}), precedence=[("a", "ghost")]
            )

    def test_self_precedence(self):
        with pytest.raises(PrecedenceError, match="itself"):
            schedule_constrained(
                ["a"], [1], flat_time({"a": 1}), precedence=[("a", "a")]
            )

    def test_cyclic_precedence(self):
        times = {"a": 1, "b": 1}
        with pytest.raises(PrecedenceError, match="cyclic"):
            schedule_constrained(
                list(times),
                [1],
                flat_time(times),
                precedence=[("a", "b"), ("b", "a")],
            )

    def test_infeasible_power(self):
        with pytest.raises(ValueError, match="exceeds the power budget"):
            schedule_constrained(
                ["a"],
                [1],
                flat_time({"a": 1}),
                power_of={"a": 10.0},
                power_budget=5.0,
            )


class TestPrecedence:
    def test_successor_waits(self):
        times = {"a": 10, "b": 2}
        schedule = schedule_constrained(
            list(times), [1, 1], flat_time(times), precedence=[("a", "b")]
        )
        a = schedule.interval_for("a")
        b = schedule.interval_for("b")
        assert b.start >= a.end

    def test_chain_of_three(self):
        times = {"a": 3, "b": 3, "c": 3}
        schedule = schedule_constrained(
            list(times),
            [3, 3, 3],
            flat_time(times),
            precedence=[("a", "b"), ("b", "c")],
        )
        assert schedule.makespan == 9

    def test_precedence_can_insert_idle(self):
        times = {"a": 10, "b": 2, "c": 1}
        schedule = schedule_constrained(
            list(times), [1], flat_time(times), precedence=[("a", "c")]
        )
        # Serial single TAM: idle only if ordering forces it; here the
        # list order (longest first) already satisfies a before c.
        assert schedule.makespan >= 13


class TestPowerBudget:
    def test_budget_serializes_heavy_tests(self):
        times = {"a": 10, "b": 10}
        power = {"a": 6.0, "b": 6.0}
        parallel = schedule_constrained(
            list(times), [1, 1], flat_time(times), power_of=power,
            power_budget=20.0,
        )
        assert parallel.makespan == 10  # runs concurrently
        limited = schedule_constrained(
            list(times), [1, 1], flat_time(times), power_of=power,
            power_budget=10.0,
        )
        assert limited.makespan == 20  # forced serial
        assert limited.peak_power <= 10.0

    def test_idle_cycles_property(self):
        from repro.core.timeline import ConstrainedSchedule

        schedule = ConstrainedSchedule(
            widths=(1,),
            intervals=(
                PlacedInterval("a", 0, 0, 5, 0.0),
                PlacedInterval("b", 0, 8, 12, 0.0),
            ),
            makespan=12,
            peak_power=0.0,
        )
        assert schedule.tam_idle_cycles == 3

    def test_peak_power_tracked(self):
        times = {"a": 5, "b": 5, "c": 5}
        power = {"a": 2.0, "b": 3.0, "c": 4.0}
        schedule = schedule_constrained(
            list(times), [1, 1, 1], flat_time(times), power_of=power,
            power_budget=100.0,
        )
        assert schedule.peak_power == pytest.approx(9.0)

    def test_budget_respected_in_profile(self):
        times = {f"c{i}": 4 + i for i in range(6)}
        power = {name: 3.0 for name in times}
        budget = 7.0
        schedule = schedule_constrained(
            list(times), [1, 1, 1], flat_time(times), power_of=power,
            power_budget=budget,
        )
        assert schedule.peak_power <= budget + 1e-9

    def test_tighter_budget_never_faster(self):
        times = {f"c{i}": 6 for i in range(5)}
        power = {name: 2.0 for name in times}
        spans = []
        for budget in (10.0, 6.0, 4.0, 2.0):
            schedule = schedule_constrained(
                list(times), [1] * 5, flat_time(times), power_of=power,
                power_budget=budget,
            )
            spans.append(schedule.makespan)
        assert all(b >= a for a, b in zip(spans, spans[1:]))


class TestPeakPowerHelper:
    def test_overlapping_intervals(self):
        placed = [
            PlacedInterval("a", 0, 0, 10, 2.0),
            PlacedInterval("b", 1, 5, 15, 3.0),
            PlacedInterval("c", 2, 20, 25, 9.0),
        ]
        assert _peak_power(placed) == pytest.approx(9.0)

    def test_empty(self):
        assert _peak_power([]) == 0.0
