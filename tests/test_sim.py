"""Tests for the cycle-accurate architecture simulator."""

import numpy as np
import pytest

import repro
from repro.core.architecture import CoreConfig
from repro.compression.cubes import generate_cubes
from repro.sim.components import CoreSimulator, SimulationError, WrapperChainRegister
from repro.sim.simulator import simulate_architecture
from repro.soc.core import Core
from repro.soc.soc import Soc
from repro.wrapper.design import design_wrapper
from repro.wrapper.timing import scan_test_time


class TestWrapperChainRegister:
    def test_shift_order(self):
        reg = WrapperChainRegister(3)
        for bit in (1, 0, 1, 1):
            reg.shift_in(bit)
        # Last three bits shifted: 0, 1, 1 -> in shift order [0, 1, 1].
        assert reg.loaded_sequence() == [0, 1, 1]

    def test_contents_most_recent_first(self):
        reg = WrapperChainRegister(2)
        reg.shift_in(1)
        reg.shift_in(0)
        assert reg.contents == [0, 1]

    def test_zero_length(self):
        reg = WrapperChainRegister(0)
        reg.shift_in(1)
        assert reg.contents == []
        assert reg.loaded_sequence() == []

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            WrapperChainRegister(-1)


def _uncompressed_config(core: Core, m: int) -> CoreConfig:
    design = design_wrapper(core, m)
    return CoreConfig(
        core_name=core.name,
        uses_compression=False,
        wrapper_chains=m,
        code_width=None,
        test_time=scan_test_time(core.patterns, design.scan_in_max, design.scan_out_max),
        volume=0,
    )


class TestCoreSimulatorUncompressed:
    def test_cycles_match_analytic_model(self, small_core):
        for m in (1, 2, 4, 7):
            config = _uncompressed_config(small_core, m)
            sim = CoreSimulator(small_core, config, generate_cubes(small_core))
            result = sim.run()
            assert result.cycles == config.test_time, f"m={m}"

    def test_stimulus_verified(self, small_core):
        config = _uncompressed_config(small_core, 3)
        sim = CoreSimulator(small_core, config, generate_cubes(small_core))
        result = sim.run()
        assert result.patterns_applied == small_core.patterns
        assert result.bits_streamed > 0

    def test_detects_corrupted_cubes(self, small_core):
        """Feeding one core's config another core's data must blow up."""
        cubes = generate_cubes(small_core)
        bad = np.asarray(cubes.bits).copy()
        care = np.argwhere(bad != 2)
        q, b = care[0]
        bad[q, b] = 1 - bad[q, b]
        sim = CoreSimulator(
            small_core,
            _uncompressed_config(small_core, 3),
            generate_cubes(small_core),
        )
        # Sabotage the slices the simulator will drive, keeping the cube
        # reference intact: simulate by patching the slice array.
        sim._slices = sim._slices.copy()
        j, h = 0, 0
        # Find a care position in the slice view and flip it.
        found = False
        for j in range(sim._slices.shape[1]):
            for h in range(sim._slices.shape[2]):
                if sim._slices[0, j, h] != 2:
                    sim._slices[0, j, h] = 1 - sim._slices[0, j, h]
                    found = True
                    break
            if found:
                break
        assert found
        with pytest.raises(SimulationError, match="cube wants"):
            sim.run()

    def test_combinational_core(self, comb_core):
        config = _uncompressed_config(comb_core, 4)
        result = CoreSimulator(comb_core, config, generate_cubes(comb_core)).run()
        assert result.cycles == config.test_time


class TestCoreSimulatorCompressed:
    def test_matches_planned_time(self, sparse_core):
        soc = Soc(name="one", cores=(sparse_core,))
        plan = repro.optimize_soc(soc, 8, compression=True)
        config = plan.architecture.config_for(sparse_core.name)
        assert config.uses_compression
        result = CoreSimulator(
            sparse_core, config, generate_cubes(sparse_core)
        ).run()
        assert result.cycles == config.test_time
        assert result.codewords_consumed > 0
        assert result.bits_streamed == result.codewords_consumed * config.code_width

    def test_rejects_foreign_cubes(self, sparse_core, small_core):
        config = _uncompressed_config(sparse_core, 2)
        with pytest.raises(ValueError, match="different core"):
            CoreSimulator(sparse_core, config, generate_cubes(small_core))


class TestSimulateArchitecture:
    @pytest.fixture
    def mixed_soc(self, small_core, sparse_core):
        return Soc(name="mix", cores=(small_core, sparse_core))

    def test_no_tdc_plan_replays_exactly(self, mixed_soc):
        plan = repro.optimize_soc(mixed_soc, 8, compression=False)
        report = simulate_architecture(mixed_soc, plan.architecture)
        assert report.total_cycles == plan.test_time
        assert report.patterns_applied == mixed_soc.total_patterns

    def test_compressed_plan_replays_exactly(self, mixed_soc):
        plan = repro.optimize_soc(mixed_soc, 8, compression="auto")
        report = simulate_architecture(mixed_soc, plan.architecture)
        assert report.total_cycles == plan.test_time

    def test_d695_subset_replays(self):
        soc = repro.load_design("d695").subset(["s5378", "s9234", "s838"])
        plan = repro.optimize_soc(soc, 8, compression="auto")
        report = simulate_architecture(soc, plan.architecture)
        assert report.total_cycles == plan.test_time

    def test_per_tam_plan_replays_exactly(self, mixed_soc):
        plan = repro.optimize_per_tam(mixed_soc, 8)
        report = simulate_architecture(mixed_soc, plan.architecture)
        assert report.total_cycles == plan.test_time

    def test_soc_level_architecture_rejected(self, mixed_soc):
        from repro.core.soclevel import optimize_soc_level_decompressor

        plan = optimize_soc_level_decompressor(mixed_soc, 8)
        with pytest.raises(ValueError, match="soc-level"):
            simulate_architecture(mixed_soc, plan.architecture)

    def test_report_totals(self, mixed_soc):
        plan = repro.optimize_soc(mixed_soc, 8, compression=True)
        report = simulate_architecture(mixed_soc, plan.architecture)
        assert report.bits_streamed > 0
        assert report.soc_name == "mix"
