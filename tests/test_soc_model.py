"""Unit tests for the Soc container."""

import pytest

from repro.soc.core import Core
from repro.soc.soc import Soc


class TestSocBasics:
    def test_len_and_iter(self, tiny_soc):
        assert len(tiny_soc) == 3
        assert [c.name for c in tiny_soc] == ["small", "comb", "sparse"]

    def test_core_lookup(self, tiny_soc):
        assert tiny_soc.core("comb").inputs == 16

    def test_core_lookup_missing(self, tiny_soc):
        with pytest.raises(KeyError, match="nothere"):
            tiny_soc.core("nothere")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            Soc(name="")

    def test_duplicate_cores_rejected(self, small_core):
        with pytest.raises(ValueError, match="duplicate"):
            Soc(name="s", cores=(small_core, small_core))

    def test_core_names(self, tiny_soc):
        assert tiny_soc.core_names == ("small", "comb", "sparse")


class TestSocDerived:
    def test_total_scan_cells(self, tiny_soc):
        assert tiny_soc.total_scan_cells == 38 + 0 + 480

    def test_total_patterns(self, tiny_soc):
        assert tiny_soc.total_patterns == 20 + 10 + 50

    def test_initial_volume(self, tiny_soc):
        expected = sum(c.test_data_volume for c in tiny_soc.cores)
        assert tiny_soc.initial_test_data_volume == expected

    def test_max_useful_tam_width(self, tiny_soc):
        expected = max(c.max_useful_wrapper_chains for c in tiny_soc.cores)
        assert tiny_soc.max_useful_tam_width == expected

    def test_max_useful_empty_soc(self):
        assert Soc(name="empty").max_useful_tam_width == 1


class TestSocManipulation:
    def test_with_cores(self, tiny_soc, small_core):
        smaller = tiny_soc.with_cores([small_core])
        assert len(smaller) == 1
        assert len(tiny_soc) == 3

    def test_subset_preserves_order(self, tiny_soc):
        sub = tiny_soc.subset(["sparse", "small"])
        assert sub.core_names == ("small", "sparse")

    def test_subset_missing_raises(self, tiny_soc):
        with pytest.raises(KeyError, match="ghost"):
            tiny_soc.subset(["ghost"])

    def test_describe_lists_every_core(self, tiny_soc):
        text = tiny_soc.describe()
        for name in tiny_soc.core_names:
            assert name in text
