"""Tests for the coverage model and memory-depth truncation."""

import pytest

import repro
from repro.quality.coverage import CoverageModel, soc_quality
from repro.quality.truncation import truncate_for_depth
from repro.soc.core import Core
from repro.soc.soc import Soc


class TestCoverageModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            CoverageModel(full_patterns=0)
        with pytest.raises(ValueError):
            CoverageModel(full_patterns=10, max_coverage=0.0)
        with pytest.raises(ValueError):
            CoverageModel(full_patterns=10, saturation=1.0)

    def test_zero_patterns_zero_coverage(self):
        model = CoverageModel(full_patterns=100)
        assert model.coverage(0) == 0.0

    def test_full_set_reaches_saturation_fraction(self):
        model = CoverageModel(full_patterns=200, max_coverage=0.99, saturation=0.98)
        assert model.coverage(200) == pytest.approx(0.99 * 0.98, rel=1e-6)

    def test_monotone_and_saturating(self):
        model = CoverageModel(full_patterns=100)
        values = [model.coverage(p) for p in range(0, 301, 25)]
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert values[-1] <= model.max_coverage

    def test_marginal_decreasing(self):
        model = CoverageModel(full_patterns=100)
        assert model.marginal(10) > model.marginal(50) > model.marginal(200)

    def test_negative_patterns_rejected(self):
        with pytest.raises(ValueError):
            CoverageModel(full_patterns=10).coverage(-1)

    def test_for_core(self, small_core):
        model = CoverageModel.for_core(small_core)
        assert model.full_patterns == small_core.patterns


class TestSocQuality:
    def test_full_sets_near_max(self, tiny_soc):
        counts = {c.name: c.patterns for c in tiny_soc}
        quality = soc_quality(tiny_soc, counts)
        assert 0.95 < quality < 1.0

    def test_weighted_by_scan_cells(self, tiny_soc):
        counts = {c.name: c.patterns for c in tiny_soc}
        # Gutting the biggest core hurts more than gutting the smallest.
        biggest = max(tiny_soc.cores, key=lambda c: c.scan_cells)
        smallest = min(tiny_soc.cores, key=lambda c: c.scan_cells)
        gut_big = dict(counts, **{biggest.name: 1})
        gut_small = dict(counts, **{smallest.name: 1})
        assert soc_quality(tiny_soc, gut_big) < soc_quality(tiny_soc, gut_small)

    def test_missing_core_defaults_to_full(self, tiny_soc):
        assert soc_quality(tiny_soc, {}) == pytest.approx(
            soc_quality(tiny_soc, {c.name: c.patterns for c in tiny_soc})
        )


@pytest.fixture
def planned():
    cores = tuple(
        Core(
            name=f"c{i}",
            inputs=6,
            outputs=6,
            scan_chain_lengths=(30,) * (8 + 4 * i),
            patterns=60 + 20 * i,
            care_bit_density=0.04,
            seed=800 + i,
        )
        for i in range(3)
    )
    soc = Soc(name="trunc", cores=cores)
    plan = repro.optimize_soc(soc, 10, compression=True)
    return soc, plan


class TestTruncation:
    def test_noop_when_it_fits(self, planned):
        soc, plan = planned
        result = truncate_for_depth(soc, plan, plan.test_time)
        assert result.fits
        assert result.iterations == 0
        assert result.pattern_counts == {c.name: c.patterns for c in soc}
        assert result.quality == pytest.approx(result.full_quality)

    def test_truncates_to_depth(self, planned):
        soc, plan = planned
        depth = int(plan.test_time * 0.7)
        result = truncate_for_depth(soc, plan, depth)
        assert result.fits
        assert result.makespan <= depth
        assert result.quality < result.full_quality
        assert all(
            result.pattern_counts[c.name] <= c.patterns for c in soc
        )

    def test_quality_degrades_gracefully(self, planned):
        soc, plan = planned
        mild = truncate_for_depth(soc, plan, int(plan.test_time * 0.9))
        harsh = truncate_for_depth(soc, plan, int(plan.test_time * 0.6))
        assert mild.quality >= harsh.quality
        # Even the harsh cut keeps most coverage: truncation eats the
        # flat tail of the coverage curve first.
        assert harsh.quality > 0.9 * harsh.full_quality

    def test_floor_reported_as_unfit(self, planned):
        soc, plan = planned
        result = truncate_for_depth(soc, plan, max(1, plan.test_time // 50))
        assert not result.fits
        assert all(
            result.pattern_counts[c.name]
            >= max(1, int(round(0.1 * c.patterns)))
            for c in soc
        )

    def test_validation(self, planned):
        soc, plan = planned
        with pytest.raises(ValueError):
            truncate_for_depth(soc, plan, 0)
        with pytest.raises(ValueError):
            truncate_for_depth(soc, plan, 10, min_fraction=0.0)
        with pytest.raises(ValueError):
            truncate_for_depth(soc, plan, 10, step_fraction=2.0)

    def test_integer_ceil_accounting_at_the_floor_boundary(self):
        # One core, 69 cycles for 10 patterns, floored at 6 patterns:
        # the truncated test needs ceil(69 * 6 / 10) = 42 whole cycles.
        # Float accounting rounded the 41.4-cycle load to makespan 41
        # and reported fits=True against depth 41.
        from repro.core.architecture import (
            CoreConfig,
            DecompressorPlacement,
            ScheduledCore,
            Tam,
            TestArchitecture,
        )
        from repro.pipeline.result import PlanResult

        core = Core(
            name="only",
            inputs=2,
            outputs=2,
            scan_chain_lengths=(30,),
            patterns=10,
        )
        soc = Soc(name="boundary", cores=(core,))
        config = CoreConfig(
            core_name="only",
            uses_compression=False,
            wrapper_chains=1,
            code_width=None,
            test_time=69,
            volume=690,
        )
        arch = TestArchitecture(
            soc_name="boundary",
            placement=DecompressorPlacement.NONE,
            tams=(Tam(0, 1),),
            scheduled=(
                ScheduledCore(config=config, tam_index=0, start=0, end=69),
            ),
            ate_channels=1,
        )
        plan = PlanResult(
            soc_name="boundary",
            width_budget=1,
            compression="none",
            architecture=arch,
            cpu_seconds=0.0,
            partitions_evaluated=1,
            strategy="exhaustive",
        )
        result = truncate_for_depth(
            soc, plan, 41, min_fraction=0.6, step_fraction=0.1
        )
        assert result.pattern_counts == {"only": 6}
        assert result.makespan == 42
        assert not result.fits
        # One cycle of extra depth makes the floored schedule legal.
        relaxed = truncate_for_depth(
            soc, plan, 42, min_fraction=0.6, step_fraction=0.1
        )
        assert relaxed.fits
        assert relaxed.makespan == 42

    def test_compression_needs_less_truncation(self, planned):
        """The intro's motivation: at the same ATE depth, the compressed
        plan keeps more quality."""
        soc, _ = planned
        plain = repro.optimize_soc(soc, 10, compression=False)
        packed = repro.optimize_soc(soc, 10, compression=True)
        depth = int(packed.test_time * 1.5)  # generous for TDC, tight for raw
        plain_result = truncate_for_depth(soc, plain, depth)
        packed_result = truncate_for_depth(soc, packed, depth)
        assert packed_result.quality >= plain_result.quality
