"""Edge-case tests for the selective codec beyond the main suite."""

import numpy as np
import pytest

from repro.compression.cubes import X
from repro.compression.decompressor import expand_stream, slices_compatible
from repro.compression.selective import (
    CONTROL_END,
    CONTROL_GROUP,
    Codeword,
    code_parameters,
    encode_slice,
    encode_slices,
    slice_costs,
)


class TestGroupBoundaries:
    def test_partial_last_group(self):
        """m not divisible by k: the final short group still copies."""
        m = 10  # k = 4 -> groups [0..3][4..7][8..9]
        slice_bits = np.zeros(m, dtype=np.int8)
        slice_bits[8] = 1
        slice_bits[9] = 1
        # Only two minority (1) targets in the short group: stays
        # single-bit mode.
        words = encode_slice(slice_bits)
        assert len(words) == 3  # two singles + END

    def test_partial_group_copy(self):
        """A short final group with >= 3 targets copies two words."""
        m = 11  # k = 4 -> last group is [8..10], 3 positions
        slice_bits = np.full(m, 0, dtype=np.int8)
        slice_bits[8:11] = 1
        words = encode_slice(slice_bits)
        groups = [w for w in words if w.control == CONTROL_GROUP]
        assert len(groups) == 1
        assert groups[0].payload == 8
        # GROUP + literal + END
        assert len(words) == 3

    def test_partial_group_roundtrip(self):
        m = 11
        slice_bits = np.full(m, 0, dtype=np.int8)
        slice_bits[8:11] = 1
        stream = encode_slices(slice_bits[None, :])
        decoded = expand_stream(stream)
        assert slices_compatible(slice_bits[None, :], decoded)

    def test_group_literal_pads_fill_beyond_m(self):
        """Literal bits past the slice end must decode harmlessly."""
        m = 9  # k = 4, last group [8] only
        slice_bits = np.full(m, 0, dtype=np.int8)
        slice_bits[8] = 1
        # Force group copy by packing group 1 [4..7] instead.
        slice_bits[4:7] = 1
        stream = encode_slices(slice_bits[None, :])
        decoded = expand_stream(stream)
        assert slices_compatible(slice_bits[None, :], decoded)


class TestWidthOne:
    def test_m1_parameters(self):
        assert code_parameters(1) == (1, 3)

    def test_m1_roundtrip(self):
        for value in (0, 1, X):
            slice_bits = np.array([value], dtype=np.int8)
            stream = encode_slices(slice_bits[None, :])
            decoded = expand_stream(stream)
            assert slices_compatible(slice_bits[None, :], decoded)

    def test_m1_cost(self):
        # Worst case one single + END.
        assert slice_costs(np.array([[0]], dtype=np.int8))[0] <= 2


class TestBalancedSlices:
    def test_tie_targets_ones(self):
        """Equal 0s and 1s: the encoder targets the 1s (tie rule)."""
        slice_bits = np.array([0, 1, 0, 1], dtype=np.int8)
        words = encode_slice(slice_bits)
        singles = [w for w in words if w.control in (0, 1)]
        assert all(w.control == 1 for w in singles)
        assert words[-1].payload == 0  # fill symbol is then 0

    def test_alternating_worst_case_cost(self):
        """Dense alternating data shows the expansion regime."""
        m = 16
        slice_bits = np.tile([0, 1], m // 2).astype(np.int8)
        cost = int(slice_costs(slice_bits[None, :])[0])
        k, w = code_parameters(m)
        # Cost in bits exceeds the raw slice: compression must lose here.
        assert cost * w > m


class TestStreamConcatenation:
    def test_back_to_back_slices_decode_independently(self, rng):
        a = rng.integers(0, 3, size=(1, 8)).astype(np.int8)
        b = rng.integers(0, 3, size=(1, 8)).astype(np.int8)
        both = np.vstack([a, b])
        stream = encode_slices(both)
        decoded = expand_stream(stream)
        assert slices_compatible(both, decoded)
        # The per-slice encodings are literally concatenated.
        separate = encode_slice(a[0]) + encode_slice(b[0])
        assert list(stream.codewords) == separate

    def test_end_always_terminates(self, rng):
        slices = rng.integers(0, 3, size=(25, 12)).astype(np.int8)
        stream = encode_slices(slices)
        ends = [w for w in stream.codewords if w.control == CONTROL_END]
        # GROUP literals may carry control bits that alias END, so count
        # via decoding instead of raw control fields.
        decoded = expand_stream(stream)
        assert decoded.shape[0] == 25
        assert len(ends) >= 25

    def test_payload_fits_code_width(self, rng):
        for m in (5, 9, 17, 33):
            slices = rng.integers(0, 3, size=(10, m)).astype(np.int8)
            stream = encode_slices(slices)
            _, w = code_parameters(m)
            for word in stream.codewords:
                word.to_bits(w)  # raises if the payload overflows
