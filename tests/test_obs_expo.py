"""OpenMetrics exposition: rendering, name sanitization, round-trip."""

from __future__ import annotations

import pytest

from repro.obs.expo import (
    parse_openmetrics,
    render_openmetrics,
    sanitize_metric_name,
)
from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry


class TestSanitize:
    def test_dots_map_to_underscores(self):
        assert sanitize_metric_name("serve.jobs_completed") == (
            "serve_jobs_completed"
        )

    def test_allowed_characters_pass_through(self):
        assert sanitize_metric_name("abc_DEF:09") == "abc_DEF:09"

    def test_leading_digit_gets_guarded(self):
        assert sanitize_metric_name("9lives") == "_9lives"

    def test_empty_name_is_guarded(self):
        assert sanitize_metric_name("") == "_"


class TestRender:
    def test_empty_snapshot_is_just_eof(self):
        text = render_openmetrics(MetricsRegistry().snapshot())
        assert text == "# EOF\n"

    def test_counter_family(self):
        registry = MetricsRegistry()
        registry.inc("serve.jobs_completed", 7)
        text = render_openmetrics(registry.snapshot(), prefix="repro")
        assert "# TYPE repro_serve_jobs_completed_total counter" in text
        assert "repro_serve_jobs_completed_total 7" in text

    def test_gauge_family(self):
        registry = MetricsRegistry()
        registry.set_gauge("serve.queue_depth", 3.0)
        text = render_openmetrics(registry.snapshot())
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "repro_serve_queue_depth 3" in text  # integral, no ".0"

    def test_sanitization_collision_raises(self):
        # Regression: "serve.jobs" and "serve_jobs" both sanitize to
        # "serve_jobs"; the renderer used to emit both silently as
        # duplicate families.  It must refuse, naming both sources.
        registry = MetricsRegistry()
        registry.inc("serve.jobs", 1)
        registry.inc("serve_jobs", 2)
        with pytest.raises(ValueError) as excinfo:
            render_openmetrics(registry.snapshot())
        message = str(excinfo.value)
        assert "serve.jobs" in message
        assert "serve_jobs" in message

    def test_sanitization_collision_across_kinds_raises(self):
        # A gauge named "a.b.total" lands on the counter "a.b"'s
        # exposed family (counters get the "_total" suffix).
        registry = MetricsRegistry()
        registry.inc("a.b", 1)
        registry.set_gauge("a.b.total", 3.0)
        with pytest.raises(ValueError) as excinfo:
            render_openmetrics(registry.snapshot())
        message = str(excinfo.value)
        assert "a.b" in message
        assert "a.b.total" in message

    def test_same_name_counter_and_gauge_do_not_collide(self):
        # The counter's "_total" suffix keeps the families distinct.
        registry = MetricsRegistry()
        registry.inc("serve.jobs", 1)
        registry.set_gauge("serve.jobs", 2.0)
        series = parse_openmetrics(render_openmetrics(registry.snapshot()))
        assert series["repro_serve_jobs_total"] == 1
        assert series["repro_serve_jobs"] == 2

    def test_histogram_family_is_cumulative_with_inf(self):
        registry = MetricsRegistry()
        boundaries = (0.1, 1.0)
        registry.observe("lat", 0.05, boundaries)
        registry.observe("lat", 0.5, boundaries)
        registry.observe("lat", 99.0, boundaries)  # overflow
        series = parse_openmetrics(render_openmetrics(registry.snapshot()))
        assert series['repro_lat_bucket{le="0.1"}'] == 1
        assert series['repro_lat_bucket{le="1"}'] == 2
        assert series['repro_lat_bucket{le="+Inf"}'] == 3
        assert series["repro_lat_count"] == 3
        assert series["repro_lat_sum"] == pytest.approx(99.55)

    def test_help_text_appears_for_known_names(self):
        registry = MetricsRegistry()
        registry.inc("serve.jobs_failed")
        text = render_openmetrics(
            registry.snapshot(),
            help_text={"serve.jobs_failed": "Jobs that failed"},
        )
        assert "# HELP repro_serve_jobs_failed_total Jobs that failed" in text

    def test_output_is_deterministic_and_terminated(self):
        registry = MetricsRegistry()
        registry.inc("b")
        registry.inc("a")
        registry.set_gauge("g", 1.0)
        first = render_openmetrics(registry.snapshot())
        second = render_openmetrics(registry.snapshot())
        assert first == second
        assert first.endswith("# EOF\n")
        lines = first.splitlines()
        assert lines.index("repro_a_total 1") < lines.index("repro_b_total 1")

    def test_no_prefix(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        text = render_openmetrics(registry.snapshot(), prefix="")
        assert "hits_total 1" in text

    def test_latency_buckets_render_parseable(self):
        registry = MetricsRegistry()
        registry.observe("serve.job_seconds", 0.003, LATENCY_BUCKETS)
        series = parse_openmetrics(render_openmetrics(registry.snapshot()))
        assert series['repro_serve_job_seconds_bucket{le="0.005"}'] == 1
        assert series['repro_serve_job_seconds_bucket{le="0.001"}'] == 0


class TestParse:
    def test_skips_comments_and_eof(self):
        series = parse_openmetrics("# HELP x y\n# TYPE x counter\nx 4\n# EOF\n")
        assert series == {"x": 4.0}

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_openmetrics("justoneword\n")
