"""Tests for the MISR response compactor."""

import numpy as np
import pytest

from repro.compression.misr import PRIMITIVE_POLYNOMIALS, Misr, signature_of


class TestConstruction:
    def test_default_polynomial(self):
        misr = Misr(width=16)
        assert misr.polynomial == PRIMITIVE_POLYNOMIALS[16]

    def test_missing_default(self):
        with pytest.raises(ValueError, match="no default polynomial"):
            Misr(width=5)

    def test_explicit_polynomial(self):
        misr = Misr(width=5, polynomial=0b10100)
        assert misr.polynomial == 0b10100

    def test_polynomial_bounds(self):
        with pytest.raises(ValueError):
            Misr(width=4, polynomial=1 << 4)

    def test_width_positive(self):
        with pytest.raises(ValueError):
            Misr(width=0)


class TestAbsorption:
    def test_state_changes(self):
        misr = Misr(width=8)
        misr.absorb([1, 0, 1])
        assert misr.state != 0
        assert misr.slices_absorbed == 1

    def test_slice_width_guard(self):
        misr = Misr(width=8)
        with pytest.raises(ValueError, match="at most 8"):
            misr.absorb([0] * 9)

    def test_binary_guard(self):
        misr = Misr(width=8)
        with pytest.raises(ValueError, match="0/1"):
            misr.absorb([0, 2])

    def test_reset(self):
        misr = Misr(width=8)
        misr.absorb([1, 1, 1])
        misr.reset()
        assert misr.state == 0 and misr.slices_absorbed == 0

    def test_reset_seed_guard(self):
        with pytest.raises(ValueError):
            Misr(width=8).reset(seed=256)

    def test_deterministic_signature(self, rng):
        slices = rng.integers(0, 2, size=(40, 8)).astype(np.int64)
        assert signature_of(slices, width=16) == signature_of(slices, width=16)

    def test_known_small_example(self):
        # width 3, poly x^3 + x + 1 -> taps 0b011; absorb [1,0,0] twice.
        misr = Misr(width=3, polynomial=0b011)
        misr.absorb([1, 0, 0])  # state = 0 shifted ^ 0b100 = 4
        assert misr.state == 0b100
        misr.absorb([0, 0, 0])  # carry out -> (000) ^ poly = 0b011
        assert misr.state == 0b011


class TestErrorDetection:
    def test_linearity(self, rng):
        """MISRs are linear: sig(a ^ b) = sig(a) ^ sig(b) from seed 0."""
        a = rng.integers(0, 2, size=(30, 16)).astype(np.int64)
        b = rng.integers(0, 2, size=(30, 16)).astype(np.int64)
        sig_a = signature_of(a)
        sig_b = signature_of(b)
        sig_ab = signature_of(a ^ b)
        assert sig_ab == sig_a ^ sig_b

    def test_single_bit_error_detected(self, rng):
        good = rng.integers(0, 2, size=(50, 16)).astype(np.int64)
        bad = good.copy()
        bad[17, 3] ^= 1
        assert signature_of(good) != signature_of(bad)

    def test_every_single_bit_error_detected(self, rng):
        """Single-bit errors never alias (the error polynomial is a
        monomial, never divisible by the characteristic polynomial)."""
        good = rng.integers(0, 2, size=(12, 8)).astype(np.int64)
        base = signature_of(good, width=8)
        for s in range(12):
            for b in range(8):
                bad = good.copy()
                bad[s, b] ^= 1
                assert signature_of(bad, width=8) != base, (s, b)

    def test_aliasing_probability(self):
        assert Misr(width=16).aliasing_probability == pytest.approx(2.0**-16)

    def test_random_corruption_mostly_detected(self, rng):
        good = rng.integers(0, 2, size=(64, 16)).astype(np.int64)
        base = signature_of(good)
        misses = 0
        for trial in range(50):
            bad = good.copy()
            flips = rng.integers(0, 2, size=bad.shape).astype(np.int64)
            bad ^= flips
            if np.array_equal(bad, good):
                continue
            if signature_of(bad) == base:
                misses += 1
        assert misses <= 1  # 2^-16 aliasing; 50 trials
