"""Differential proof: the pipeline reproduces the pre-refactor plans.

``tests/_legacy_optimizer.py`` is the optimizer exactly as it stood
before ``repro.pipeline`` existed.  These tests run it next to the
pipeline-backed entry points on the real benchmark designs and require
*bit-identical* architectures (``TestArchitecture`` equality is strict:
same TAMs, same placement order, same per-core configurations) plus
matching search statistics.  ``cpu_seconds`` is wall clock and is the
one field allowed to differ.

Within one test the module-level analysis memo makes the second run
nearly free, so each comparison pays for the design-space exploration
only once.
"""

from __future__ import annotations

import pytest

import _legacy_optimizer as legacy
from repro.core.optimizer import (
    optimize_per_tam,
    optimize_soc,
    optimize_soc_constrained,
)
from repro.pipeline import RunConfig, plan
from repro.reporting.export import result_from_json, result_to_json
from repro.soc.industrial import load_design

ALL_DESIGNS = ("d695", "d2758", "System1", "System2", "System3", "System4")


def _assert_same_plan(new, old):
    assert new.architecture == old.architecture
    assert new.soc_name == old.soc_name
    assert new.width_budget == old.width_budget
    assert new.compression == old.compression
    assert new.partitions_evaluated == old.partitions_evaluated
    assert new.strategy == old.strategy
    assert new.test_time == old.test_time
    assert new.test_data_volume == old.test_data_volume
    assert new.tam_widths == old.tam_widths


@pytest.mark.parametrize("design", ALL_DESIGNS)
def test_optimize_soc_bit_identical(design):
    soc = load_design(design)
    new = optimize_soc(soc, 16, compression="auto")
    old = legacy.optimize_soc(soc, 16, compression="auto")
    _assert_same_plan(new, old)


@pytest.mark.parametrize("compression", ["none", "per-core", "select"])
def test_optimize_soc_modes_bit_identical(compression):
    soc = load_design("d695")
    new = optimize_soc(soc, 16, compression=compression)
    old = legacy.optimize_soc(soc, 16, compression=compression)
    _assert_same_plan(new, old)


def test_plan_entry_point_matches_legacy():
    """The new one-call plan() is the same flow as optimize_soc."""
    soc = load_design("d695")
    new = plan(soc, 16, RunConfig(compression="auto"))
    old = legacy.optimize_soc(soc, 16, compression="auto")
    _assert_same_plan(new, old)


@pytest.mark.parametrize("design", ["d695", "System1"])
def test_constrained_bit_identical(design):
    soc = load_design(design)
    new = optimize_soc_constrained(soc, 12, power_budget=900.0)
    old = legacy.optimize_soc_constrained(soc, 12, power_budget=900.0)
    _assert_same_plan(new, old)
    assert new.peak_power == old.peak_power
    assert new.power_budget == old.power_budget
    assert new.tam_idle_cycles == old.tam_idle_cycles


def test_constrained_unconstrained_bit_identical():
    """No constraints still means the exhaustive constrained scan."""
    soc = load_design("d695")
    new = optimize_soc_constrained(soc, 12)
    old = legacy.optimize_soc_constrained(soc, 12)
    _assert_same_plan(new, old)


def test_constrained_precedence_bit_identical():
    soc = load_design("d695")
    names = list(soc.core_names)
    precedence = ((names[0], names[1]), (names[2], names[3]))
    new = optimize_soc_constrained(soc, 12, precedence=precedence)
    old = legacy.optimize_soc_constrained(soc, 12, precedence=precedence)
    _assert_same_plan(new, old)
    assert new.tam_idle_cycles == old.tam_idle_cycles


@pytest.mark.parametrize("design", ["d695", "System1"])
def test_per_tam_bit_identical(design):
    soc = load_design(design)
    new = optimize_per_tam(soc, 12)
    old = legacy.optimize_per_tam(soc, 12)
    _assert_same_plan(new, old)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(width=0),
        dict(width=16, compression="bogus"),
    ],
)
def test_optimize_soc_errors_match_legacy(kwargs, tiny_soc):
    """Same invalid input -> same exception type and message."""
    width = kwargs.pop("width")
    with pytest.raises(ValueError) as new_err:
        optimize_soc(tiny_soc, width, **kwargs)
    with pytest.raises(ValueError) as old_err:
        legacy.optimize_soc(tiny_soc, width, **kwargs)
    assert str(new_err.value) == str(old_err.value)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(width=0),
        dict(width=2, min_tam_width=5),
    ],
)
def test_constrained_errors_match_legacy(kwargs, tiny_soc):
    width = kwargs.pop("width")
    with pytest.raises(ValueError) as new_err:
        optimize_soc_constrained(tiny_soc, width, **kwargs)
    with pytest.raises(ValueError) as old_err:
        legacy.optimize_soc_constrained(tiny_soc, width, **kwargs)
    assert str(new_err.value) == str(old_err.value)


def test_per_tam_errors_match_legacy(tiny_soc):
    with pytest.raises(ValueError) as new_err:
        optimize_per_tam(tiny_soc, 2)
    with pytest.raises(ValueError) as old_err:
        legacy.optimize_per_tam(tiny_soc, 2)
    assert str(new_err.value) == str(old_err.value)


def test_plan_result_json_round_trip(tiny_soc):
    result = plan(tiny_soc, 8, RunConfig(compression="auto"))
    restored = result_from_json(result_to_json(result))
    assert restored == result


def test_constrained_result_json_round_trip(tiny_soc):
    result = optimize_soc_constrained(
        tiny_soc, 6, power_budget=10_000.0
    )
    restored = result_from_json(result_to_json(result))
    assert restored == result
    assert restored.peak_power == result.peak_power
    assert restored.tam_idle_cycles == result.tam_idle_cycles
    assert restored.stage_timings == result.stage_timings


def test_per_tam_result_json_round_trip(tiny_soc):
    result = optimize_per_tam(tiny_soc, 6)
    restored = result_from_json(result_to_json(result))
    assert restored == result
