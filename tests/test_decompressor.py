"""Unit tests for the decompressor model (losslessness, FSM behavior)."""

import numpy as np
import pytest

from repro.compression.cubes import X, generate_cubes
from repro.compression.decompressor import (
    DecodeError,
    Decompressor,
    expand_stream,
    slices_compatible,
)
from repro.compression.selective import (
    CONTROL_END,
    CONTROL_GROUP,
    CONTROL_SINGLE1,
    Codeword,
    CompressedStream,
    encode_slice,
    encode_slices,
)
from repro.wrapper.design import design_wrapper


class TestRoundTrip:
    @pytest.mark.parametrize("m", [1, 2, 5, 8, 16, 33])
    def test_random_slices_roundtrip(self, m, rng):
        slices = rng.integers(0, 3, size=(40, m)).astype(np.int8)
        stream = encode_slices(slices)
        decoded = expand_stream(stream)
        assert decoded.shape == slices.shape
        assert slices_compatible(slices, decoded)

    def test_x_positions_get_fill_symbol(self):
        slice_bits = np.array([X, 1, X, 0, 0, 0, 0], dtype=np.int8)
        stream = encode_slices(slice_bits[None, :])
        decoded = expand_stream(stream)[0]
        assert decoded[1] == 1
        # fill symbol is 0 (majority care symbol), so X positions read 0
        assert decoded[0] == 0 and decoded[2] == 0

    def test_core_cubes_roundtrip(self, small_core):
        cubes = generate_cubes(small_core)
        design = design_wrapper(small_core, 4)
        slices = cubes.slices(design).reshape(-1, 4)
        stream = encode_slices(slices)
        decoded = expand_stream(stream)
        assert slices_compatible(slices, decoded)

    def test_group_copy_roundtrip(self):
        slice_bits = np.array([1, 1, 1, 0, 1, 0, 0, 0], dtype=np.int8)
        stream = encode_slices(slice_bits[None, :])
        decoded = expand_stream(stream)[0]
        assert slices_compatible(slice_bits[None, :], decoded[None, :])


class TestDecompressorFsm:
    def test_cycle_count_matches_codewords(self, rng):
        slices = rng.integers(0, 3, size=(10, 9)).astype(np.int8)
        stream = encode_slices(slices)
        decoder = Decompressor(stream.m)
        emitted = [s for w in stream.codewords if (s := decoder.feed(w)) is not None]
        assert decoder.cycles == len(stream.codewords)
        assert decoder.slices_emitted == len(emitted) == 10

    def test_mid_slice_flag(self):
        decoder = Decompressor(8)
        assert not decoder.mid_slice
        decoder.feed(Codeword(CONTROL_SINGLE1, 2))
        assert decoder.mid_slice
        decoder.feed(Codeword(CONTROL_END, 0))
        assert not decoder.mid_slice

    def test_out_of_range_single_rejected(self):
        decoder = Decompressor(8)
        with pytest.raises(DecodeError, match="out of range"):
            decoder.feed(Codeword(CONTROL_SINGLE1, 8))

    def test_out_of_range_group_rejected(self):
        decoder = Decompressor(8)
        with pytest.raises(DecodeError, match="group start"):
            decoder.feed(Codeword(CONTROL_GROUP, 9))

    def test_group_data_word_not_validated_as_control(self):
        # After a GROUP header, the next word is literal data: any
        # control bits are acceptable.
        decoder = Decompressor(8)
        decoder.feed(Codeword(CONTROL_GROUP, 4))
        out = decoder.feed(Codeword(CONTROL_END, 0b1010))  # literal data
        assert out is None
        out = decoder.feed(Codeword(CONTROL_END, 0))
        assert out is not None
        assert out[4:8].tolist() == [1, 0, 1, 0]


class TestStreamValidation:
    def test_truncated_stream_rejected(self):
        words = encode_slice([0, 1, 0, 0, 0])[:-1]  # drop END
        stream = CompressedStream(m=5, codewords=tuple(words), slice_count=1)
        with pytest.raises(DecodeError, match="truncated"):
            expand_stream(stream)

    def test_slice_count_mismatch_rejected(self):
        words = encode_slice([0, 1, 0, 0, 0])
        stream = CompressedStream(m=5, codewords=tuple(words), slice_count=2)
        with pytest.raises(DecodeError, match="declares 2"):
            expand_stream(stream)

    def test_empty_stream(self):
        stream = CompressedStream(m=4, codewords=(), slice_count=0)
        assert expand_stream(stream).shape == (0, 4)


class TestSlicesCompatible:
    def test_shape_mismatch(self):
        assert not slices_compatible(np.zeros((1, 2)), np.zeros((2, 2)))

    def test_x_is_free(self):
        src = np.array([[X, 1]], dtype=np.int8)
        assert slices_compatible(src, np.array([[0, 1]], dtype=np.int8))
        assert slices_compatible(src, np.array([[1, 1]], dtype=np.int8))

    def test_care_mismatch_detected(self):
        src = np.array([[0, 1]], dtype=np.int8)
        assert not slices_compatible(src, np.array([[0, 0]], dtype=np.int8))
