"""Satellite: the perf flags reach RunConfig identically everywhere.

Every planning subcommand must translate ``--jobs`` / ``--cache-dir`` /
``--no-cache`` into the *same* :class:`~repro.pipeline.config.RunConfig`
performance fields, and the ``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` /
``REPRO_NO_CACHE`` environment equivalents must act on that config at
resolve time.  The choke point is :meth:`RunConfig.analyses` -- the
single funnel every analysis pass goes through -- which we monkeypatch
to capture the live config and abort the run before any real work.
"""

from __future__ import annotations

import pytest

from repro import cli
from repro.pipeline import RunConfig


class _Captured(Exception):
    """Carries the RunConfig out of the aborted run."""

    def __init__(self, config: RunConfig) -> None:
        super().__init__("captured")
        self.config = config


@pytest.fixture
def capture_config(monkeypatch):
    """Abort at the analysis funnel, surfacing the active RunConfig."""

    def fake_analyses(self, cores, **kwargs):
        raise _Captured(self)

    monkeypatch.setattr(RunConfig, "analyses", fake_analyses)

    def run(argv: list[str]) -> RunConfig:
        with pytest.raises(_Captured) as err:
            cli.main(argv)
        return err.value.config

    return run


# Every planning subcommand, with a {flags} slot for the perf flags.
SUBCOMMANDS = [
    pytest.param(["plan", "d695", "--width", "8"], id="plan"),
    pytest.param(["simulate", "d695", "--width", "8"], id="simulate"),
    pytest.param(["export", "d695", "--width", "8"], id="export"),
    pytest.param(["power", "d695", "--width", "8"], id="power"),
    pytest.param(["figure", "2"], id="figure2"),
    pytest.param(["figure", "3"], id="figure3"),
    pytest.param(["figure", "4"], id="figure4"),
    pytest.param(["table", "1"], id="table1"),
    pytest.param(["table", "2"], id="table2"),
    pytest.param(["table", "3"], id="table3"),
]


def _perf_fields(config: RunConfig) -> tuple:
    return (config.jobs, config.cache_dir, config.use_cache)


@pytest.mark.parametrize("argv", SUBCOMMANDS)
def test_explicit_flags_reach_runconfig(argv, capture_config, tmp_path):
    config = capture_config(
        argv + ["--jobs", "3", "--cache-dir", str(tmp_path)]
    )
    assert _perf_fields(config) == (3, str(tmp_path), True)


@pytest.mark.parametrize("argv", SUBCOMMANDS)
def test_no_cache_flag_reaches_runconfig(argv, capture_config):
    config = capture_config(argv + ["--no-cache"])
    assert _perf_fields(config) == (None, None, False)
    assert config.resolve_cache() is None


@pytest.mark.parametrize("argv", SUBCOMMANDS)
def test_default_flags_identical_across_subcommands(argv, capture_config):
    """No flags: every subcommand builds the same perf fields."""
    config = capture_config(argv)
    assert _perf_fields(config) == (None, None, True)


@pytest.mark.parametrize("argv", SUBCOMMANDS)
def test_env_jobs_equivalent_to_flag(argv, capture_config, monkeypatch):
    """REPRO_JOBS resolves exactly like --jobs on every subcommand."""
    monkeypatch.setenv("REPRO_JOBS", "5")
    via_env = capture_config(argv)
    assert via_env.jobs is None  # the env is applied at resolve time...
    assert via_env.resolve_jobs() == 5  # ...not baked into the config
    monkeypatch.delenv("REPRO_JOBS")
    via_flag = capture_config(argv + ["--jobs", "5"])
    assert via_flag.resolve_jobs() == 5


@pytest.mark.parametrize("argv", SUBCOMMANDS[:4])
def test_env_cache_dir_equivalent_to_flag(
    argv, capture_config, monkeypatch, tmp_path
):
    """REPRO_CACHE_DIR resolves exactly like --cache-dir."""
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    via_env = capture_config(argv)
    via_flag = capture_config(argv + ["--cache-dir", str(tmp_path)])
    env_cache = via_env.resolve_cache()
    flag_cache = via_flag.resolve_cache()
    assert env_cache is not None and flag_cache is not None
    assert env_cache.directory == flag_cache.directory


@pytest.mark.parametrize("argv", SUBCOMMANDS[:4])
def test_env_no_cache_equivalent_to_flag(argv, capture_config, monkeypatch):
    """REPRO_NO_CACHE resolves exactly like --no-cache."""
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    via_env = capture_config(argv)
    assert via_env.use_cache is True  # CLI default: cache on
    assert via_env.resolve_cache() is None  # env veto wins at resolve
    via_flag = capture_config(argv + ["--no-cache"])
    assert via_flag.resolve_cache() is None


def test_explicit_cache_dir_beats_env_veto(capture_config, monkeypatch, tmp_path):
    """Naming a directory means it, even under REPRO_NO_CACHE."""
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    config = capture_config(
        ["plan", "d695", "--width", "8", "--cache-dir", str(tmp_path)]
    )
    cache = config.resolve_cache()
    assert cache is not None
    assert str(tmp_path) in str(cache.directory)


def test_compression_and_search_knobs_reach_runconfig(capture_config):
    config = capture_config(
        [
            "plan",
            "d695",
            "--width",
            "8",
            "--compression",
            "auto",
            "--max-tams",
            "2",
            "--strategy",
            "greedy",
        ]
    )
    assert config.compression == "auto"
    assert config.max_tams == 2
    assert config.strategy == "greedy"


def test_power_command_builds_constrained_config(capture_config):
    config = capture_config(["power", "d695", "--width", "8"])
    assert config.power_budget is not None
    assert config.is_constrained
