"""Unit tests for table formatting and the experiment drivers.

Driver tests here use the smallest workable configurations; the full
paper-scale runs live in the benchmark harness.
"""

import pytest

from repro.reporting.tables import format_float, format_table
from repro.reporting.experiments import (
    Figure2Data,
    figure2_data,
    figure3_data,
    format_figure2,
    format_figure3,
    format_figure4,
    format_table1,
    format_table2,
    format_table3,
    Table1Row,
    Table2Row,
    Table3Row,
)


class TestFormatting:
    def test_format_float_integers(self):
        assert format_float(3.0) == "3"
        assert format_float(3.14159) == "3.14"
        assert format_float(float("inf")) == "inf"

    def test_format_table_alignment(self):
        text = format_table(["name", "n"], [("abc", 1), ("de", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "---" in lines[1]
        assert lines[2].split()[0] == "abc"

    def test_format_table_title(self):
        text = format_table(["a"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"


class TestFigure2Driver:
    def test_fast_sweep(self):
        # A cheap code width keeps the sweep small: w=8 -> m in [32, 63].
        data = figure2_data("ckt-2", code_width=8, grid=8)
        assert len(data.m_values) >= 2
        assert data.tau_min <= min(data.test_times)
        assert data.argmin_m in data.m_values
        assert 0.0 <= data.relative_spread < 1.0

    def test_format_contains_min(self):
        data = Figure2Data(
            core_name="x",
            code_width=5,
            m_values=(4, 5, 6),
            test_times=(10, 8, 9),
        )
        text = format_figure2(data, every=1)
        assert "min at m=5" in text
        assert not data.is_monotonic

    def test_infeasible_width_raises(self):
        with pytest.raises(ValueError):
            figure2_data("ckt-2", code_width=30)


class TestFigure3Driver:
    def test_fast_sweep(self):
        data = figure3_data("ckt-2", code_widths=range(6, 9), grid=6)
        assert list(data.code_widths) == [6, 7, 8]
        assert all(t > 0 for t in data.test_times)
        text = format_figure3(data)
        assert "Figure 3" in text


class TestTableFormatting:
    def test_table1_format(self):
        rows = [Table1Row("d", 16, 1000, 800), Table1Row("d", 32, 700, None)]
        text = format_table1(rows)
        assert "W_ATE" in text
        assert "n.a." in text
        assert "1.25" in text  # 1000/800

    def test_table2_format(self):
        rows = [Table2Row("d", 16, 900, 1800, 6)]
        text = format_table2(rows)
        assert "W_TAM" in text
        assert "0.50" in text

    def test_table3_row_ratios(self):
        row = Table3Row(
            design="s",
            gates=10,
            initial_volume_bits=4_000_000,
            tam_width=16,
            time_no_tdc=1_000_000,
            volume_no_tdc=2_000_000,
            cpu_no_tdc=0.5,
            time_tdc=100_000,
            volume_tdc=200_000,
            cpu_tdc=1.5,
        )
        assert row.time_reduction == pytest.approx(10.0)
        assert row.volume_reduction == pytest.approx(10.0)
        assert row.volume_reduction_vs_initial == pytest.approx(20.0)
        text = format_table3([row])
        assert "average time reduction, all designs: 10.00x" in text

    def test_table3_zero_division_guard(self):
        row = Table3Row(
            design="s",
            gates=1,
            initial_volume_bits=1,
            tam_width=1,
            time_no_tdc=1,
            volume_no_tdc=1,
            cpu_no_tdc=0.0,
            time_tdc=0,
            volume_tdc=0,
            cpu_tdc=0.0,
        )
        assert row.time_reduction == float("inf")


class TestFigure4Format:
    def test_formats_without_running(self):
        # Build a Figure4Data-like object from two tiny optimizer runs is
        # costly; instead exercise the formatter through a fast SOC.
        from repro.reporting.experiments import Figure4Data
        from repro.core.optimizer import optimize_soc, optimize_per_tam
        from repro.soc.core import Core
        from repro.soc.soc import Soc

        cores = tuple(
            Core(
                name=f"c{i}",
                inputs=6,
                outputs=6,
                scan_chain_lengths=(10,) * 24,
                patterns=30,
                care_bit_density=0.04,
                seed=i,
            )
            for i in range(2)
        )
        soc = Soc(name="mini", cores=cores)
        data = Figure4Data(
            soc_name="mini",
            width_budget=10,
            no_tdc=optimize_soc(soc, 10, compression=False),
            per_tam=optimize_per_tam(soc, 10),
            per_core=optimize_soc(soc, 10, compression=True),
        )
        text = format_figure4(data)
        assert "(a) no TDC" in text
        assert "(c) decompressor per core" in text
        # Compression beats no-TDC on this sparse SOC.
        assert data.per_core.test_time < data.no_tdc.test_time
