"""Tests for the bus-based test transport planner."""

import pytest

import repro
from repro.core.bus import BusPlan, optimize_bus
from repro.soc.core import Core
from repro.soc.soc import Soc


@pytest.fixture
def bus_soc() -> Soc:
    cores = tuple(
        Core(
            name=f"c{i}",
            inputs=6,
            outputs=6,
            scan_chain_lengths=(25,) * (8 + 4 * i),
            patterns=40 + 10 * i,
            care_bit_density=0.04,
            one_fraction=0.3,
            seed=950 + i,
        )
        for i in range(4)
    )
    return Soc(name="bus4", cores=cores)


class TestOptimizeBus:
    def test_validation(self, bus_soc):
        with pytest.raises(ValueError):
            optimize_bus(bus_soc, 0)
        with pytest.raises(ValueError):
            optimize_bus(Soc(name="empty"), 8)

    def test_bandwidth_respected(self, bus_soc):
        plan = optimize_bus(bus_soc, 12, compression=True)
        assert isinstance(plan, BusPlan)
        assert plan.peak_bandwidth <= 12 + 1e-9
        assert all(1 <= r <= 12 for r in plan.rates.values())

    def test_every_core_scheduled(self, bus_soc):
        plan = optimize_bus(bus_soc, 12, compression=True)
        scheduled = {iv.name for iv in plan.schedule.intervals}
        assert scheduled == set(bus_soc.core_names)

    def test_above_lower_bound(self, bus_soc):
        plan = optimize_bus(bus_soc, 12, compression=True)
        assert plan.test_time >= plan.lower_bound
        assert plan.tightness >= 1.0

    def test_reasonably_tight(self, bus_soc):
        plan = optimize_bus(bus_soc, 12, compression=True)
        assert plan.tightness <= 2.0

    def test_wider_bus_never_slower(self, bus_soc):
        narrow = optimize_bus(bus_soc, 8, compression=True)
        wide = optimize_bus(bus_soc, 16, compression=True)
        assert wide.test_time <= narrow.test_time

    def test_compression_helps_on_bus_too(self, bus_soc):
        plain = optimize_bus(bus_soc, 12, compression=False)
        packed = optimize_bus(bus_soc, 12, compression=True)
        assert packed.test_time < plain.test_time

    def test_bus_at_least_matches_dedicated_tams(self, bus_soc):
        """Fluid bandwidth sharing subsumes any fixed partition, so the
        bus plan should not lose badly to the TAM plan (the local
        search is heuristic, hence the small slack)."""
        tam = repro.optimize_soc(bus_soc, 12, compression=True)
        bus = optimize_bus(bus_soc, 12, compression=True)
        assert bus.test_time <= tam.test_time * 1.10

    def test_single_core_uses_full_bus(self, bus_soc):
        one = bus_soc.subset([bus_soc.core_names[0]])
        plan = optimize_bus(one, 10, compression=True)
        name = one.core_names[0]
        # A lone core has no reason to throttle below the full bus.
        assert plan.rates[name] == 10

    def test_cpu_and_moves_reported(self, bus_soc):
        plan = optimize_bus(bus_soc, 8, compression="auto")
        assert plan.cpu_seconds > 0
        assert plan.moves_evaluated >= 1
        assert plan.compression == "auto"
