"""Differential proof: the ``repro.search`` backends reproduce the
pre-refactor search.

``tests/_legacy_search.py`` freezes ``search_partitions`` /
``anneal_search`` exactly as they stood before the backend layer
existed.  These tests run the refactored stack next to that copy and
require *bit-identical* :class:`PartitionSearchResult`s (frozen
dataclass equality: same outcome, same ``partitions_evaluated``, same
strategy string) and, at the pipeline level, bit-identical
:class:`PlanResult`s on the six benchmark SOCs -- ``cpu_seconds`` and
the observability ``report`` are the only fields allowed to differ.

The anneal backend is pinned against ``legacy_anneal_search_fixed``:
the shipped annealer with *only* the cooling line moved, the one
intentional behavior change of the refactor (see
``tests/test_search_backends.py`` for the cooling-fix regression
tests themselves).

``REPRO_FUZZ_SEEDS`` widens the random sweeps in CI.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import _legacy_search as legacy
from repro.pipeline import Pipeline, RunConfig, plan
from repro.pipeline.stages import (
    DecompressorStage,
    Stage,
    WrapperStage,
    stage_factory,
)
from repro.search import run_search
from repro.soc.industrial import load_design

ALL_DESIGNS = ("d695", "d2758", "System1", "System2", "System3", "System4")

FUZZ_SEEDS = int(os.environ.get("REPRO_FUZZ_SEEDS", 24))


# ----------------------------------------------------------------------
# Synthetic workloads: cheap, deterministic time functions.
# ----------------------------------------------------------------------


def _random_workload(seed: int):
    """(core names, time_of) with ceil-divide scaling plus a floor."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 11))
    names = [f"c{i}" for i in range(n)]
    base = {name: int(rng.integers(40, 4000)) for name in names}
    floor = {name: int(rng.integers(1, 30)) for name in names}

    def time_of(name: str, width: int) -> int:
        return -(-base[name] // width) + floor[name]

    return names, time_of


def _assert_same_search(new, old):
    assert new == old, f"search diverged:\n  new={new}\n  old={old}"


# ----------------------------------------------------------------------
# Function-level differential on random workloads.
# ----------------------------------------------------------------------


class TestFunctionLevel:
    @pytest.mark.parametrize("strategy", ["auto", "exhaustive", "greedy"])
    def test_enumerative_strategies_bit_identical(self, strategy):
        for seed in range(FUZZ_SEEDS):
            names, time_of = _random_workload(seed)
            rng = np.random.default_rng(1000 + seed)
            width = int(rng.integers(4, 25))
            max_parts = (
                None if rng.random() < 0.5 else int(rng.integers(1, 6))
            )
            min_width = int(rng.integers(1, 3))
            if width < min_width:
                continue
            kwargs = dict(max_parts=max_parts, min_width=min_width)
            if max_parts is not None and width // min_width < 1:
                continue
            try:
                old = legacy.legacy_search_partitions(
                    names, width, time_of, strategy=strategy, **kwargs
                )
            except ValueError:
                with pytest.raises(ValueError):
                    run_search(
                        names, width, time_of, strategy=strategy, **kwargs
                    )
                continue
            new = run_search(
                names, width, time_of, strategy=strategy, **kwargs
            )
            _assert_same_search(new, old)

    def test_anneal_bit_identical_to_fixed_legacy(self):
        for seed in range(FUZZ_SEEDS):
            names, time_of = _random_workload(seed)
            rng = np.random.default_rng(2000 + seed)
            width = int(rng.integers(4, 25))
            opts = dict(
                iterations=300,
                cooling=0.995,
                seed=int(rng.integers(0, 1 << 16)),
            )
            old = legacy.legacy_anneal_search_fixed(
                names, width, time_of, **opts
            )
            new = run_search(
                names, width, time_of, strategy="anneal", options=opts
            )
            _assert_same_search(new, old)

    def test_anneal_explicit_temperature_bit_identical(self):
        names, time_of = _random_workload(3)
        old = legacy.legacy_anneal_search_fixed(
            names, 12, time_of, iterations=500, initial_temperature=50.0,
            seed=9,
        )
        new = run_search(
            names, 12, time_of, strategy="anneal",
            options=dict(
                iterations=500, initial_temperature=50.0, seed=9
            ),
        )
        _assert_same_search(new, old)

    def test_scalar_kernels_bit_identical(self, monkeypatch):
        """REPRO_SCALAR_KERNELS exercises the per-call time_of path."""
        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
        for seed in range(min(FUZZ_SEEDS, 8)):
            names, time_of = _random_workload(seed)
            for strategy in ("exhaustive", "greedy"):
                old = legacy.legacy_search_partitions(
                    names, 14, time_of, strategy=strategy
                )
                new = run_search(names, 14, time_of, strategy=strategy)
                _assert_same_search(new, old)

    def test_auto_dispatch_matches_legacy_over_the_limit(self):
        """Past AUTO_PARTITION_LIMIT both stacks fall back to greedy."""
        names, time_of = _random_workload(0)
        old = legacy.legacy_search_partitions(names, 128, time_of)
        new = run_search(names, 128, time_of)
        assert old.strategy == "greedy"
        _assert_same_search(new, old)


# ----------------------------------------------------------------------
# Pipeline-level differential on the benchmark SOCs.
# ----------------------------------------------------------------------


class _LegacyArchitectureStage(Stage):
    """Step 3 exactly as it ran before the search layer existed."""

    name = "architecture"

    def __init__(self, strategy: str = "auto", anneal: bool = False) -> None:
        self.strategy = strategy
        self.anneal = anneal

    def run(self, ctx) -> None:
        config = ctx.config
        assert ctx.tables is not None
        if self.anneal:
            search = legacy.legacy_anneal_search_fixed(
                ctx.names,
                ctx.width_budget,
                ctx.tables.time_of,
                max_parts=config.max_tams,
                min_width=config.min_tam_width,
            )
        else:
            search = legacy.legacy_search_partitions(
                ctx.names,
                ctx.width_budget,
                ctx.tables.time_of,
                max_parts=config.max_tams,
                min_width=config.min_tam_width,
                strategy=self.strategy,
            )
        ctx.search = search
        ctx.partitions_evaluated = search.partitions_evaluated
        ctx.strategy = search.strategy


def _legacy_plan(soc, width, config, *, strategy="auto", anneal=False):
    pipeline = Pipeline(
        [
            WrapperStage(),
            DecompressorStage(),
            _LegacyArchitectureStage(strategy=strategy, anneal=anneal),
            stage_factory("schedule", "list")(),
        ],
        name="legacy-search",
    )
    return pipeline.run(soc, width, config)


def _assert_same_plan(new, old):
    assert new.architecture == old.architecture
    assert new.soc_name == old.soc_name
    assert new.width_budget == old.width_budget
    assert new.compression == old.compression
    assert new.partitions_evaluated == old.partitions_evaluated
    assert new.strategy == old.strategy
    assert new.test_time == old.test_time
    assert new.test_data_volume == old.test_data_volume
    assert new.tam_widths == old.tam_widths


class TestPipelineLevel:
    @pytest.mark.parametrize("design", ALL_DESIGNS)
    def test_auto_plan_bit_identical(self, design):
        soc = load_design(design)
        config = RunConfig(compression="auto")
        new = plan(soc, 16, config)
        old = _legacy_plan(soc, 16, config)
        _assert_same_plan(new, old)

    @pytest.mark.parametrize("design", ALL_DESIGNS)
    def test_anneal_plan_bit_identical(self, design):
        soc = load_design(design)
        new = plan(soc, 16, RunConfig(compression="auto", strategy="anneal"))
        old = _legacy_plan(
            soc, 16, RunConfig(compression="auto"), anneal=True
        )
        _assert_same_plan(new, old)

    @pytest.mark.parametrize("design", ["d695", "System1"])
    def test_greedy_plan_bit_identical(self, design):
        soc = load_design(design)
        new = plan(soc, 16, RunConfig(compression="auto", strategy="greedy"))
        old = _legacy_plan(
            soc, 16, RunConfig(compression="auto"), strategy="greedy"
        )
        _assert_same_plan(new, old)

    def test_search_opts_reach_the_backend(self):
        """Pipeline-carried hyperparameters match direct legacy calls."""
        soc = load_design("d695")
        new = plan(
            soc,
            16,
            RunConfig(
                compression="auto",
                strategy="anneal",
                search_opts=(("iterations", "900"), ("seed", "5")),
            ),
        )
        config = RunConfig(compression="auto")
        pipeline = Pipeline(
            [
                WrapperStage(),
                DecompressorStage(),
                _ParamAnnealStage(iterations=900, seed=5),
                stage_factory("schedule", "list")(),
            ],
            name="legacy-search",
        )
        old = pipeline.run(soc, 16, config)
        _assert_same_plan(new, old)


class _ParamAnnealStage(Stage):
    name = "architecture"

    def __init__(self, **opts) -> None:
        self.opts = opts

    def run(self, ctx) -> None:
        search = legacy.legacy_anneal_search_fixed(
            ctx.names,
            ctx.width_budget,
            ctx.tables.time_of,
            max_parts=ctx.config.max_tams,
            min_width=ctx.config.min_tam_width,
            **self.opts,
        )
        ctx.search = search
        ctx.partitions_evaluated = search.partitions_evaluated
        ctx.strategy = search.strategy
