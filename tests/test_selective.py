"""Unit tests for the selective-encoding codec."""

import numpy as np
import pytest

from repro.compression.cubes import X
from repro.compression.selective import (
    CONTROL_END,
    CONTROL_GROUP,
    CONTROL_SINGLE1,
    Codeword,
    code_parameters,
    codewords_from_bit_matrix,
    compression_ratio,
    encode_slice,
    encode_slices,
    encoded_bits,
    slice_costs,
    slice_width_range,
    stream_to_bit_matrix,
)


class TestCodeParameters:
    @pytest.mark.parametrize(
        "m,k,w",
        [
            (1, 1, 3),
            (2, 2, 4),
            (3, 2, 4),
            (7, 3, 5),
            (8, 4, 6),
            (127, 7, 9),
            (128, 8, 10),
            (255, 8, 10),
            (256, 9, 11),
        ],
    )
    def test_known_values(self, m, k, w):
        assert code_parameters(m) == (k, w)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            code_parameters(0)

    def test_paper_range_for_w10(self):
        # The paper: at w = 10, m varies between 128 and 255.
        rng = slice_width_range(10)
        assert rng.start == 128
        assert rng[-1] == 255

    def test_range_inverts_parameters(self):
        for w in range(3, 12):
            for m in slice_width_range(w):
                assert code_parameters(m)[1] == w

    def test_range_clipping(self):
        rng = slice_width_range(10, max_useful=200)
        assert rng[-1] == 200

    def test_range_rejects_narrow(self):
        with pytest.raises(ValueError):
            slice_width_range(2)


class TestCodeword:
    def test_control_range(self):
        with pytest.raises(ValueError):
            Codeword(control=4, payload=0)

    def test_payload_nonnegative(self):
        with pytest.raises(ValueError):
            Codeword(control=0, payload=-1)

    def test_to_bits(self):
        word = Codeword(control=2, payload=5)
        assert word.to_bits(5) == (1, 0, 1, 0, 1)

    def test_to_bits_overflow(self):
        with pytest.raises(ValueError, match="fit"):
            Codeword(control=0, payload=8).to_bits(5)


class TestEncodeSlice:
    def test_paper_example_xxx1000(self):
        """Target 1 at index 3 of XXX1000 -> one single-bit code."""
        slice_bits = [X, X, X, 1, 0, 0, 0]
        words = encode_slice(slice_bits)
        assert words[0] == Codeword(CONTROL_SINGLE1, 3)
        assert words[-1].control == CONTROL_END
        assert words[-1].payload == 0  # fill symbol 0
        assert len(words) == 2

    def test_all_x_slice_costs_one(self):
        words = encode_slice([X] * 9)
        assert len(words) == 1
        assert words[0].control == CONTROL_END

    def test_uniform_zero_slice_costs_one(self):
        # All-0 care bits: target is 1 (none present), fill 0.
        words = encode_slice([0] * 9)
        assert len(words) == 1
        assert words[0].payload == 0

    def test_uniform_one_slice_costs_one(self):
        words = encode_slice([1] * 9)
        assert len(words) == 1
        assert words[0].payload == 1  # fill symbol 1, target 0 absent

    def test_group_copy_kicks_in(self):
        # m = 8 -> k = 4; first group 0..3 holds three 1s among 0s.
        slice_bits = [1, 1, 1, 0, 0, 0, 0, 0]
        words = encode_slice(slice_bits)
        controls = [w.control for w in words]
        assert CONTROL_GROUP in controls
        # GROUP + literal + END = 3 words (cheaper than 3 singles + END).
        assert len(words) == 3

    def test_group_literal_contents(self):
        slice_bits = [1, 1, 1, 0, 0, 0, 0, 0]
        words = encode_slice(slice_bits)
        group = words[0]
        literal = words[1]
        assert group.payload == 0  # group starts at bit 0
        assert literal.payload == 0b1110

    def test_minority_symbol_encoded(self):
        # Five 0s, two 1s: target must be 1.
        slice_bits = [0, 0, 0, 0, 0, 1, 1]
        words = encode_slice(slice_bits)
        singles = [w for w in words if w.control == CONTROL_SINGLE1]
        assert {w.payload for w in singles} == {5, 6}

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            encode_slice([])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            encode_slice(np.zeros((2, 2), dtype=np.int8))


class TestSliceCosts:
    def test_matches_encoder_exhaustively_small(self):
        """Vectorized cost must equal len(encode_slice) for all 3^5 slices."""
        m = 5
        values = np.array(
            np.meshgrid(*[[0, 1, 2]] * m, indexing="ij")
        ).reshape(m, -1).T.astype(np.int8)
        vector = slice_costs(values)
        for row, cost in zip(values, vector):
            assert len(encode_slice(row)) == cost

    def test_matches_encoder_random(self, rng):
        for m in (3, 8, 17, 40):
            slices = rng.integers(0, 3, size=(50, m)).astype(np.int8)
            vector = slice_costs(slices)
            direct = [len(encode_slice(row)) for row in slices]
            assert vector.tolist() == direct

    def test_three_dimensional_input(self, rng):
        slices = rng.integers(0, 3, size=(4, 6, 9)).astype(np.int8)
        flat = slices.reshape(-1, 9)
        assert np.array_equal(slice_costs(slices), slice_costs(flat))

    def test_minimum_cost_is_one(self, rng):
        slices = rng.integers(0, 3, size=(100, 12)).astype(np.int8)
        assert slice_costs(slices).min() >= 1

    def test_cost_grows_with_care_density(self, rng):
        m = 64
        sparse = np.where(rng.random((200, m)) < 0.05, 1, X).astype(np.int8)
        dense = np.where(rng.random((200, m)) < 0.5, 1, X).astype(np.int8)
        # All-1 targets become fill -> both are cheap; mix in zeros.
        sparse[rng.random((200, m)) < 0.05] = 0
        dense[rng.random((200, m)) < 0.5] = 0
        assert slice_costs(dense).mean() > slice_costs(sparse).mean()


class TestStreams:
    def test_encode_slices_counts(self, rng):
        slices = rng.integers(0, 3, size=(10, 12)).astype(np.int8)
        stream = encode_slices(slices)
        assert stream.slice_count == 10
        assert stream.cycles == int(slice_costs(slices).sum())
        assert stream.total_bits == stream.cycles * stream.code_width

    def test_encoded_bits_helper(self, rng):
        slices = rng.integers(0, 3, size=(10, 12)).astype(np.int8)
        assert encoded_bits(slices) == encode_slices(slices).total_bits

    def test_bit_matrix_roundtrip(self, rng):
        slices = rng.integers(0, 3, size=(6, 9)).astype(np.int8)
        stream = encode_slices(slices)
        matrix = stream_to_bit_matrix(stream)
        assert matrix.shape == (stream.cycles, stream.code_width)
        words = codewords_from_bit_matrix(matrix)
        assert tuple(words) == stream.codewords

    def test_bit_matrix_width_guard(self):
        with pytest.raises(ValueError):
            codewords_from_bit_matrix(np.zeros((3, 2), dtype=np.int8))

    def test_compression_ratio(self):
        assert compression_ratio(100, 25) == 4.0
        assert compression_ratio(100, 0) == float("inf")
