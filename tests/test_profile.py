"""Tests for schedule profiling (utilization + power envelope)."""

import pytest

import repro
from repro.core.optimizer import optimize_soc_constrained
from repro.power.model import power_table
from repro.reporting.profile import (
    peak_power,
    power_profile,
    render_power_profile,
    render_utilization,
    tam_utilization,
)
from repro.soc.core import Core
from repro.soc.soc import Soc


@pytest.fixture(scope="module")
def planned():
    cores = tuple(
        Core(
            name=f"c{i}",
            inputs=6,
            outputs=6,
            scan_chain_lengths=(30,) * (8 + 2 * i),
            patterns=40,
            care_bit_density=0.04,
            seed=970 + i,
        )
        for i in range(3)
    )
    soc = Soc(name="prof", cores=cores)
    return soc, repro.optimize_soc(soc, 10, compression=True)


class TestUtilization:
    def test_per_tam_entries(self, planned):
        _, plan = planned
        stats = tam_utilization(plan.architecture)
        assert len(stats) == len(plan.tam_widths)
        assert all(0.0 <= s.utilization <= 1.0 for s in stats)

    def test_some_tam_fully_busy(self, planned):
        """The bottleneck TAM is busy from 0 to the makespan."""
        _, plan = planned
        stats = tam_utilization(plan.architecture)
        assert any(s.utilization == pytest.approx(1.0) for s in stats)

    def test_busy_cycles_sum(self, planned):
        _, plan = planned
        stats = tam_utilization(plan.architecture)
        total_busy = sum(s.busy_cycles for s in stats)
        expected = sum(
            s.end - s.start for s in plan.architecture.scheduled
        )
        assert total_busy == expected

    def test_render(self, planned):
        _, plan = planned
        text = render_utilization(plan.architecture)
        assert "TAM utilization" in text
        assert "% busy" in text
        assert "wire-cycles" in text


class TestD695Utilization:
    """Satellite coverage on the paper's own benchmark (ITC'02 d695)."""

    @pytest.fixture(scope="class")
    def d695_planned(self):
        from repro.soc.benchmarks import load_benchmark

        soc = load_benchmark("d695")
        return soc, repro.plan(soc, 16)

    def test_wire_cycles_wasted_arithmetic(self, d695_planned):
        _, plan = d695_planned
        for s in tam_utilization(plan.architecture):
            assert s.wire_cycles_wasted == (
                (s.total_cycles - s.busy_cycles) * s.width
            )
            assert s.wire_cycles_wasted >= 0

    def test_total_cycles_is_the_makespan_everywhere(self, d695_planned):
        _, plan = d695_planned
        stats = tam_utilization(plan.architecture)
        assert {s.total_cycles for s in stats} == {plan.test_time}
        # One TAM per partition slot, widths matching the architecture.
        assert [s.width for s in stats] == list(plan.tam_widths)

    def test_bottleneck_tam_wastes_nothing(self, d695_planned):
        _, plan = d695_planned
        stats = tam_utilization(plan.architecture)
        bottleneck = max(stats, key=lambda s: s.utilization)
        assert bottleneck.utilization == pytest.approx(1.0)
        assert bottleneck.wire_cycles_wasted == 0

    def test_busy_cycles_sum_matches_schedule(self, d695_planned):
        _, plan = d695_planned
        stats = tam_utilization(plan.architecture)
        assert sum(s.busy_cycles for s in stats) == sum(
            s.end - s.start for s in plan.architecture.scheduled
        )

    def test_power_profile_conserves_area(self, d695_planned):
        """Integral of the step function == sum of core power*duration."""
        soc, plan = d695_planned
        table = power_table(soc, compression=True)
        profile = power_profile(plan.architecture, table)
        times = [t for t, _ in profile] + [plan.test_time]
        area = sum(
            level * (times[i + 1] - times[i])
            for i, (_, level) in enumerate(profile)
        )
        expected = sum(
            table[s.config.core_name] * (s.end - s.start)
            for s in plan.architecture.scheduled
        )
        assert area == pytest.approx(expected)

    def test_render_utilization_reports_overall_share(self, d695_planned):
        _, plan = d695_planned
        text = render_utilization(plan.architecture)
        assert "TAM utilization:" in text
        assert "of wire-cycles carry test data" in text


class TestPowerProfile:
    def test_profile_starts_at_zero_time(self, planned):
        soc, plan = planned
        table = power_table(soc, compression=True)
        profile = power_profile(plan.architecture, table)
        assert profile[0][0] == 0
        # The session ends with all tests done: final level is zero.
        assert profile[-1][1] == pytest.approx(0.0, abs=1e-9)

    def test_peak_matches_constrained_scheduler(self):
        cores = tuple(
            Core(
                name=f"p{i}",
                inputs=4,
                outputs=4,
                scan_chain_lengths=(25,) * 10,
                patterns=30,
                care_bit_density=0.04,
                seed=980 + i,
            )
            for i in range(3)
        )
        soc = Soc(name="pp", cores=cores)
        table = power_table(soc, compression=True)
        budget = sum(table.values())  # loose
        plan = optimize_soc_constrained(
            soc, 9, compression=True, power_budget=budget
        )
        profile = power_profile(plan.architecture, table)
        assert peak_power(profile) == pytest.approx(plan.peak_power)

    def test_levels_never_negative(self, planned):
        soc, plan = planned
        table = power_table(soc, compression=True)
        profile = power_profile(plan.architecture, table)
        assert all(level >= -1e-9 for _, level in profile)

    def test_render_with_budget_marker(self, planned):
        soc, plan = planned
        table = power_table(soc, compression=True)
        text = render_power_profile(
            plan.architecture, table, budget=1.2 * max(table.values())
        )
        assert "power profile" in text
        assert "budget" in text
        assert "#" in text

    def test_render_empty(self):
        from repro.core.architecture import (
            DecompressorPlacement,
            Tam,
            TestArchitecture,
        )

        empty = TestArchitecture(
            soc_name="e",
            placement=DecompressorPlacement.NONE,
            tams=(Tam(0, 1),),
            scheduled=(),
            ate_channels=1,
        )
        assert render_power_profile(empty, {}) == "(empty schedule)"
