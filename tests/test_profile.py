"""Tests for schedule profiling (utilization + power envelope)."""

import pytest

import repro
from repro.core.optimizer import optimize_soc_constrained
from repro.power.model import power_table
from repro.reporting.profile import (
    peak_power,
    power_profile,
    render_power_profile,
    render_utilization,
    tam_utilization,
)
from repro.soc.core import Core
from repro.soc.soc import Soc


@pytest.fixture(scope="module")
def planned():
    cores = tuple(
        Core(
            name=f"c{i}",
            inputs=6,
            outputs=6,
            scan_chain_lengths=(30,) * (8 + 2 * i),
            patterns=40,
            care_bit_density=0.04,
            seed=970 + i,
        )
        for i in range(3)
    )
    soc = Soc(name="prof", cores=cores)
    return soc, repro.optimize_soc(soc, 10, compression=True)


class TestUtilization:
    def test_per_tam_entries(self, planned):
        _, plan = planned
        stats = tam_utilization(plan.architecture)
        assert len(stats) == len(plan.tam_widths)
        assert all(0.0 <= s.utilization <= 1.0 for s in stats)

    def test_some_tam_fully_busy(self, planned):
        """The bottleneck TAM is busy from 0 to the makespan."""
        _, plan = planned
        stats = tam_utilization(plan.architecture)
        assert any(s.utilization == pytest.approx(1.0) for s in stats)

    def test_busy_cycles_sum(self, planned):
        _, plan = planned
        stats = tam_utilization(plan.architecture)
        total_busy = sum(s.busy_cycles for s in stats)
        expected = sum(
            s.end - s.start for s in plan.architecture.scheduled
        )
        assert total_busy == expected

    def test_render(self, planned):
        _, plan = planned
        text = render_utilization(plan.architecture)
        assert "TAM utilization" in text
        assert "% busy" in text
        assert "wire-cycles" in text


class TestPowerProfile:
    def test_profile_starts_at_zero_time(self, planned):
        soc, plan = planned
        table = power_table(soc, compression=True)
        profile = power_profile(plan.architecture, table)
        assert profile[0][0] == 0
        # The session ends with all tests done: final level is zero.
        assert profile[-1][1] == pytest.approx(0.0, abs=1e-9)

    def test_peak_matches_constrained_scheduler(self):
        cores = tuple(
            Core(
                name=f"p{i}",
                inputs=4,
                outputs=4,
                scan_chain_lengths=(25,) * 10,
                patterns=30,
                care_bit_density=0.04,
                seed=980 + i,
            )
            for i in range(3)
        )
        soc = Soc(name="pp", cores=cores)
        table = power_table(soc, compression=True)
        budget = sum(table.values())  # loose
        plan = optimize_soc_constrained(
            soc, 9, compression=True, power_budget=budget
        )
        profile = power_profile(plan.architecture, table)
        assert peak_power(profile) == pytest.approx(plan.peak_power)

    def test_levels_never_negative(self, planned):
        soc, plan = planned
        table = power_table(soc, compression=True)
        profile = power_profile(plan.architecture, table)
        assert all(level >= -1e-9 for _, level in profile)

    def test_render_with_budget_marker(self, planned):
        soc, plan = planned
        table = power_table(soc, compression=True)
        text = render_power_profile(
            plan.architecture, table, budget=1.2 * max(table.values())
        )
        assert "power profile" in text
        assert "budget" in text
        assert "#" in text

    def test_render_empty(self):
        from repro.core.architecture import (
            DecompressorPlacement,
            Tam,
            TestArchitecture,
        )

        empty = TestArchitecture(
            soc_name="e",
            placement=DecompressorPlacement.NONE,
            tams=(Tam(0, 1),),
            scheduled=(),
            ate_channels=1,
        )
        assert render_power_profile(empty, {}) == "(empty schedule)"
