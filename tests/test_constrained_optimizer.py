"""Integration tests for the power/precedence-constrained co-optimizer."""

import pytest

from repro.core.optimizer import optimize_soc, optimize_soc_constrained
from repro.power.model import power_table
from repro.soc.core import Core
from repro.soc.soc import Soc


@pytest.fixture
def quad_soc() -> Soc:
    cores = tuple(
        Core(
            name=f"c{i}",
            inputs=6,
            outputs=6,
            scan_chain_lengths=tuple([30] * (6 + 2 * i)),
            patterns=30 + 5 * i,
            care_bit_density=0.04,
            one_fraction=0.3,
            seed=700 + i,
        )
        for i in range(4)
    )
    return Soc(name="quad", cores=cores)


class TestUnconstrainedAgreement:
    def test_matches_plain_optimizer_without_constraints(self, quad_soc):
        plain = optimize_soc(quad_soc, 12, compression=True)
        constrained = optimize_soc_constrained(quad_soc, 12, compression=True)
        assert constrained.test_time == plain.test_time
        assert constrained.tam_idle_cycles == 0


class TestPowerBudget:
    def test_loose_budget_is_free(self, quad_soc):
        table = power_table(quad_soc, compression=True)
        loose = optimize_soc_constrained(
            quad_soc, 12, compression=True, power_budget=sum(table.values()) * 2
        )
        free = optimize_soc_constrained(quad_soc, 12, compression=True)
        assert loose.test_time == free.test_time

    def test_tight_budget_slows_but_respects_peak(self, quad_soc):
        table = power_table(quad_soc, compression=True)
        budget = max(table.values()) * 1.2  # barely one heavy core at a time
        tight = optimize_soc_constrained(
            quad_soc, 12, compression=True, power_budget=budget
        )
        free = optimize_soc_constrained(quad_soc, 12, compression=True)
        assert tight.peak_power <= budget + 1e-9
        assert tight.test_time >= free.test_time
        assert tight.power_budget == budget

    def test_infeasible_budget_raises(self, quad_soc):
        with pytest.raises(ValueError, match="exceeds the power budget"):
            optimize_soc_constrained(
                quad_soc, 12, compression=True, power_budget=1e-6
            )

    def test_explicit_power_of(self, quad_soc):
        custom = {name: 1.0 for name in quad_soc.core_names}
        result = optimize_soc_constrained(
            quad_soc, 12, compression=True, power_of=custom, power_budget=2.0
        )
        assert result.peak_power <= 2.0


class TestPrecedence:
    def test_precedence_ordering_respected(self, quad_soc):
        result = optimize_soc_constrained(
            quad_soc,
            12,
            compression=True,
            precedence=(("c3", "c0"), ("c2", "c0")),
        )
        slots = {
            s.config.core_name: s for s in result.architecture.scheduled
        }
        assert slots["c0"].start >= slots["c3"].end
        assert slots["c0"].start >= slots["c2"].end

    def test_precedence_never_faster(self, quad_soc):
        free = optimize_soc_constrained(quad_soc, 12, compression=True)
        chained = optimize_soc_constrained(
            quad_soc,
            12,
            compression=True,
            precedence=(("c0", "c1"), ("c1", "c2"), ("c2", "c3")),
        )
        assert chained.test_time >= free.test_time

    def test_architecture_valid_with_gaps(self, quad_soc):
        # The TestArchitecture overlap validation must accept idle gaps.
        result = optimize_soc_constrained(
            quad_soc,
            12,
            compression=True,
            precedence=(("c0", "c1"),),
            power_budget=1e9,
        )
        assert result.architecture.test_time == result.test_time


class TestCompressionInteraction:
    def test_compression_lowers_power_budget_pressure(self, quad_soc):
        """With majority fill, the same absolute budget hurts less."""
        budget = max(power_table(quad_soc, compression=False).values()) * 1.5
        plain = optimize_soc_constrained(
            quad_soc, 12, compression=False, power_budget=budget
        )
        packed = optimize_soc_constrained(
            quad_soc, 12, compression=True, power_budget=budget
        )
        # Compressed tests are both faster and cooler.
        assert packed.test_time < plain.test_time
        assert packed.peak_power < plain.peak_power
