"""Unit tests for hierarchical spans and the Chrome trace export."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.trace import Span, Tracer, chrome_trace, write_chrome_trace


class TestTracer:
    def test_nesting_builds_slash_paths(self):
        tracer = Tracer()
        with tracer.span("pipeline"):
            with tracer.span("wrapper"):
                with tracer.span("analyze"):
                    pass
            with tracer.span("schedule"):
                pass
        paths = [s.path for s in tracer.spans]
        # Innermost spans close (and record) first.
        assert paths == [
            "pipeline/wrapper/analyze",
            "pipeline/wrapper",
            "pipeline/schedule",
            "pipeline",
        ]

    def test_span_yields_mutable_attrs(self):
        tracer = Tracer()
        with tracer.span("search", strategy="greedy") as attrs:
            attrs["partitions"] = 42
        span = tracer.spans[0]
        assert span.attrs == {"strategy": "greedy", "partitions": 42}
        assert span.end >= span.start
        assert span.pid == os.getpid()

    def test_error_path_still_records_with_error_attr(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("exploding"):
                raise RuntimeError("boom")
        assert len(tracer.spans) == 1
        assert "RuntimeError" in tracer.spans[0].attrs["error"]
        # The stack unwound: a following span is top-level again.
        with tracer.span("after"):
            pass
        assert tracer.spans[-1].path == "after"

    def test_instant_records_zero_duration(self):
        tracer = Tracer()
        with tracer.span("stage"):
            tracer.instant("cache-stats", hits=3)
        instant = tracer.spans[0]
        assert instant.kind == "instant"
        assert instant.start == instant.end
        assert instant.path == "stage/cache-stats"

    def test_current_path(self):
        tracer = Tracer()
        assert tracer.current_path() == ""
        with tracer.span("a"):
            with tracer.span("b"):
                assert tracer.current_path() == "a/b"
        assert tracer.current_path() == ""

    def test_snapshot_round_trips_through_from_dict(self):
        tracer = Tracer()
        with tracer.span("a", n=1):
            pass
        [data] = tracer.snapshot()
        assert Span.from_dict(data) == tracer.spans[0]

    def test_merge_reroots_paths_and_keeps_lanes(self):
        worker = Tracer()
        with worker.span("analyze:c1"):
            pass
        shipped = worker.snapshot()
        # Simulate a worker pid distinct from the parent's.
        shipped[0]["pid"] = 99999

        parent = Tracer()
        with parent.span("pipeline"):
            with parent.span("wrapper"):
                parent.merge(shipped, parent_path=parent.current_path())
        merged = parent.spans[0]
        assert merged.path == "pipeline/wrapper/analyze:c1"
        assert merged.pid == 99999
        assert merged.name == "analyze:c1"

    def test_merge_without_parent_path_keeps_paths(self):
        worker = Tracer()
        with worker.span("task"):
            pass
        parent = Tracer()
        assert parent.merge(worker.snapshot()) == 1
        assert parent.spans[0].path == "task"

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.spans == []


class TestChromeTrace:
    def _spans(self):
        tracer = Tracer()
        with tracer.span("pipeline"):
            with tracer.span("wrapper"):
                pass
            tracer.instant("marker", n=1)
        return tracer.spans

    def test_structure(self):
        doc = chrome_trace(self._spans())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X", "i"}
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"pipeline", "wrapper"}
        for event in complete:
            assert event["ts"] >= 0  # normalized to the earliest span
            assert event["dur"] >= 0
            assert "path" in event["args"]

    def test_accepts_portable_dicts(self):
        spans = self._spans()
        as_dicts = [s.to_dict() for s in spans]
        assert chrome_trace(as_dicts) == chrome_trace(spans)

    def test_process_metadata_labels_workers(self):
        spans = self._spans()
        worker = Span(
            name="analyze", path="analyze", start=spans[0].start,
            end=spans[0].end, pid=99999, tid=1,
        )
        doc = chrome_trace(list(spans) + [worker])
        meta = {
            e["pid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M"
        }
        assert meta[99999].startswith("repro worker")
        assert meta[os.getpid()].startswith("repro (")

    def test_empty_input(self):
        assert chrome_trace([]) == {
            "traceEvents": [],
            "displayTimeUnit": "ms",
        }

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, self._spans())
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
