"""Structured service logging with request correlation.

The offline observability stack (:mod:`repro.obs.trace` /
:mod:`repro.obs.report`) answers "what did that run do"; a long-lived
service also needs "what is happening right now", greppable and
machine-parseable.  This module provides that layer on top of stdlib
``logging`` -- library code never prints (pinned by
``tests/test_no_library_prints.py``); it emits structured events that a
service process renders as JSON lines and an embedded library caller
can ignore entirely (the ``repro`` logger carries a ``NullHandler``, so
unconfigured processes stay silent).

Correlation
-----------
Every log record carries the **request id** bound in the current
:mod:`contextvars` context.  The serve path binds one per protocol
request (:func:`bind_request_id`), so a single client submission is one
greppable thread through client, server, queue, and worker logs -- and
the same id tags the request's spans, which is what stitches the
cross-process trace together (see ``docs/observability.md``).

Usage::

    from repro.obs.logging import bind_request_id, get_logger

    log = get_logger("repro.serve.service")

    with bind_request_id("req-4f2a9c"):
        log.info("job-dispatched", job_id=job.id, design="d695")

A service front end calls :func:`configure_json_logging` once to
render every ``repro.*`` record as one JSON object per line::

    {"ts": 1723045192.113, "level": "info", "logger": "repro.serve.service",
     "event": "job-dispatched", "request_id": "req-4f2a9c",
     "job_id": "job-e01b", "design": "d695"}
"""

from __future__ import annotations

import contextvars
import json
import logging
import sys
import uuid
from contextlib import contextmanager
from typing import Any, Iterator, TextIO

#: The contextvar carrying the current request id ("" when unbound).
_REQUEST_ID: contextvars.ContextVar[str] = contextvars.ContextVar(
    "repro_request_id", default=""
)

#: Attribute name structured fields travel under on a ``LogRecord``.
_FIELDS_ATTR = "repro_fields"

#: Root logger of the whole library; attaching a NullHandler here keeps
#: unconfigured embedders silent (no ``lastResort`` stderr spill).
ROOT_LOGGER_NAME = "repro"

logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())


def new_request_id() -> str:
    """A fresh correlation id (``req-`` + 12 hex chars)."""
    return f"req-{uuid.uuid4().hex[:12]}"


def current_request_id() -> str:
    """The request id bound in this context ("" when none is)."""
    return _REQUEST_ID.get()


@contextmanager
def bind_request_id(request_id: str) -> Iterator[str]:
    """Bind ``request_id`` for the duration of the ``with`` block.

    Bindings nest and are restored on exit; an empty id is replaced by
    a freshly minted one, so callers can bind unconditionally.
    """
    rid = request_id or new_request_id()
    token = _REQUEST_ID.set(rid)
    try:
        yield rid
    finally:
        _REQUEST_ID.reset(token)


class StructuredLogger:
    """Thin event-logging facade over one stdlib logger.

    Methods take an **event name** (short, kebab-case, stable -- the
    greppable key) plus free-form keyword fields.  Rendering is the
    handler's business: under :class:`JsonLineFormatter` the record
    becomes one JSON object; under any ordinary formatter the message
    reads ``event key=value ...``.
    """

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    @property
    def stdlib(self) -> logging.Logger:
        """The wrapped :class:`logging.Logger` (for handler wiring)."""
        return self._logger

    def _emit(self, level: int, event: str, fields: dict[str, Any]) -> None:
        if not self._logger.isEnabledFor(level):
            return
        rid = _REQUEST_ID.get()
        message = event
        if fields:
            rendered = " ".join(f"{k}={v!r}" for k, v in fields.items())
            message = f"{event} {rendered}"
        extra = {_FIELDS_ATTR: {"event": event, "request_id": rid, **fields}}
        self._logger.log(level, message, extra=extra)

    def debug(self, event: str, **fields: Any) -> None:
        self._emit(logging.DEBUG, event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._emit(logging.INFO, event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._emit(logging.WARNING, event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._emit(logging.ERROR, event, fields)


def get_logger(name: str) -> StructuredLogger:
    """The structured logger for ``name`` (a ``repro.*`` module path)."""
    return StructuredLogger(logging.getLogger(name))


class JsonLineFormatter(logging.Formatter):
    """Render each record as one JSON object per line.

    Structured records (emitted through :class:`StructuredLogger`)
    contribute their event name and fields verbatim; plain records
    (e.g. the pipeline's run-event mirror) land with their formatted
    message under ``"event": "log"`` so one stream carries both.
    Non-JSON-serializable field values degrade to ``repr`` rather than
    failing the log call.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
        }
        fields = getattr(record, _FIELDS_ATTR, None)
        if fields is None:
            payload["event"] = "log"
            payload["request_id"] = _REQUEST_ID.get()
            payload["message"] = record.getMessage()
        else:
            payload.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = repr(record.exc_info[1])
        return json.dumps(payload, sort_keys=False, default=repr)


def configure_json_logging(
    stream: TextIO | None = None,
    *,
    level: int = logging.INFO,
    logger_name: str = ROOT_LOGGER_NAME,
) -> logging.Handler:
    """Attach a JSON-lines handler to the ``repro`` logger tree.

    Idempotent per stream: calling again for a stream that already has
    a JSON handler returns the existing one (so repeated ``serve``
    invocations in one process never double-log).  Returns the handler
    so callers (tests, shutdown paths) can detach it with
    :func:`remove_json_logging`.
    """
    target = stream if stream is not None else sys.stderr
    logger = logging.getLogger(logger_name)
    for handler in logger.handlers:
        if (
            isinstance(handler, logging.StreamHandler)
            and isinstance(handler.formatter, JsonLineFormatter)
            and handler.stream is target
        ):
            handler.setLevel(level)
            logger.setLevel(min(logger.level or level, level))
            return handler
    handler = logging.StreamHandler(target)
    handler.setLevel(level)
    handler.setFormatter(JsonLineFormatter())
    logger.addHandler(handler)
    if logger.level == logging.NOTSET or logger.level > level:
        logger.setLevel(level)
    return handler


def remove_json_logging(
    handler: logging.Handler, *, logger_name: str = ROOT_LOGGER_NAME
) -> None:
    """Detach a handler :func:`configure_json_logging` installed."""
    logging.getLogger(logger_name).removeHandler(handler)


def parse_json_log_line(line: str) -> dict[str, Any]:
    """Parse one JSON log line back to its payload (tests, ``top``).

    Raises :class:`ValueError` on lines that are not JSON objects, so
    callers can skip interleaved non-log output explicitly.
    """
    data = json.loads(line)
    if not isinstance(data, dict):
        raise ValueError(f"log line is not an object: {line!r}")
    return data


__all__ = [
    "JsonLineFormatter",
    "StructuredLogger",
    "bind_request_id",
    "configure_json_logging",
    "current_request_id",
    "get_logger",
    "new_request_id",
    "parse_json_log_line",
    "remove_json_logging",
]
