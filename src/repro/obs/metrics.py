"""Process-local metrics: counters, gauges, histograms, registries.

A :class:`MetricsRegistry` is a named bag of instruments.  Each process
owns its registries outright -- there is no shared memory and no
background aggregator.  Cross-process collection is explicit instead:
a worker snapshots its registry (:meth:`MetricsRegistry.snapshot`, a
plain JSON-ready dict) and returns the snapshot alongside its results;
the parent folds it in with :meth:`MetricsRegistry.merge`.  That keeps
the instruments lock-cheap on the hot path and makes the merge points
visible in the code that owns them (see
:func:`repro.explore.dse.analyze_soc_cores`).

Instrument semantics follow the usual conventions:

* **Counter** -- monotonically increasing total; merges by addition.
* **Gauge** -- last-observed value; a merge keeps the parent's value
  and only adopts keys the parent has never set.
* **Histogram** -- fixed bucket boundaries chosen at creation time
  (never resized, so histograms from different processes merge by
  element-wise addition).  ``counts[i]`` holds observations with
  ``value <= boundaries[i]``; the final bucket is the overflow.

The module-level :func:`default_registry` exists for convenience;
injectable instances (the pipeline threads one through
:class:`repro.obs.context.Observability`) are the primary citizens.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Iterable, Mapping

#: Default histogram boundaries, in seconds: spans the microsecond
#: lookup memos up to the minutes-long industrial analyses.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

#: Latency-tuned boundaries, in seconds: a finer low-millisecond ramp
#: for service request/job latencies, where the default engine buckets
#: are too coarse to separate a 2 ms dedup hit from a 40 ms plan.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Observation distribution over fixed bucket boundaries."""

    __slots__ = ("boundaries", "counts", "total", "count")

    def __init__(self, boundaries: Iterable[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError("a histogram needs at least one boundary")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"boundaries must strictly increase, got {bounds}")
        self.boundaries = bounds
        #: counts[i] <= boundaries[i]; counts[-1] is the overflow bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile by linear in-bucket interpolation.

        The standard bucketed estimate (what Prometheus's
        ``histogram_quantile`` computes): find the bucket the target
        rank falls in, then interpolate linearly between its bounds,
        assuming observations spread uniformly inside the bucket.

        Edge conventions, pinned by tests:

        * an **empty** histogram returns ``0.0``;
        * a rank in the **first** bucket interpolates from ``0.0`` to
          its upper boundary (observations are assumed non-negative,
          which every duration/latency metric in this codebase is);
        * a rank in the **overflow** bucket returns the last finite
          boundary -- the histogram cannot see past it, so it reports
          the largest value it can certify (again the Prometheus
          convention).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if i == len(self.boundaries):
                return self.boundaries[-1]  # overflow bucket
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                lower = self.boundaries[i - 1] if i else 0.0
                upper = self.boundaries[i]
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * fraction
        return self.boundaries[-1]  # pragma: no cover - defensive


class MetricsRegistry:
    """A named bag of counters, gauges, and histograms.

    Instrument creation is serialized under a lock; the returned
    instrument objects themselves are plain attribute updates, cheap
    enough for per-core (not per-lookup) granularity on hot paths.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument access (get-or-create).
    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter())
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge())
        return gauge

    def histogram(
        self, name: str, boundaries: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(
                    name, Histogram(boundaries)
                )
        return histogram

    # ------------------------------------------------------------------
    # One-line conveniences.
    # ------------------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(
        self,
        name: str,
        value: float,
        boundaries: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.histogram(name, boundaries).observe(value)

    # ------------------------------------------------------------------
    # Snapshot / merge: the cross-process protocol.
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready dump of every instrument's current state."""
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in sorted(self._counters.items())
                },
                "gauges": {
                    name: g.value for name, g in sorted(self._gauges.items())
                },
                "histograms": {
                    name: {
                        "boundaries": list(h.boundaries),
                        "counts": list(h.counts),
                        "sum": h.total,
                        "count": h.count,
                    }
                    for name, h in sorted(self._histograms.items())
                },
            }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) in.

        Counters and histograms add; histogram boundaries must match
        (they are fixed at creation and identical across processes
        running the same code).  Gauges keep the parent's value -- a
        worker's point-in-time reading does not override the parent's --
        and are only adopted for names the parent never set.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            if name not in self._gauges:
                self.set_gauge(name, value)
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, data["boundaries"])
            if list(histogram.boundaries) != [
                float(b) for b in data["boundaries"]
            ]:
                raise ValueError(
                    f"histogram {name!r} boundary mismatch on merge"
                )
            for i, count in enumerate(data["counts"]):
                histogram.counts[i] += int(count)
            histogram.total += float(data["sum"])
            histogram.count += int(data["count"])

    def clear(self) -> None:
        """Drop every instrument (tests use this for isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide fallback registry."""
    return _DEFAULT
