"""OpenMetrics / Prometheus text exposition of a metrics snapshot.

Renders a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` as the
OpenMetrics text format (the Prometheus exposition format plus the
``# EOF`` terminator), so any standard scraper -- or a human with
``curl`` -- can read the serve ``metrics`` op:

* counters become ``<prefix>_<name>_total`` with ``# TYPE ... counter``;
* gauges become ``<prefix>_<name>`` with ``# TYPE ... gauge``;
* histograms become the conventional triplet: cumulative
  ``_bucket{le="..."}`` series (including the ``+Inf`` overflow),
  ``_sum``, and ``_count``.

Metric names are sanitized to the OpenMetrics grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): the registry's dotted names
(``serve.jobs_completed``) map to underscores
(``repro_serve_jobs_completed_total``).  The mapping is lossy, so two
distinct dotted names can land on the same exposed family
(``serve.jobs`` vs ``serve_jobs``); rather than silently merging them
into one family with duplicate series, :func:`render_openmetrics`
detects the collision within the snapshot and raises ``ValueError``
naming both dotted sources.  Instrument names should stay within
``[a-z0-9._]`` (every name in this codebase does).

This module renders; it does not serve HTTP.  The planning service
exposes the text through its own line-JSON protocol (the ``metrics``
op), which keeps the stdlib-only transport story intact; an HTTP
scrape bridge is a dozen lines on top of
:meth:`ServiceClient.metrics <repro.serve.client.ServiceClient.metrics>`.
"""

from __future__ import annotations

import re
from typing import Any, Mapping

#: Content type a conforming HTTP bridge should declare.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Map a registry name onto the OpenMetrics name grammar."""
    cleaned = _NAME_OK.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned


def _format_value(value: float) -> str:
    """Canonical number rendering (integers without a trailing .0)."""
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _format_le(boundary: float) -> str:
    return _format_value(boundary)


def render_openmetrics(
    snapshot: Mapping[str, Any],
    *,
    prefix: str = "repro",
    help_text: Mapping[str, str] | None = None,
) -> str:
    """Render a metrics snapshot as OpenMetrics text.

    ``snapshot`` is the JSON-ready dict
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` produces
    (``{"counters": ..., "gauges": ..., "histograms": ...}``).
    ``help_text`` optionally maps *registry* names (pre-sanitization,
    without the prefix) to ``# HELP`` strings.  Output is
    deterministic: families are sorted by name within each type.

    Raises ``ValueError`` when two distinct registry names in the
    snapshot collide on the same exposed family after sanitization
    (e.g. ``serve.jobs`` and ``serve_jobs``): a scraper fed duplicate
    families would silently merge or reject them, so the renderer
    refuses instead, naming both dotted sources.
    """
    helps = dict(help_text or {})
    lines: list[str] = []
    claimed: dict[str, str] = {}

    def family(name: str) -> str:
        base = sanitize_metric_name(name)
        return f"{sanitize_metric_name(prefix)}_{base}" if prefix else base

    def claim(exposed: str, name: str, kind: str) -> None:
        source = f"{kind} {name!r}"
        other = claimed.setdefault(exposed, source)
        if other != source:
            raise ValueError(
                "metric name collision after sanitization: "
                f"{other} and {source} both expose {exposed!r}"
            )

    def emit_help(name: str, exposed: str) -> None:
        text = helps.get(name)
        if text:
            escaped = text.replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {exposed} {escaped}")

    for name, value in sorted(snapshot.get("counters", {}).items()):
        exposed = f"{family(name)}_total"
        claim(exposed, name, "counter")
        emit_help(name, exposed)
        lines.append(f"# TYPE {exposed} counter")
        lines.append(f"{exposed} {_format_value(value)}")

    for name, value in sorted(snapshot.get("gauges", {}).items()):
        exposed = family(name)
        claim(exposed, name, "gauge")
        emit_help(name, exposed)
        lines.append(f"# TYPE {exposed} gauge")
        lines.append(f"{exposed} {_format_value(value)}")

    for name, data in sorted(snapshot.get("histograms", {}).items()):
        exposed = family(name)
        claim(exposed, name, "histogram")
        emit_help(name, exposed)
        lines.append(f"# TYPE {exposed} histogram")
        cumulative = 0
        for boundary, count in zip(data["boundaries"], data["counts"]):
            cumulative += int(count)
            lines.append(
                f'{exposed}_bucket{{le="{_format_le(boundary)}"}} '
                f"{cumulative}"
            )
        cumulative += int(data["counts"][-1])
        lines.append(f'{exposed}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{exposed}_sum {_format_value(data['sum'])}")
        lines.append(f"{exposed}_count {int(data['count'])}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def parse_openmetrics(text: str) -> dict[str, float]:
    """Parse exposition text back to ``{series: value}`` (tests, top).

    Series keys keep their label part verbatim
    (``repro_serve_job_seconds_bucket{le="0.5"}``).  Comment lines and
    the ``# EOF`` terminator are skipped.  This is a convenience for
    this repo's tooling, not a general OpenMetrics parser.
    """
    series: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if not name:
            raise ValueError(f"unparseable exposition line: {line!r}")
        series[name] = float(value)
    return series


__all__ = [
    "OPENMETRICS_CONTENT_TYPE",
    "parse_openmetrics",
    "render_openmetrics",
    "sanitize_metric_name",
]
