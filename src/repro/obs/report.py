"""The exportable run report: one JSON artifact per observed run.

A :class:`RunReport` folds everything a planner looks at after a run
into one document: stage wall-clock timings from the event stream, the
metrics snapshot (per-core analysis latency histogram, cache traffic,
search counters), the state of every cache layer (persistent analysis
disk cache, wrapper-design LRU, scheduler lookup-table LRU), the
per-TAM utilization breakdown from :mod:`repro.reporting.profile`, and
an event-kind census.  The pipeline attaches it to
``PlanResult.report`` when observability is enabled; the CLI writes it
with ``--report out.json`` and renders it back with
``repro-soc report out.json``.

The report is deliberately self-contained plain data: it round-trips
through JSON (:meth:`RunReport.to_json` / :meth:`RunReport.from_json`)
and never references live objects, so it can be archived next to the
exported architecture and diffed across runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:
    from repro.obs.context import Observability
    from repro.pipeline.events import EventRecorder
    from repro.pipeline.tables import LookupTables

#: Bump on any incompatible change to the report layout.
REPORT_SCHEMA_VERSION = 1


@dataclass(frozen=True, eq=True)
class RunReport:
    """Aggregated observability artifact of one pipeline run."""

    soc_name: str
    pipeline: str
    width_budget: int
    compression: str
    strategy: str
    test_time: int
    test_data_volume: int
    partitions_evaluated: int
    cpu_seconds: float
    stage_timings: tuple[tuple[str, float], ...] = ()
    #: ``MetricsRegistry.snapshot()`` of the run's registry.
    metrics: Mapping[str, Any] = field(default_factory=dict)
    #: Per cache layer: wrapper LRU, lookup tables, analysis disk cache.
    caches: Mapping[str, Any] = field(default_factory=dict)
    #: Per-TAM busy breakdown (see :class:`repro.reporting.profile.TamUtilization`).
    tam_utilization: tuple[Mapping[str, Any], ...] = ()
    #: Event-kind census of the run's event stream.
    event_counts: Mapping[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA_VERSION,
            "kind": "run-report",
            "soc": self.soc_name,
            "pipeline": self.pipeline,
            "width_budget": self.width_budget,
            "compression": self.compression,
            "strategy": self.strategy,
            "test_time": self.test_time,
            "test_data_volume": self.test_data_volume,
            "partitions_evaluated": self.partitions_evaluated,
            "cpu_seconds": self.cpu_seconds,
            "stage_timings": [
                {"stage": stage, "seconds": seconds}
                for stage, seconds in self.stage_timings
            ],
            "metrics": dict(self.metrics),
            "caches": dict(self.caches),
            "tam_utilization": [dict(t) for t in self.tam_utilization],
            "event_counts": dict(self.event_counts),
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "RunReport":
        schema = data.get("schema")
        if schema != REPORT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported run-report schema {schema!r} "
                f"(this build reads {REPORT_SCHEMA_VERSION})"
            )
        return RunReport(
            soc_name=data["soc"],
            pipeline=data["pipeline"],
            width_budget=data["width_budget"],
            compression=data["compression"],
            strategy=data["strategy"],
            test_time=data["test_time"],
            test_data_volume=data["test_data_volume"],
            partitions_evaluated=data["partitions_evaluated"],
            cpu_seconds=data["cpu_seconds"],
            stage_timings=tuple(
                (entry["stage"], entry["seconds"])
                for entry in data.get("stage_timings", ())
            ),
            metrics=dict(data.get("metrics", {})),
            caches=dict(data.get("caches", {})),
            tam_utilization=tuple(
                dict(t) for t in data.get("tam_utilization", ())
            ),
            event_counts=dict(data.get("event_counts", {})),
        )

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @staticmethod
    def from_json(text: str) -> "RunReport":
        return RunReport.from_dict(json.loads(text))


# ---------------------------------------------------------------------------
# Construction from a finished run.
# ---------------------------------------------------------------------------


def build_run_report(
    *,
    soc_name: str,
    pipeline: str,
    width_budget: int,
    compression: str,
    strategy: str,
    partitions_evaluated: int,
    cpu_seconds: float,
    architecture: Any,
    recorder: "EventRecorder",
    obs: "Observability",
    tables: "LookupTables | None" = None,
) -> RunReport:
    """Assemble the report of one finished pipeline run.

    Derives the gauge metrics that only make sense at end-of-run (the
    wrapper-design LRU hit rate) and folds every cache layer's counters
    in, so the artifact is complete without the caller pre-digesting
    anything.
    """
    from repro.reporting.profile import tam_utilization
    from repro.wrapper.design import wrapper_cache_info

    wrapper_info = wrapper_cache_info()
    lookups = wrapper_info["hits"] + wrapper_info["misses"]
    if lookups:
        obs.registry.set_gauge(
            "wrapper.cache.hit_rate", wrapper_info["hits"] / lookups
        )

    caches: dict[str, Any] = {"wrapper_lru": wrapper_info}
    if tables is not None:
        caches["lookup_tables"] = tables.cache_info()
    disk: dict[str, int] = {}
    for event in recorder.events:
        if event.kind == "cache-stats":
            for key in ("hits", "misses", "stores", "corrupt"):
                disk[key] = disk.get(key, 0) + int(event.payload.get(key, 0))
    if disk:
        caches["analysis_disk"] = disk

    event_counts: dict[str, int] = {}
    for event in recorder.events:
        event_counts[event.kind] = event_counts.get(event.kind, 0) + 1

    return RunReport(
        soc_name=soc_name,
        pipeline=pipeline,
        width_budget=width_budget,
        compression=compression,
        strategy=strategy,
        test_time=architecture.test_time,
        test_data_volume=architecture.test_data_volume,
        partitions_evaluated=partitions_evaluated,
        cpu_seconds=cpu_seconds,
        stage_timings=recorder.stage_timings(),
        metrics=obs.registry.snapshot(),
        caches=caches,
        tam_utilization=tuple(
            {
                "tam": stat.tam_index,
                "width": stat.width,
                "busy_cycles": stat.busy_cycles,
                "total_cycles": stat.total_cycles,
                "utilization": stat.utilization,
                "wire_cycles_wasted": stat.wire_cycles_wasted,
            }
            for stat in tam_utilization(architecture)
        ),
        event_counts=event_counts,
    )


def session_report(obs: "Observability") -> dict[str, Any]:
    """Metrics-only report for multi-run invocations (figures/tables).

    Commands that execute many pipeline runs have no single
    architecture to profile; their ``--report`` artifact carries the
    session's accumulated metrics and span census instead.
    """
    spans = obs.tracer.spans
    return {
        "schema": REPORT_SCHEMA_VERSION,
        "kind": "session-report",
        "metrics": obs.registry.snapshot(),
        "span_count": len(spans),
        "span_seconds": sum(s.seconds for s in spans),
    }


# ---------------------------------------------------------------------------
# Human rendering (the `repro-soc report` subcommand).
# ---------------------------------------------------------------------------


def render_report(report: RunReport) -> str:
    """Multi-table plain-text summary of a :class:`RunReport`."""
    # Imported here: repro.reporting pulls in the experiment drivers,
    # which import the pipeline, which imports repro.obs -- a cycle at
    # module-import time, broken by deferring to first render.
    from repro.reporting.tables import format_table

    blocks: list[str] = [
        (
            f"run report: {report.soc_name} at W={report.width_budget} "
            f"({report.pipeline} pipeline, compression={report.compression})\n"
            f"  test time {report.test_time:,} cycles, "
            f"volume {report.test_data_volume:,} bits, "
            f"{report.partitions_evaluated:,} partitions "
            f"({report.strategy}), cpu {report.cpu_seconds:.2f} s"
        )
    ]
    if report.stage_timings:
        total = sum(seconds for _, seconds in report.stage_timings) or 1.0
        blocks.append(
            format_table(
                ["stage", "seconds", "share"],
                [
                    (stage, f"{seconds:.3f}", f"{100 * seconds / total:5.1f}%")
                    for stage, seconds in report.stage_timings
                ],
                title="stage timings",
            )
        )
    counters = dict(report.metrics.get("counters", {}))
    gauges = dict(report.metrics.get("gauges", {}))
    if counters or gauges:
        rows: list[tuple[str, str, object]] = [
            ("counter", name, value) for name, value in sorted(counters.items())
        ] + [
            ("gauge", name, f"{value:.4g}")
            for name, value in sorted(gauges.items())
        ]
        blocks.append(format_table(["kind", "metric", "value"], rows, title="metrics"))
    histograms = report.metrics.get("histograms", {})
    if histograms:
        blocks.append(
            format_table(
                ["histogram", "count", "mean s", "max bucket"],
                [
                    (
                        name,
                        data["count"],
                        f"{(data['sum'] / data['count']) if data['count'] else 0:.4f}",
                        _top_bucket(data),
                    )
                    for name, data in sorted(histograms.items())
                ],
                title="latency histograms",
            )
        )
    if report.caches:
        rows = []
        for layer, info in sorted(report.caches.items()):
            for key, value in sorted(info.items()):
                rows.append((layer, key, value))
        blocks.append(format_table(["cache", "stat", "value"], rows, title="caches"))
    if report.tam_utilization:
        blocks.append(
            format_table(
                ["TAM", "width", "busy", "total", "util", "wire-cycles idle"],
                [
                    (
                        t["tam"],
                        t["width"],
                        t["busy_cycles"],
                        t["total_cycles"],
                        f"{100 * t['utilization']:.1f}%",
                        t["wire_cycles_wasted"],
                    )
                    for t in report.tam_utilization
                ],
                title="TAM utilization",
            )
        )
    return "\n\n".join(blocks)


def _top_bucket(data: Mapping[str, Any]) -> str:
    """Upper boundary of the highest non-empty bucket, for the summary."""
    boundaries = list(data["boundaries"])
    counts = list(data["counts"])
    for index in range(len(counts) - 1, -1, -1):
        if counts[index]:
            if index >= len(boundaries):
                return f">{boundaries[-1]:g}s"
            return f"<={boundaries[index]:g}s"
    return "-"
