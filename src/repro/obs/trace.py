"""Hierarchical spans and Chrome trace-event export.

A :class:`Tracer` records :class:`Span` intervals.  Nesting is implicit
through a per-thread span stack: ``span("wrapper")`` entered inside
``span("pipeline/standard")`` records the hierarchical path
``pipeline/standard/wrapper``.  Spans carry free-form attributes and
both identifiers Perfetto lanes on -- the recording process id and
thread id -- so spans collected in ``ProcessPoolExecutor`` workers and
merged into the parent tracer (:meth:`Tracer.merge`) land in their own
worker lanes of one coherent timeline.

Timestamps are wall-clock epoch seconds (``time.time()``), not
``perf_counter``: epoch time is the one clock every process on the
machine shares, which is what makes cross-process merging a plain list
concatenation instead of a clock-alignment problem.

:func:`chrome_trace` renders any span collection to the Chrome
trace-event JSON format (``{"traceEvents": [...]}``), loadable in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Sequence


@dataclass(frozen=True)
class Span:
    """One recorded interval (or instant) of a traced run."""

    name: str
    #: Slash-joined ancestry, e.g. ``pipeline/standard/wrapper/analyze:c1``.
    path: str
    #: Epoch seconds (``time.time()``); ``end == start`` for instants.
    start: float
    end: float
    attrs: Mapping[str, Any] = field(default_factory=dict)
    pid: int = 0
    tid: int = 0
    kind: str = "span"  # "span" | "instant"

    @property
    def seconds(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """Portable form (workers ship these back to the parent)."""
        return {
            "name": self.name,
            "path": self.path,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
            "pid": self.pid,
            "tid": self.tid,
            "kind": self.kind,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "Span":
        return Span(
            name=str(data["name"]),
            path=str(data["path"]),
            start=float(data["start"]),
            end=float(data["end"]),
            attrs=dict(data.get("attrs", {})),
            pid=int(data.get("pid", 0)),
            tid=int(data.get("tid", 0)),
            kind=str(data.get("kind", "span")),
        )


class Tracer:
    """Collects the spans of one observed run (or worker task)."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_path(self) -> str:
        """Hierarchical path of the innermost open span ("" at top level)."""
        stack = self._stack()
        return stack[-1] if stack else ""

    def _record(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    # ------------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[dict[str, Any]]:
        """Bracket a region; yields the (mutable) attribute mapping.

        The span is recorded on exit -- including the error path, where
        an ``error`` attribute is added -- so partially executed regions
        still show up in the trace.
        """
        stack = self._stack()
        path = f"{stack[-1]}/{name}" if stack else name
        stack.append(path)
        start = time.time()
        span_attrs = dict(attrs)
        try:
            yield span_attrs
        except BaseException as exc:
            span_attrs["error"] = repr(exc)
            raise
        finally:
            stack.pop()
            self._record(
                Span(
                    name=name,
                    path=path,
                    start=start,
                    end=time.time(),
                    attrs=span_attrs,
                    pid=os.getpid(),
                    tid=threading.get_ident(),
                )
            )

    def instant(self, name: str, **attrs: Any) -> None:
        """Record a zero-duration marker under the current span."""
        stack = self._stack()
        path = f"{stack[-1]}/{name}" if stack else name
        now = time.time()
        self._record(
            Span(
                name=name,
                path=path,
                start=now,
                end=now,
                attrs=attrs,
                pid=os.getpid(),
                tid=threading.get_ident(),
                kind="instant",
            )
        )

    # ------------------------------------------------------------------
    # Cross-process collection.
    # ------------------------------------------------------------------

    def snapshot(self) -> list[dict[str, Any]]:
        """Portable dump of every recorded span (JSON/pickle-ready)."""
        with self._lock:
            return [span.to_dict() for span in self.spans]

    def merge(
        self,
        spans: Iterable[Mapping[str, Any]],
        *,
        parent_path: str | None = None,
    ) -> int:
        """Fold portable span dicts (from a worker) into this tracer.

        ``parent_path`` re-roots the incoming paths under a span of this
        tracer, so a worker's ``analyze:c1`` reads as
        ``pipeline/standard/wrapper/analyze:c1`` in the merged
        hierarchy.  Lanes (pid/tid) are preserved: the merged trace
        keeps one lane per worker process.  Returns the span count.
        """
        merged = 0
        for data in spans:
            span = Span.from_dict(data)
            if parent_path:
                span = Span(
                    name=span.name,
                    path=f"{parent_path}/{span.path}",
                    start=span.start,
                    end=span.end,
                    attrs=span.attrs,
                    pid=span.pid,
                    tid=span.tid,
                    kind=span.kind,
                )
            self._record(span)
            merged += 1
        return merged

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()


# ---------------------------------------------------------------------------
# Chrome trace-event export.
# ---------------------------------------------------------------------------


def chrome_trace(
    spans: Sequence[Span] | Sequence[Mapping[str, Any]],
) -> dict[str, Any]:
    """Render spans as a Chrome trace-event JSON object.

    Accepts :class:`Span` objects or their :meth:`Span.to_dict`
    portable form.  Durations become ``"X"`` (complete) events and
    instants ``"i"`` events.  Timestamps are microseconds relative to
    the earliest span, lanes come straight from each span's (pid, tid),
    and every process gets a ``process_name`` metadata record -- the
    parent is labeled ``repro`` and every other pid ``repro worker``.
    Nesting inside a lane is positional (contained intervals), which is
    how Perfetto reconstructs the hierarchy from ``X`` events.
    """
    spans = [
        item if isinstance(item, Span) else Span.from_dict(item)
        for item in spans
    ]
    events: list[dict[str, Any]] = []
    if not spans:
        return {"traceEvents": events, "displayTimeUnit": "ms"}
    t0 = min(span.start for span in spans)
    parent_pid = os.getpid()
    for pid in sorted({span.pid for span in spans}):
        label = "repro" if pid == parent_pid else "repro worker"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{label} (pid {pid})"},
            }
        )
    for span in spans:
        ts = (span.start - t0) * 1e6
        args = {"path": span.path, **span.attrs}
        if span.kind == "instant":
            events.append(
                {
                    "name": span.name,
                    "ph": "i",
                    "ts": ts,
                    "pid": span.pid,
                    "tid": span.tid,
                    "s": "t",
                    "args": args,
                }
            )
        else:
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": ts,
                    "dur": (span.end - span.start) * 1e6,
                    "pid": span.pid,
                    "tid": span.tid,
                    "args": args,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str | os.PathLike[str],
    spans: Sequence[Span] | Sequence[Mapping[str, Any]],
) -> None:
    """Write :func:`chrome_trace` JSON to ``path``."""
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(spans), handle, indent=1)
        handle.write("\n")
