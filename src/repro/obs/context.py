"""The observability switchboard: one global, explicitly enabled context.

An :class:`Observability` bundles a
:class:`~repro.obs.metrics.MetricsRegistry` with a
:class:`~repro.obs.trace.Tracer`.  Exactly one (or none) is *current*
per process; library instrumentation goes through the module-level
helpers (:func:`span`, :func:`instant`, :func:`inc`, :func:`observe`,
:func:`set_gauge`), which are near-free no-ops while nothing is
current -- a single global read and a return.  That is the contract
that lets hot paths stay instrumented unconditionally: disabled
observability must not show up in a profile, and planning results are
bit-identical either way (instrumentation never feeds back into the
computation).

Enablement is explicit and process-local:

* :func:`enable` / :func:`disable` flip the process's current context
  (the CLI enables when ``--trace``/``--report`` is given, or when
  ``REPRO_OBS`` is set non-empty);
* :func:`enabled` is the scoped variant tests and library callers use
  -- it installs a fresh context and restores the previous one on exit;
* worker processes never inherit an enabled context implicitly: the
  fan-out in :mod:`repro.explore.dse` passes an explicit flag and the
  worker builds its own scoped context, so forked children cannot leak
  the parent's already-recorded spans back in their payloads.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, ContextManager, Iterator

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.trace import Tracer

#: Set non-empty to make the CLI enable observability for every run.
ENV_OBS = "REPRO_OBS"


class Observability:
    """One metrics registry plus one tracer, collected together."""

    def __init__(
        self,
        *,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        #: The most recent pipeline run's :class:`~repro.obs.report.RunReport`
        #: and how many runs this context has observed -- what the CLI's
        #: ``--report`` flag writes (falling back to a session report when
        #: the command executed more than one run).
        self.last_report: Any | None = None
        self.run_count: int = 0


_CURRENT: Observability | None = None


def current() -> Observability | None:
    """The process's current observability context, or ``None``."""
    return _CURRENT


def is_enabled() -> bool:
    return _CURRENT is not None


def enable(obs: Observability | None = None) -> Observability:
    """Install ``obs`` (or a fresh context) as current; returns it."""
    global _CURRENT
    _CURRENT = obs if obs is not None else Observability()
    return _CURRENT


def disable() -> None:
    """Clear the current context; instrumentation reverts to no-ops."""
    global _CURRENT
    _CURRENT = None


@contextmanager
def enabled(obs: Observability | None = None) -> Iterator[Observability]:
    """Scoped :func:`enable`: restores the previous context on exit."""
    global _CURRENT
    previous = _CURRENT
    active = enable(obs)
    try:
        yield active
    finally:
        _CURRENT = previous


def env_requests_obs() -> bool:
    """Whether ``REPRO_OBS`` asks for observability to be on."""
    return bool(os.environ.get(ENV_OBS, "").strip())


# ---------------------------------------------------------------------------
# No-op machinery: the disabled fast path allocates nothing.
# ---------------------------------------------------------------------------


class _NullSpan:
    """Reusable context manager for the disabled case."""

    __slots__ = ()

    #: The attrs mapping a real span yields; shared and intentionally
    #: discarded -- writes to it are lost, exactly like the disabled
    #: metrics helpers.
    _ATTRS: dict[str, Any] = {}

    def __enter__(self) -> dict[str, Any]:
        self._ATTRS.clear()
        return self._ATTRS

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


# ---------------------------------------------------------------------------
# Instrumentation helpers (the only API hot paths should touch).
# ---------------------------------------------------------------------------


def span(name: str, **attrs: Any) -> ContextManager[dict[str, Any]]:
    """Bracket a region under the current tracer (no-op when disabled)."""
    obs = _CURRENT
    if obs is None:
        return _NULL_SPAN
    return obs.tracer.span(name, **attrs)


def instant(name: str, **attrs: Any) -> None:
    """Record an instant marker (no-op when disabled)."""
    obs = _CURRENT
    if obs is not None:
        obs.tracer.instant(name, **attrs)


def inc(name: str, amount: int = 1) -> None:
    """Bump a counter on the current registry (no-op when disabled)."""
    obs = _CURRENT
    if obs is not None:
        obs.registry.inc(name, amount)


def observe(
    name: str, value: float, boundaries: tuple[float, ...] = DEFAULT_BUCKETS
) -> None:
    """Record a histogram observation (no-op when disabled)."""
    obs = _CURRENT
    if obs is not None:
        obs.registry.observe(name, value, boundaries)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the current registry (no-op when disabled)."""
    obs = _CURRENT
    if obs is not None:
        obs.registry.set_gauge(name, value)
