"""Observability: metrics, hierarchical tracing, and run reports.

The package gives the planning engine one instrumentation surface:

* :mod:`repro.obs.metrics` -- process-local counters / gauges /
  histograms with explicit snapshot+merge for cross-process collection;
* :mod:`repro.obs.trace` -- hierarchical spans serializable to Chrome
  trace-event JSON (Perfetto-loadable), with worker-lane merging;
* :mod:`repro.obs.context` -- the global enable/disable switchboard and
  the no-op-when-disabled helpers hot paths call;
* :mod:`repro.obs.report` -- the exportable :class:`RunReport` artifact
  attached to ``PlanResult.report`` and rendered by ``repro-soc report``.

Quick start::

    from repro import obs

    with obs.enabled() as o:
        result = plan(soc, 32, RunConfig(jobs=4))
    obs.write_chrome_trace("trace.json", o.tracer.spans)
    print(obs.render_report(result.report))

Disabled (the default) costs one global read per instrumentation call;
results are bit-identical with observability on or off.
"""

from repro.obs.context import (
    ENV_OBS,
    Observability,
    current,
    disable,
    enable,
    enabled,
    env_requests_obs,
    inc,
    instant,
    is_enabled,
    observe,
    set_gauge,
    span,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.obs.report import (
    REPORT_SCHEMA_VERSION,
    RunReport,
    build_run_report,
    render_report,
    session_report,
)
from repro.obs.trace import Span, Tracer, chrome_trace, write_chrome_trace

__all__ = [
    "ENV_OBS",
    "Observability",
    "current",
    "disable",
    "enable",
    "enabled",
    "env_requests_obs",
    "inc",
    "instant",
    "is_enabled",
    "observe",
    "set_gauge",
    "span",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "REPORT_SCHEMA_VERSION",
    "RunReport",
    "build_run_report",
    "render_report",
    "session_report",
    "Span",
    "Tracer",
    "chrome_trace",
    "write_chrome_trace",
]
