"""Observability: metrics, hierarchical tracing, and run reports.

The package gives the planning engine one instrumentation surface:

* :mod:`repro.obs.metrics` -- process-local counters / gauges /
  histograms with explicit snapshot+merge for cross-process collection;
* :mod:`repro.obs.trace` -- hierarchical spans serializable to Chrome
  trace-event JSON (Perfetto-loadable), with worker-lane merging;
* :mod:`repro.obs.context` -- the global enable/disable switchboard and
  the no-op-when-disabled helpers hot paths call;
* :mod:`repro.obs.report` -- the exportable :class:`RunReport` artifact
  attached to ``PlanResult.report`` and rendered by ``repro-soc report``;
* :mod:`repro.obs.logging` -- structured JSON log records with a
  contextvar-carried request id, bridged into stdlib ``logging``;
* :mod:`repro.obs.window` -- sliding-window rate/quantile estimators
  (rolling p50/p95/p99 for live services);
* :mod:`repro.obs.expo` -- OpenMetrics/Prometheus text exposition of a
  registry snapshot (the serve ``metrics`` op).

Quick start::

    from repro import obs

    with obs.enabled() as o:
        result = plan(soc, 32, RunConfig(jobs=4))
    obs.write_chrome_trace("trace.json", o.tracer.spans)
    print(obs.render_report(result.report))

Disabled (the default) costs one global read per instrumentation call;
results are bit-identical with observability on or off.
"""

from repro.obs.context import (
    ENV_OBS,
    Observability,
    current,
    disable,
    enable,
    enabled,
    env_requests_obs,
    inc,
    instant,
    is_enabled,
    observe,
    set_gauge,
    span,
)
from repro.obs.expo import (
    parse_openmetrics,
    render_openmetrics,
    sanitize_metric_name,
)
from repro.obs.logging import (
    JsonLineFormatter,
    StructuredLogger,
    bind_request_id,
    configure_json_logging,
    current_request_id,
    get_logger,
    new_request_id,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.obs.report import (
    REPORT_SCHEMA_VERSION,
    RunReport,
    build_run_report,
    render_report,
    session_report,
)
from repro.obs.trace import Span, Tracer, chrome_trace, write_chrome_trace
from repro.obs.window import SlidingWindow, WindowRegistry

__all__ = [
    "ENV_OBS",
    "Observability",
    "current",
    "disable",
    "enable",
    "enabled",
    "env_requests_obs",
    "inc",
    "instant",
    "is_enabled",
    "observe",
    "set_gauge",
    "span",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLineFormatter",
    "MetricsRegistry",
    "SlidingWindow",
    "StructuredLogger",
    "WindowRegistry",
    "bind_request_id",
    "configure_json_logging",
    "current_request_id",
    "default_registry",
    "get_logger",
    "new_request_id",
    "parse_openmetrics",
    "render_openmetrics",
    "sanitize_metric_name",
    "REPORT_SCHEMA_VERSION",
    "RunReport",
    "build_run_report",
    "render_report",
    "session_report",
    "Span",
    "Tracer",
    "chrome_trace",
    "write_chrome_trace",
]
