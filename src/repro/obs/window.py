"""Sliding-window rate and quantile estimators for live telemetry.

A :class:`~repro.obs.metrics.Histogram` accumulates forever -- exactly
right for a run report, useless for "what is the p99 *right now*" on a
service that has been up for a week.  :class:`SlidingWindow` keeps the
raw ``(timestamp, value)`` samples of the last ``horizon_s`` seconds
and derives rolling statistics from them on demand:

* **rate** -- samples per second over the *effective observed span*
  (``now`` minus the oldest retained sample, clamped to the horizon):
  during warm-up, or after ``max_samples`` overflow dropped the oldest
  samples, the retained samples cover less than ``horizon_s`` and
  dividing by the full horizon would understate the rate;
* **quantile(q)** -- exact order statistic with linear interpolation
  between adjacent samples (not bucketed: within the window the raw
  values are retained, so the estimate has no bucket-resolution floor);
* **summary()** -- the JSON-ready bundle the serve ``health`` op ships
  (count, rate, p50/p95/p99, mean, max).

Memory is bounded twice: samples older than the horizon are pruned on
every touch, and ``max_samples`` caps the deque (overflow drops the
*oldest* samples first, biasing the window toward recent traffic --
the right bias for a live dashboard, and documented here so nobody
mistakes the result for an exact horizon under overload).

Like :class:`~repro.obs.metrics.MetricsRegistry`, windows are
merge-safe across processes: :meth:`snapshot` is a plain JSON-ready
dict and :meth:`merge` folds a snapshot's samples in, so a worker can
ship its window alongside its results.  :class:`WindowRegistry` is the
named bag the service owns, mirroring the metrics-registry API.

All methods take an optional ``now`` (epoch seconds) so tests are
deterministic; production callers omit it.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Mapping

#: Default rolling horizon, seconds.
DEFAULT_HORIZON_S = 60.0

#: Default cap on retained samples per window.
DEFAULT_MAX_SAMPLES = 8192

#: The quantiles ``summary`` reports, as (label, q) pairs.
SUMMARY_QUANTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
)


class SlidingWindow:
    """Rolling samples over the last ``horizon_s`` seconds."""

    __slots__ = ("horizon_s", "max_samples", "_samples", "_lock")

    def __init__(
        self,
        horizon_s: float = DEFAULT_HORIZON_S,
        *,
        max_samples: int = DEFAULT_MAX_SAMPLES,
    ) -> None:
        if horizon_s <= 0:
            raise ValueError(f"horizon_s must be positive, got {horizon_s}")
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.horizon_s = float(horizon_s)
        self.max_samples = int(max_samples)
        self._samples: deque[tuple[float, float]] = deque(
            maxlen=self.max_samples
        )
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def _prune(self, now: float) -> None:
        cutoff = now - self.horizon_s
        samples = self._samples
        while samples and samples[0][0] < cutoff:
            samples.popleft()

    def observe(self, value: float, now: float | None = None) -> None:
        """Record one sample (timestamped ``now`` or wall clock)."""
        stamp = time.time() if now is None else float(now)
        with self._lock:
            self._prune(stamp)
            self._samples.append((stamp, float(value)))

    def _values(self, now: float | None) -> list[float]:
        stamp = time.time() if now is None else float(now)
        with self._lock:
            self._prune(stamp)
            return [value for _, value in self._samples]

    def _observed(self, now: float | None) -> tuple[list[float], float]:
        """In-window values plus the effective observed span, seconds.

        The span is ``now - oldest retained sample``, clamped to the
        horizon.  During warm-up (window younger than the horizon) and
        after ``max_samples`` overflow (oldest samples dropped), the
        retained samples cover *less* than ``horizon_s`` -- dividing a
        count by the full horizon there would understate the rate.
        With no samples, or a non-positive span (all samples stamped
        ``now``), the horizon is the only defensible denominator.
        """
        stamp = time.time() if now is None else float(now)
        with self._lock:
            self._prune(stamp)
            span = self.horizon_s
            if self._samples:
                observed = stamp - self._samples[0][0]
                if observed > 0.0:
                    span = min(observed, self.horizon_s)
            return [value for _, value in self._samples], span

    # ------------------------------------------------------------------

    def count(self, now: float | None = None) -> int:
        """Samples currently inside the window."""
        return len(self._values(now))

    def rate(self, now: float | None = None) -> float:
        """Samples per second over the effective observed span."""
        values, span = self._observed(now)
        return len(values) / span

    def quantile(self, q: float, now: float | None = None) -> float:
        """The q-quantile of in-window values (0 with no samples).

        Exact order statistics with linear interpolation between the
        two adjacent samples, the standard ``(n - 1) * q`` positional
        definition.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        values = sorted(self._values(now))
        if not values:
            return 0.0
        position = (len(values) - 1) * q
        lower = int(position)
        upper = min(lower + 1, len(values) - 1)
        fraction = position - lower
        return values[lower] + (values[upper] - values[lower]) * fraction

    def mean(self, now: float | None = None) -> float:
        values = self._values(now)
        return sum(values) / len(values) if values else 0.0

    def summary(self, now: float | None = None) -> dict[str, float]:
        """The JSON-ready rolling bundle (health op / dashboards)."""
        raw, span = self._observed(now)
        values = sorted(raw)
        count = len(values)
        result: dict[str, float] = {
            "count": count,
            "rate_per_s": round(count / span, 4),
            "mean": round(sum(values) / count, 6) if count else 0.0,
            "max": values[-1] if count else 0.0,
        }
        for label, q in SUMMARY_QUANTILES:
            if not count:
                result[label] = 0.0
                continue
            position = (count - 1) * q
            lower = int(position)
            upper = min(lower + 1, count - 1)
            fraction = position - lower
            result[label] = round(
                values[lower] + (values[upper] - values[lower]) * fraction, 6
            )
        return result

    # ------------------------------------------------------------------
    # Snapshot / merge: the cross-process protocol.
    # ------------------------------------------------------------------

    def snapshot(self, now: float | None = None) -> dict[str, Any]:
        """JSON-ready dump of the window's live samples."""
        stamp = time.time() if now is None else float(now)
        with self._lock:
            self._prune(stamp)
            return {
                "horizon_s": self.horizon_s,
                "samples": [[t, v] for t, v in self._samples],
            }

    def merge(
        self, snapshot: Mapping[str, Any], now: float | None = None
    ) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker) into this window.

        Samples already outside this window's horizon are dropped; the
        horizons themselves need not match (each window prunes by its
        own).  Sample order within the deque is kept chronological so
        pruning stays correct.
        """
        stamp = time.time() if now is None else float(now)
        incoming = [
            (float(t), float(v)) for t, v in snapshot.get("samples", ())
        ]
        if not incoming:
            return
        with self._lock:
            self._prune(stamp)
            merged = sorted(
                list(self._samples) + incoming, key=lambda sample: sample[0]
            )
            self._samples = deque(merged, maxlen=self.max_samples)
            self._prune(stamp)

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()


class WindowRegistry:
    """A named bag of :class:`SlidingWindow`, mirroring MetricsRegistry.

    Creation parameters are fixed on first access, like histogram
    boundaries: asking for an existing name with a different horizon
    returns the existing window (the first caller owns the shape).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._windows: dict[str, SlidingWindow] = {}

    def window(
        self,
        name: str,
        horizon_s: float = DEFAULT_HORIZON_S,
        *,
        max_samples: int = DEFAULT_MAX_SAMPLES,
    ) -> SlidingWindow:
        existing = self._windows.get(name)
        if existing is None:
            with self._lock:
                existing = self._windows.setdefault(
                    name,
                    SlidingWindow(horizon_s, max_samples=max_samples),
                )
        return existing

    def observe(
        self, name: str, value: float, now: float | None = None
    ) -> None:
        self.window(name).observe(value, now)

    def summaries(self, now: float | None = None) -> dict[str, dict[str, float]]:
        """``summary()`` of every window, keyed by name (JSON-ready)."""
        with self._lock:
            windows = dict(self._windows)
        return {
            name: window.summary(now) for name, window in sorted(windows.items())
        }

    def snapshot(self, now: float | None = None) -> dict[str, Any]:
        with self._lock:
            windows = dict(self._windows)
        return {name: window.snapshot(now) for name, window in windows.items()}

    def merge(
        self, snapshot: Mapping[str, Any], now: float | None = None
    ) -> None:
        for name, data in snapshot.items():
            self.window(
                name, float(data.get("horizon_s", DEFAULT_HORIZON_S))
            ).merge(data, now)

    def clear(self) -> None:
        with self._lock:
            self._windows.clear()


__all__ = [
    "DEFAULT_HORIZON_S",
    "DEFAULT_MAX_SAMPLES",
    "SUMMARY_QUANTILES",
    "SlidingWindow",
    "WindowRegistry",
]
