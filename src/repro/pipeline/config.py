"""The shared run configuration threading through every layer.

Before this package existed, the co-optimization knobs (worker count,
cache location, estimator samples, evaluation grid, compression mode,
power budget, ...) were re-threaded by hand through ``optimize_soc``,
``optimize_soc_constrained``, ``optimize_per_tam``, the experiment
drivers, and the CLI -- three parallel keyword chains that drifted
apart.  :class:`RunConfig` consolidates all of them into one frozen
value object that the :class:`~repro.pipeline.pipeline.Pipeline`
threads through its stages, the CLI builds once per invocation, and
the experiment drivers forward verbatim.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Literal, Mapping

from repro.compression.estimator import DEFAULT_SAMPLES
from repro.explore.cache import AnalysisDiskCache, resolve_cache
from repro.explore.dse import DEFAULT_GRID, Mode, analyze_soc_cores

if TYPE_CHECKING:
    from repro.explore.dse import CoreAnalysis
    from repro.search.backend import BackendConfig
    from repro.soc.core import Core

#: Accepted compression placements/modes.  The first four come from
#: :func:`normalize_compression`; "per-tam" selects the Figure 4(b)
#: flow and is set by :func:`repro.core.optimizer.optimize_per_tam`.
Compression = Literal["none", "per-core", "auto", "select", "per-tam"]

COMPRESSION_MODES: tuple[str, ...] = (
    "none",
    "per-core",
    "auto",
    "select",
    "per-tam",
)

#: Sentinel: "no cache argument given, resolve from the config".
_UNSET: Any = object()


def normalize_compression(compression: bool | str) -> Compression:
    """Map the public ``compression`` argument to a canonical mode.

    ``True`` means the paper's per-core decompressors; ``False`` the
    no-TDC baseline.  String modes pass through after validation.
    """
    if compression is True:
        return "per-core"
    if compression is False:
        return "none"
    if compression in ("none", "per-core", "auto", "select"):
        return compression  # type: ignore[return-value]
    raise ValueError(f"unknown compression mode {compression!r}")


@dataclass(frozen=True)
class RunConfig:
    """Every knob of one co-optimization run, in one place.

    Groups (see docs/api.md, "Pipeline architecture"):

    * **what to plan** -- ``compression`` (mode/placement), the
      partition-search controls ``max_tams`` / ``min_tam_width`` /
      ``strategy``, the per-TAM flow's ``min_code_width``, and the
      explicit stage selection ``architecture`` / ``schedule``
      (registry names such as ``"packing"``; ``"auto"`` keeps the
      built-in routing) with ``pack_opts`` carrying the rectangle
      packer's knobs;
    * **analysis fidelity** -- ``mode`` / ``samples`` / ``grid``,
      passed to the per-core design-space exploration;
    * **constraints** -- ``power_budget`` / ``power_of`` /
      ``precedence`` (the constrained scheduler engages when any is
      set);
    * **performance** -- ``jobs`` worker processes and the persistent
      analysis cache knobs ``cache_dir`` / ``use_cache`` (environment
      overrides ``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` /
      ``REPRO_NO_CACHE`` are applied at resolve time, so a default
      config still honors them);
    * **verification** -- ``verify`` appends the independent invariant
      checker (:mod:`repro.verify`) as a final pipeline stage; a plan
      that fails it raises
      :class:`~repro.verify.invariants.PlanVerificationError` instead
      of being returned.

    The object is frozen: derive variants with :meth:`replace`.
    """

    compression: Compression = "per-core"
    mode: Mode = "auto"
    samples: int = DEFAULT_SAMPLES
    grid: int = DEFAULT_GRID
    max_tams: int | None = None
    min_tam_width: int = 1
    min_code_width: int = 3
    strategy: str = "auto"
    search_opts: tuple[tuple[str, str], ...] = ()
    architecture: str = "auto"
    schedule: str = "auto"
    pack_opts: tuple[tuple[str, str], ...] = ()
    power_budget: float | None = None
    power_of: Mapping[str, float] | None = None
    precedence: tuple[tuple[str, str], ...] = ()
    jobs: int | None = None
    cache_dir: str | None = None
    use_cache: bool | None = None
    verify: bool = False

    def __post_init__(self) -> None:
        if self.compression not in COMPRESSION_MODES:
            raise ValueError(f"unknown compression mode {self.compression!r}")
        if self.min_tam_width < 1:
            raise ValueError(
                f"min_tam_width must be >= 1, got {self.min_tam_width}"
            )
        # Normalize precedence pairs so equality/JSON behave predictably.
        object.__setattr__(
            self,
            "precedence",
            tuple((str(a), str(b)) for a, b in self.precedence),
        )
        # Backend hyperparameters travel as sorted (key, value-string)
        # pairs: hashable on the frozen config, JSON-clean, and coerced
        # to real types only by the chosen backend's declared knobs.
        object.__setattr__(
            self,
            "search_opts",
            tuple(
                sorted((str(k), str(v)) for k, v in dict(self.search_opts).items())
            ),
        )
        # Packer options travel the same way (hashable, JSON-clean).
        object.__setattr__(
            self,
            "pack_opts",
            tuple(
                sorted((str(k), str(v)) for k, v in dict(self.pack_opts).items())
            ),
        )

    # ------------------------------------------------------------------

    def replace(self, **changes: Any) -> "RunConfig":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-ready form; inverse of :meth:`from_dict`.

        ``from_dict(to_dict(c)) == c`` for every config (the planning
        service ships configs across processes and sockets this way).
        """
        data = dataclasses.asdict(self)
        data["precedence"] = [list(pair) for pair in self.precedence]
        data["search_opts"] = [list(pair) for pair in self.search_opts]
        data["pack_opts"] = [list(pair) for pair in self.pack_opts]
        if self.power_of is not None:
            data["power_of"] = dict(self.power_of)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunConfig":
        """Rebuild a config from :meth:`to_dict` data.

        Unknown keys raise: a request asking for a knob this build does
        not understand must fail loudly, not plan something else.
        """
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ValueError(
                f"unknown RunConfig fields: {', '.join(sorted(unknown))}"
            )
        kwargs = dict(data)
        if "precedence" in kwargs and kwargs["precedence"] is not None:
            kwargs["precedence"] = tuple(
                (str(a), str(b)) for a, b in kwargs["precedence"]
            )
        return cls(**kwargs)

    def search_options(self) -> dict[str, str]:
        """The backend hyperparameter overrides as a plain dict."""
        return dict(self.search_opts)

    def pack_options(self) -> dict[str, str]:
        """The rectangle-packer overrides as a plain dict."""
        return dict(self.pack_opts)

    def backend_config(self) -> "BackendConfig":
        """The architecture-search backend choice this config implies."""
        from repro.search.backend import BackendConfig

        return BackendConfig(name=self.strategy, options=self.search_opts)

    @property
    def is_constrained(self) -> bool:
        """Whether the power/precedence scheduler must engage."""
        return (
            self.power_budget is not None
            or self.power_of is not None
            or bool(self.precedence)
        )

    # ------------------------------------------------------------------
    # Resolution of the performance knobs (env-aware).
    # ------------------------------------------------------------------

    def resolve_cache(self) -> AnalysisDiskCache | None:
        """The persistent analysis cache this run uses, or ``None``."""
        return resolve_cache(self.cache_dir, self.use_cache)

    def resolve_jobs(self) -> int:
        """Effective worker-process count (env default applied)."""
        from repro.parallel import resolve_jobs

        return resolve_jobs(self.jobs)

    def analyses(
        self,
        cores: Iterable["Core"],
        *,
        max_tam_width: int | None = None,
        mode: Mode | None = None,
        samples: int | None = None,
        grid: int | None = None,
        cache: AnalysisDiskCache | None = _UNSET,
    ) -> dict[str, "CoreAnalysis"]:
        """Per-core analysis tables under this config's knobs.

        This is the single funnel every consumer (pipeline stages,
        figure drivers, ad-hoc scripts) goes through, so the jobs/cache
        plumbing cannot drift between call sites.  The keyword overrides
        exist for drivers that need a non-default grid (Figure 2 plots a
        denser sweep) without forking a whole config.
        """
        if cache is _UNSET:
            cache = self.resolve_cache()
        return analyze_soc_cores(
            cores,
            mode=mode if mode is not None else self.mode,
            samples=samples if samples is not None else self.samples,
            grid=grid if grid is not None else self.grid,
            max_tam_width=max_tam_width,
            jobs=self.jobs,
            cache=cache,
        )
