"""Typed pipeline stages and the pluggable stage registry.

The paper's heuristic is a four-step flow; each step is a
:class:`Stage` mutating a shared :class:`PlanContext`:

1. :class:`WrapperStage` -- validates the width budget and builds the
   per-core analysis tables (the fan-out computes the wrapper designs
   of step 1 *and* the decompressor sweeps of step 2 in a single
   parallel/cached pass, for efficiency -- see
   :func:`repro.explore.dse.analyze_soc_cores`);
2. :class:`DecompressorStage` -- applies the compression policy,
   wrapping the analyses in scheduling-facing
   :class:`~repro.pipeline.tables.LookupTables` and fixing the
   decompressor placement;
3. an **architecture** stage -- chooses the TAM partition (and, for
   the constrained/per-TAM variants, the assignment): the paper's
   step 3;
4. a **schedule** stage -- materializes the chosen schedule as a
   :class:`~repro.core.architecture.TestArchitecture`: step 4.

Architecture and schedule stages are pluggable through a registry
(:func:`register_stage` / :func:`stage_factory`), so alternative
partitioners and schedulers -- the annealer in
:mod:`repro.core.anneal`, the robust search in
:mod:`repro.core.robust`, bin-packing experiments -- drop in as stages
instead of forking the whole flow.
"""

from __future__ import annotations

import abc
from typing import Any, Callable

from repro import obs
from repro.core.architecture import (
    DecompressorPlacement,
    ScheduledCore,
    Tam,
    TestArchitecture,
)
from repro.core.partition import PartitionSearchResult, iter_partitions
from repro.core.scheduler import build_architecture, schedule_cores
from repro.search import resolve_search_space, run_search
from repro.explore.dse import CoreAnalysis
from repro.pipeline.config import RunConfig
from repro.pipeline.events import EventRecorder
from repro.pipeline.tables import LookupTables
from repro.soc.soc import Soc


class PlanContext:
    """Mutable state threaded through the stages of one run."""

    def __init__(
        self,
        soc: Soc,
        width_budget: int,
        config: RunConfig,
        events: EventRecorder,
    ) -> None:
        self.soc = soc
        self.width_budget = width_budget
        self.config = config
        self.events = events
        self.names: list[str] = []
        self.analyses: dict[str, CoreAnalysis] = {}
        self.tables: LookupTables | None = None
        self.placement: DecompressorPlacement = DecompressorPlacement.PER_CORE
        self.power_of: Any = None
        self.search: PartitionSearchResult | None = None
        self.partitions_evaluated: int = 0
        self.strategy: str = ""
        self.architecture: TestArchitecture | None = None
        self.peak_power: float = 0.0
        self.tam_idle_cycles: int = 0
        #: Scratch space for stage plug-ins that need to hand data to a
        #: downstream stage without claiming a dedicated field.
        self.extras: dict[str, Any] = {}


class Stage(abc.ABC):
    """One step of the pipeline; mutates the :class:`PlanContext`."""

    #: Display name used for events and stage timings.
    name: str = "stage"

    @abc.abstractmethod
    def run(self, ctx: PlanContext) -> None:
        """Execute the stage against the shared context."""


# ---------------------------------------------------------------------------
# Steps 1-2: wrapper + decompressor design (the analysis side).
# ---------------------------------------------------------------------------


class WrapperStage(Stage):
    """Validate the budget and build the per-core analysis tables."""

    name = "wrapper"

    def run(self, ctx: PlanContext) -> None:
        config = ctx.config
        if config.compression == "per-tam":
            if ctx.width_budget < config.min_code_width:
                raise ValueError(
                    f"ATE channels ({ctx.width_budget}) below minimum code "
                    f"width ({config.min_code_width})"
                )
        elif ctx.width_budget < 1:
            raise ValueError(
                f"TAM width must be >= 1, got {ctx.width_budget}"
            )
        ctx.names = list(ctx.soc.core_names)
        cache = config.resolve_cache()
        before = cache.stats() if cache is not None else None
        ctx.analyses = config.analyses(
            ctx.soc.cores, max_tam_width=ctx.width_budget, cache=cache
        )
        if cache is not None and before is not None:
            after = cache.stats()
            ctx.events.emit(
                "cache-stats",
                self.name,
                directory=after.directory,
                hits=after.hits - before.hits,
                misses=after.misses - before.misses,
                stores=after.stores - before.stores,
                corrupt=after.corrupt - before.corrupt,
            )
        ctx.events.emit(
            "analyses-ready",
            self.name,
            cores=len(ctx.names),
            jobs=config.resolve_jobs(),
            cached=cache is not None,
        )


class DecompressorStage(Stage):
    """Fix the compression policy, placement, and lookup tables."""

    name = "decompressor"

    def run(self, ctx: PlanContext) -> None:
        compression = ctx.config.compression
        if compression == "per-tam":
            ctx.placement = DecompressorPlacement.PER_TAM
        elif compression == "none":
            ctx.placement = DecompressorPlacement.NONE
        else:
            ctx.placement = DecompressorPlacement.PER_CORE
        if compression != "per-tam":
            ctx.tables = LookupTables(ctx.analyses, compression)
        ctx.events.emit(
            "tables-ready",
            self.name,
            compression=compression,
            placement=ctx.placement.value,
        )


def _require_tables(ctx: PlanContext, stage: str) -> LookupTables:
    if ctx.tables is None:
        raise RuntimeError(
            f"stage {stage!r} needs lookup tables; run DecompressorStage first"
        )
    return ctx.tables


# ---------------------------------------------------------------------------
# Step 3 variants: test-architecture design.
# ---------------------------------------------------------------------------


class ArchitectureStage(Stage):
    """Architecture search over fixed-width TAMs (the paper's step 3).

    Thin driver over :func:`repro.search.run_search`: the strategy
    names a registered backend, ``config.search_opts`` carries its
    hyperparameters, and the multi-objective backends get volume/power
    lookups wired from the same tables the scheduler uses.
    """

    name = "architecture"

    def __init__(self, strategy: str | None = None) -> None:
        #: When set, overrides ``config.strategy`` (the registry uses
        #: this to expose "exhaustive"/"greedy"/"anneal"/"evolutionary"
        #: as stages).
        self.strategy = strategy

    def run(self, ctx: PlanContext) -> None:
        config = ctx.config
        tables = _require_tables(ctx, self.name)

        def volume_of(name: str, width: int) -> int:
            return tables.config_of(name, width).volume

        power_map = config.power_of
        power_of = (
            (lambda name: float(power_map.get(name, 0.0)))
            if power_map is not None
            else None
        )
        with obs.span(
            "search", strategy=self.strategy or config.strategy
        ) as attrs:
            search = run_search(
                ctx.names,
                ctx.width_budget,
                tables.time_of,
                max_parts=config.max_tams,
                min_width=config.min_tam_width,
                strategy=self.strategy or config.strategy,
                options=config.search_options(),
                volume_of=volume_of,
                power_of=power_of,
            )
            attrs["partitions"] = search.partitions_evaluated
            attrs["backend"] = search.strategy
        obs.inc("architecture.partitions_evaluated", search.partitions_evaluated)
        ctx.search = search
        ctx.partitions_evaluated = search.partitions_evaluated
        ctx.strategy = search.strategy
        ctx.events.emit(
            "search-done",
            self.name,
            strategy=search.strategy,
            partitions=search.partitions_evaluated,
            widths=list(search.widths),
            makespan=search.makespan,
        )


class ConstrainedArchitectureStage(Stage):
    """Exhaustive partition search under power/precedence constraints."""

    name = "architecture"

    def run(self, ctx: PlanContext) -> None:
        from repro.core.timeline import ConstrainedSchedule, schedule_constrained

        config = ctx.config
        tables = _require_tables(ctx, self.name)
        power_of = config.power_of
        if config.power_budget is not None and power_of is None:
            from repro.power.model import power_table

            power_of = power_table(
                ctx.soc, compression=config.compression != "none"
            )
        ctx.power_of = power_of

        space = resolve_search_space(
            len(ctx.names),
            ctx.width_budget,
            max_parts=config.max_tams,
            min_width=config.min_tam_width,
        )

        best: ConstrainedSchedule | None = None
        evaluated = 0
        with obs.span("search", strategy="exhaustive") as attrs:
            for widths in iter_partitions(
                space.total_width, space.max_parts, space.min_width
            ):
                schedule = schedule_constrained(
                    ctx.names,
                    widths,
                    tables.time_of,
                    power_of=power_of,
                    power_budget=config.power_budget,
                    precedence=config.precedence,
                )
                evaluated += 1
                if best is None or schedule.makespan < best.makespan:
                    best = schedule
            attrs["partitions"] = evaluated
        obs.inc("architecture.partitions_evaluated", evaluated)
        assert best is not None
        ctx.extras["constrained_schedule"] = best
        ctx.partitions_evaluated = evaluated
        ctx.strategy = "exhaustive"
        ctx.events.emit(
            "search-done",
            self.name,
            strategy="exhaustive",
            partitions=evaluated,
            widths=list(best.widths),
            makespan=best.makespan,
        )


class PerTamArchitectureStage(Stage):
    """Figure 4(b) search: per-TAM code widths and shared expanded widths."""

    name = "architecture"

    def run(self, ctx: PlanContext) -> None:
        config = ctx.config
        analyses = ctx.analyses
        names = ctx.names
        space = resolve_search_space(
            len(names),
            ctx.width_budget,
            max_parts=config.max_tams,
            min_width=config.min_code_width,
        )

        def code_width_time(name: str, w: int) -> int:
            analysis = analyses[name]
            best = analysis.best_for_code_width(w) or analysis.best_compressed_for_tam(w)
            if best is None:
                return analysis.uncompressed_point(w).test_time
            return best.test_time

        best_arch: tuple[int, tuple[int, ...], list[int], list[int]] | None = None
        evaluated = 0
        for widths in iter_partitions(
            space.total_width, space.max_parts, space.min_width
        ):
            evaluated += 1
            outcome = schedule_cores(names, widths, code_width_time)
            # Fix a shared expanded width per TAM from the assigned cores'
            # favorite m values, then re-cost every core at that width.
            shared_ms: list[int] = []
            loads: list[int] = []
            for tam, w in enumerate(widths):
                members = [
                    names[i] for i, t in enumerate(outcome.assignment) if t == tam
                ]
                if not members:
                    shared_ms.append(1)
                    loads.append(0)
                    continue
                candidates = set()
                for name in members:
                    best = analyses[name].best_for_code_width(w)
                    if best is not None:
                        candidates.add(best.m)
                if not candidates:
                    candidates = {
                        min(
                            analyses[name].core.max_useful_wrapper_chains
                            for name in members
                        )
                    }
                best_m, best_load = None, None
                for m in sorted(candidates):
                    load = sum(
                        _shared_m_time(analyses[name], m) for name in members
                    )
                    if best_load is None or load < best_load:
                        best_m, best_load = m, load
                assert best_m is not None and best_load is not None
                shared_ms.append(best_m)
                loads.append(best_load)
            makespan = max(loads) if loads else 0
            if best_arch is None or makespan < best_arch[0]:
                best_arch = (makespan, widths, shared_ms, list(outcome.assignment))

        assert best_arch is not None
        obs.inc("architecture.partitions_evaluated", evaluated)
        ctx.extras["per_tam_best"] = best_arch
        ctx.partitions_evaluated = evaluated
        ctx.strategy = "exhaustive"
        ctx.events.emit(
            "search-done",
            self.name,
            strategy="exhaustive",
            partitions=evaluated,
            makespan=best_arch[0],
        )


class RobustArchitectureStage(Stage):
    """Box-uncertainty surrogate: optimize against inflated times."""

    name = "architecture"

    def __init__(self, epsilon: float = 0.1) -> None:
        self.epsilon = epsilon

    def run(self, ctx: PlanContext) -> None:
        from repro.core.robust import robust_search

        config = ctx.config
        tables = _require_tables(ctx, self.name)
        robust = robust_search(
            ctx.names,
            ctx.width_budget,
            tables.time_of,
            epsilon=self.epsilon,
            max_parts=config.max_tams,
            min_width=config.min_tam_width,
            strategy=config.strategy,
            options=config.search_options(),
        )
        obs.inc(
            "architecture.partitions_evaluated",
            robust.search.partitions_evaluated,
        )
        ctx.search = robust.search
        ctx.partitions_evaluated = robust.search.partitions_evaluated
        ctx.strategy = f"robust-{robust.search.strategy}"
        ctx.extras["robust_plan"] = robust
        ctx.events.emit(
            "search-done",
            self.name,
            strategy=ctx.strategy,
            partitions=ctx.partitions_evaluated,
            widths=list(robust.widths),
            nominal_makespan=robust.nominal_makespan,
            worst_case_makespan=robust.worst_case_makespan,
            epsilon=self.epsilon,
        )


# ---------------------------------------------------------------------------
# Step 4 variants: schedule materialization.
# ---------------------------------------------------------------------------


class ScheduleStage(Stage):
    """Lay out the searched partition as a :class:`TestArchitecture`."""

    name = "schedule"

    def run(self, ctx: PlanContext) -> None:
        if ctx.search is None:
            raise RuntimeError(
                "ScheduleStage needs a partition search result; run an "
                "architecture stage first"
            )
        tables = _require_tables(ctx, self.name)
        with obs.span("place-cores", cores=len(ctx.names)):
            ctx.architecture = build_architecture(
                ctx.soc.name,
                ctx.names,
                ctx.search.outcome,
                tables.config_of,
                placement=ctx.placement,
                ate_channels=ctx.width_budget,
                time_of=tables.time_of,
            )
        obs.inc("schedule.cores_scheduled", len(ctx.architecture.scheduled))
        ctx.events.emit(
            "scheduled",
            self.name,
            test_time=ctx.architecture.test_time,
            tams=len(ctx.architecture.tams),
        )


class ConstrainedScheduleStage(Stage):
    """Materialize the constrained schedule (may include TAM idle time)."""

    name = "schedule"

    def run(self, ctx: PlanContext) -> None:
        from repro.core.timeline import constrained_architecture

        best = ctx.extras.get("constrained_schedule")
        if best is None:
            raise RuntimeError(
                "ConstrainedScheduleStage needs ConstrainedArchitectureStage "
                "to run first"
            )
        tables = _require_tables(ctx, self.name)
        ctx.architecture = constrained_architecture(
            ctx.soc.name,
            best,
            tables.config_of,
            placement=ctx.placement,
            ate_channels=ctx.width_budget,
        )
        ctx.peak_power = best.peak_power
        ctx.tam_idle_cycles = best.tam_idle_cycles
        ctx.events.emit(
            "scheduled",
            self.name,
            test_time=ctx.architecture.test_time,
            peak_power=best.peak_power,
            tam_idle_cycles=best.tam_idle_cycles,
        )


class PerTamScheduleStage(Stage):
    """Materialize the per-TAM plan with shared expanded widths."""

    name = "schedule"

    def run(self, ctx: PlanContext) -> None:
        best_arch = ctx.extras.get("per_tam_best")
        if best_arch is None:
            raise RuntimeError(
                "PerTamScheduleStage needs PerTamArchitectureStage to run first"
            )
        _, widths, shared_ms, assignment = best_arch
        analyses = ctx.analyses
        names = ctx.names

        tams = tuple(
            Tam(index=i, width=max(1, shared_ms[i])) for i in range(len(widths))
        )
        loads = [0] * len(widths)
        order = sorted(
            range(len(names)),
            key=lambda i: (
                -_shared_m_time(analyses[names[i]], shared_ms[assignment[i]]),
                names[i],
            ),
        )
        scheduled = []
        for index in order:
            name = names[index]
            tam = assignment[index]
            config = _shared_m_config(analyses[name], shared_ms[tam])
            start = loads[tam]
            end = start + config.test_time
            loads[tam] = end
            scheduled.append(
                ScheduledCore(config=config, tam_index=tam, start=start, end=end)
            )
        ctx.architecture = TestArchitecture(
            soc_name=ctx.soc.name,
            placement=DecompressorPlacement.PER_TAM,
            tams=tams,
            scheduled=tuple(scheduled),
            ate_channels=ctx.width_budget,
        )
        ctx.events.emit(
            "scheduled",
            self.name,
            test_time=ctx.architecture.test_time,
            tams=len(tams),
        )


def _shared_m_time(analysis: CoreAnalysis, shared_m: int) -> int:
    """Core test time when its TAM's decompressor outputs ``shared_m`` bits.

    The core can only use as many wrapper chains as it has scanned
    elements; surplus decompressor outputs idle.
    """
    m = min(shared_m, analysis.core.max_useful_wrapper_chains)
    return analysis.compressed_point(m).test_time


def _shared_m_config(analysis: CoreAnalysis, shared_m: int):
    from repro.core.architecture import CoreConfig

    m = min(shared_m, analysis.core.max_useful_wrapper_chains)
    point = analysis.compressed_point(m)
    return CoreConfig(
        core_name=analysis.core.name,
        uses_compression=True,
        wrapper_chains=point.m,
        code_width=point.code_width,
        test_time=point.test_time,
        volume=point.volume,
    )


# ---------------------------------------------------------------------------
# Optional final stage: independent plan verification.
# ---------------------------------------------------------------------------


class VerifyStage(Stage):
    """Re-check the finished plan against the paper's models.

    Opt-in via ``RunConfig(verify=True)`` (or ``--verify`` on the CLI);
    the planning service always appends it.  Runs the independent
    invariant checker of :mod:`repro.verify` over the materialized
    architecture -- and, for constrained runs, over the timeline
    schedule -- and raises
    :class:`~repro.verify.invariants.PlanVerificationError` instead of
    letting an invalid plan escape the pipeline.
    """

    name = "verify"

    def run(self, ctx: PlanContext) -> None:
        # Imported here: repro.verify depends on this package's config.
        from repro.verify import (
            verify_architecture,
            verify_constrained,
            verify_packed,
        )

        config = ctx.config
        if ctx.architecture is None:
            raise RuntimeError(
                "VerifyStage needs a materialized architecture; run it "
                "after the schedule stage"
            )
        packed_plan = ctx.extras.get("packed_plan")
        reports = [
            verify_architecture(
                ctx.architecture,
                soc=ctx.soc,
                config=config,
                analyses=ctx.analyses or None,
                power_of=ctx.power_of,
                power_budget=config.power_budget,
                stated_peak=ctx.peak_power if ctx.power_of is not None else None,
                precedence=config.precedence,
                packed=packed_plan is not None,
            )
        ]
        schedule = ctx.extras.get("constrained_schedule")
        if schedule is not None and ctx.tables is not None:
            reports.append(
                verify_constrained(
                    schedule,
                    ctx.names,
                    ctx.tables.time_of,
                    power_of=ctx.power_of,
                    power_budget=config.power_budget,
                    precedence=config.precedence,
                )
            )
        if packed_plan is not None and ctx.tables is not None:
            reports.append(
                verify_packed(packed_plan, ctx.names, ctx.tables.time_of)
            )
        violations = sum(len(r.violations) for r in reports)
        obs.inc("verify.runs")
        if violations:
            obs.inc("verify.violations", violations)
        ctx.extras["verification"] = tuple(reports)
        ctx.events.emit(
            "verified",
            self.name,
            checks=sum(len(r.checks) for r in reports),
            violations=violations,
        )
        for report in reports:
            report.raise_if_violations()


# ---------------------------------------------------------------------------
# Stage registry: alternative partitioners/schedulers plug in by name.
# ---------------------------------------------------------------------------

StageFactory = Callable[..., Stage]

_REGISTRY: dict[tuple[str, str], StageFactory] = {}

#: The pluggable slots: the standard four-stage flow's two open steps
#: plus the optional trailing verification slot.
STAGE_SLOTS = ("architecture", "schedule", "verify")


def register_stage(slot: str, name: str, factory: StageFactory) -> None:
    """Register a stage factory under ``(slot, name)``.

    ``slot`` is "architecture" (the paper's step 3), "schedule"
    (step 4), or "verify" (the optional post-plan checker).
    Registering an existing name replaces it, so downstream code can
    override the built-ins.
    """
    if slot not in STAGE_SLOTS:
        raise ValueError(
            f"unknown stage slot {slot!r}; expected one of {STAGE_SLOTS}"
        )
    _REGISTRY[(slot, name)] = factory


def unregister_stage(slot: str, name: str) -> None:
    """Remove a registered stage (tests use this for isolation)."""
    _REGISTRY.pop((slot, name), None)


def stage_factory(slot: str, name: str) -> StageFactory:
    """Look up a registered stage factory; raises ``KeyError`` with help."""
    try:
        return _REGISTRY[(slot, name)]
    except KeyError:
        known = sorted(n for s, n in _REGISTRY if s == slot)
        raise KeyError(
            f"no {slot} stage named {name!r}; registered: {known}"
        ) from None


def available_stages(slot: str | None = None) -> dict[str, tuple[str, ...]]:
    """Registered stage names, grouped by slot."""
    slots = (slot,) if slot is not None else STAGE_SLOTS
    return {
        s: tuple(sorted(n for (slot_, n) in _REGISTRY if slot_ == s))
        for s in slots
    }


register_stage("architecture", "partition", ArchitectureStage)
register_stage(
    "architecture", "exhaustive", lambda: ArchitectureStage(strategy="exhaustive")
)
register_stage(
    "architecture", "greedy", lambda: ArchitectureStage(strategy="greedy")
)
register_stage(
    "architecture", "anneal", lambda: ArchitectureStage(strategy="anneal")
)
register_stage(
    "architecture",
    "evolutionary",
    lambda: ArchitectureStage(strategy="evolutionary"),
)
register_stage("architecture", "constrained", ConstrainedArchitectureStage)
register_stage("architecture", "per-tam", PerTamArchitectureStage)
register_stage("architecture", "robust", RobustArchitectureStage)
register_stage("schedule", "list", ScheduleStage)
register_stage("schedule", "constrained", ConstrainedScheduleStage)
register_stage("schedule", "per-tam", PerTamScheduleStage)
register_stage("verify", "invariants", VerifyStage)


def _packing_architecture_stage(*args: Any, **kwargs: Any) -> Stage:
    # Lazy import: repro.pack.stages subclasses this module's Stage, so
    # a top-level import either way would be circular at load time.
    from repro.pack.stages import PackingArchitectureStage

    return PackingArchitectureStage(*args, **kwargs)


def _packing_schedule_stage(*args: Any, **kwargs: Any) -> Stage:
    from repro.pack.stages import PackingScheduleStage

    return PackingScheduleStage(*args, **kwargs)


register_stage("architecture", "packing", _packing_architecture_stage)
register_stage("schedule", "packing", _packing_schedule_stage)
