"""Scheduling-facing lookup tables over the per-core analyses.

:class:`LookupTables` backs the scheduler's ``time_of`` / ``config_of``
callbacks with the per-core design-space tables, applying the
compression policy (none / per-core / auto bypass / technique select)
to pick each core's configuration at a given TAM width.

Both memo layers -- the ``(core, width) -> time`` lookup and the
per-core :class:`~repro.explore.selection.TechniqueSelector` instances
-- are bounded LRUs (the pattern
:mod:`repro.wrapper.design` uses for wrapper designs): a long-lived
service planning an open-ended stream of SOCs in one process must
evict, not grow without limit.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.core.architecture import CoreConfig
from repro.explore.dse import CoreAnalysis

if TYPE_CHECKING:
    from repro.explore.selection import TechniqueSelector

#: Upper bound on memoized (core, width) -> test-time entries.
TIME_CACHE_MAX_ENTRIES = 65536

#: Upper bound on retained per-core technique selectors.
SELECTOR_CACHE_MAX_ENTRIES = 4096


class LookupTables:
    """Per-SOC time/volume/config lookups backing the scheduler."""

    #: Instance-overridable bounds (tests shrink them to force eviction).
    time_cache_max_entries = TIME_CACHE_MAX_ENTRIES
    selector_cache_max_entries = SELECTOR_CACHE_MAX_ENTRIES

    def __init__(
        self, analyses: dict[str, CoreAnalysis], compression: str
    ) -> None:
        self.compression = compression
        self.analyses = analyses
        self._time_cache: OrderedDict[tuple[str, int], int] = OrderedDict()
        self._selectors: "OrderedDict[str, TechniqueSelector]" = OrderedDict()
        self._counters = {"hits": 0, "misses": 0, "evictions": 0}

    # ------------------------------------------------------------------

    def _selector_for(self, name: str) -> "TechniqueSelector":
        from repro.explore.selection import TechniqueSelector

        selector = self._selectors.get(name)
        if selector is not None:
            self._selectors.move_to_end(name)
            return selector
        selector = TechniqueSelector(self.analyses[name])
        self._selectors[name] = selector
        while len(self._selectors) > self.selector_cache_max_entries:
            self._selectors.popitem(last=False)
            self._counters["evictions"] += 1
        return selector

    def _pick(self, name: str, width: int) -> CoreConfig:
        analysis = self.analyses[name]
        if self.compression == "select":
            selector = self._selector_for(name)
            choice = selector.select(width)
            return CoreConfig(
                core_name=name,
                uses_compression=choice.technique != "none",
                wrapper_chains=choice.wrapper_chains,
                code_width=choice.code_width,
                test_time=choice.test_time,
                volume=choice.volume,
                technique=choice.technique,
            )
        plain = analysis.uncompressed_point(width)
        if self.compression == "none":
            best = None
        else:
            best = analysis.best_compressed_for_tam(width)
        use_compressed = best is not None and (
            self.compression == "per-core" or best.test_time < plain.test_time
        )
        if use_compressed:
            assert best is not None
            return CoreConfig(
                core_name=name,
                uses_compression=True,
                wrapper_chains=best.m,
                code_width=best.code_width,
                test_time=best.test_time,
                volume=best.volume,
            )
        return CoreConfig(
            core_name=name,
            uses_compression=False,
            wrapper_chains=min(width, analysis.core.max_useful_wrapper_chains),
            code_width=None,
            test_time=plain.test_time,
            volume=plain.volume,
        )

    # ------------------------------------------------------------------

    def time_of(self, name: str, width: int) -> int:
        key = (name, width)
        value = self._time_cache.get(key)
        if value is not None:
            self._time_cache.move_to_end(key)
            self._counters["hits"] += 1
            return value
        value = self._pick(name, width).test_time
        self._counters["misses"] += 1
        self._time_cache[key] = value
        while len(self._time_cache) > self.time_cache_max_entries:
            self._time_cache.popitem(last=False)
            self._counters["evictions"] += 1
        return value

    def config_of(self, name: str, width: int) -> CoreConfig:
        return self._pick(name, width)

    def cache_info(self) -> dict[str, int]:
        """Sizes and traffic counters of the bounded memo layers."""
        return {
            "time_entries": len(self._time_cache),
            "time_max_entries": self.time_cache_max_entries,
            "selector_entries": len(self._selectors),
            "selector_max_entries": self.selector_cache_max_entries,
            **self._counters,
        }
