"""The staged pipeline driving one co-optimization run.

A :class:`Pipeline` is an ordered list of
:class:`~repro.pipeline.stages.Stage` objects sharing a
:class:`~repro.pipeline.stages.PlanContext`.  :meth:`Pipeline.run`
brackets every stage with start/end events, collects per-stage wall
clock, and folds the final context into a
:class:`~repro.pipeline.result.PlanResult`.

:func:`plan` is the one-call entry point: it routes a
:class:`~repro.pipeline.config.RunConfig` to the matching built-in
flavor (standard / constrained / per-TAM) and runs it.  The
pre-pipeline entry points ``optimize_soc`` /
``optimize_soc_constrained`` / ``optimize_per_tam`` are thin wrappers
over these flavors and remain bit-identical to their original
implementations (differentially tested).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence

from repro import obs
from repro.pipeline.config import RunConfig
from repro.pipeline.events import EventRecorder, EventSink, RunEvent
from repro.pipeline.result import PlanResult
from repro.pipeline.stages import (
    DecompressorStage,
    PlanContext,
    Stage,
    WrapperStage,
    stage_factory,
)
from repro.soc.soc import Soc


class Pipeline:
    """An ordered sequence of stages producing a :class:`PlanResult`."""

    def __init__(self, stages: Sequence[Stage], *, name: str = "pipeline") -> None:
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.stages = tuple(stages)
        self.name = name

    # ------------------------------------------------------------------
    # Built-in flavors.
    # ------------------------------------------------------------------

    @classmethod
    def standard(cls) -> "Pipeline":
        """The paper's four-step flow (Figure 4(a)/(c), Tables 1-3)."""
        return cls.from_registry("partition", "list", name="standard")

    @classmethod
    def constrained(cls) -> "Pipeline":
        """Exhaustive partitioning + power/precedence-aware scheduling."""
        return cls.from_registry("constrained", "constrained", name="constrained")

    @classmethod
    def per_tam(cls) -> "Pipeline":
        """Figure 4(b): one decompressor per TAM, shared expanded width."""
        return cls.from_registry("per-tam", "per-tam", name="per-tam")

    @classmethod
    def from_registry(
        cls,
        architecture: str,
        schedule: str,
        *,
        name: str | None = None,
    ) -> "Pipeline":
        """Assemble wrapper + decompressor + registered step-3/4 stages."""
        return cls(
            [
                WrapperStage(),
                DecompressorStage(),
                stage_factory("architecture", architecture)(),
                stage_factory("schedule", schedule)(),
            ],
            name=name or f"{architecture}+{schedule}",
        )

    # ------------------------------------------------------------------

    def run(
        self,
        soc: Soc,
        width_budget: int,
        config: RunConfig | None = None,
        *,
        events: EventSink | Iterable[EventSink] | None = None,
    ) -> PlanResult:
        """Execute the stages and fold the context into a result.

        ``events`` is an optional sink (or iterable of sinks) receiving
        every :class:`~repro.pipeline.events.RunEvent` of the run live;
        the same stream also goes to the ``repro.pipeline`` logger.
        """
        if events is None:
            sinks: tuple[EventSink, ...] = ()
        elif callable(events):
            sinks = (events,)
        else:
            sinks = tuple(events)
        # Bridge the event stream into the trace so there is ONE
        # timeline: stage brackets become spans (below); every other
        # event kind lands as an instant marker inside its span.
        active = obs.current()
        if active is not None:
            sinks = sinks + (_event_bridge(active),)
        config = config if config is not None else RunConfig()
        recorder = EventRecorder(*sinks)
        with obs.span(
            f"pipeline/{self.name}",
            soc=soc.name,
            width_budget=width_budget,
            compression=config.compression,
        ):
            recorder.emit(
                "run-start",
                pipeline=self.name,
                soc=soc.name,
                width_budget=width_budget,
                compression=config.compression,
                stages=[stage.name for stage in self.stages],
            )
            ctx = PlanContext(soc, width_budget, config, recorder)
            for stage in self.stages:
                with recorder.stage(stage.name), obs.span(stage.name):
                    stage.run(ctx)
            if ctx.architecture is None:
                raise RuntimeError(
                    f"pipeline {self.name!r} finished without producing an "
                    "architecture; it needs a schedule stage"
                )
            result = PlanResult(
                soc_name=soc.name,
                width_budget=width_budget,
                compression=config.compression,
                architecture=ctx.architecture,
                cpu_seconds=recorder.total_seconds,
                partitions_evaluated=ctx.partitions_evaluated,
                strategy=ctx.strategy,
                peak_power=ctx.peak_power,
                power_budget=config.power_budget,
                tam_idle_cycles=ctx.tam_idle_cycles,
                stage_timings=recorder.stage_timings(),
            )
            recorder.emit(
                "run-end",
                pipeline=self.name,
                soc=soc.name,
                test_time=result.test_time,
                seconds=result.cpu_seconds,
                partitions=result.partitions_evaluated,
                strategy=result.strategy,
            )
        if active is not None:
            from repro.obs.report import build_run_report

            active.run_count += 1
            result = dataclasses.replace(
                result,
                report=build_run_report(
                    soc_name=soc.name,
                    pipeline=self.name,
                    width_budget=width_budget,
                    compression=config.compression,
                    strategy=result.strategy,
                    partitions_evaluated=result.partitions_evaluated,
                    cpu_seconds=result.cpu_seconds,
                    architecture=result.architecture,
                    recorder=recorder,
                    obs=active,
                    tables=ctx.tables,
                ),
            )
            active.last_report = result.report
        return result


#: Event kinds already represented as spans; everything else bridges
#: into the trace as an instant marker.
_BRACKET_KINDS = frozenset(
    {"run-start", "run-end", "stage-start", "stage-end"}
)


def _event_bridge(active: obs.Observability) -> EventSink:
    """A sink mirroring detail events into the active trace."""

    def bridge(event: RunEvent) -> None:
        if event.kind in _BRACKET_KINDS:
            return
        payload = {
            k: v
            for k, v in event.payload.items()
            if isinstance(v, (str, int, float, bool)) or v is None
        }
        active.tracer.instant(event.kind, **payload)

    return bridge


def pipeline_for(config: RunConfig) -> Pipeline:
    """The built-in pipeline flavor matching a configuration.

    ``config.architecture`` / ``config.schedule`` (when not ``"auto"``)
    select registered step-3/4 stages explicitly -- the packing flow is
    ``architecture="packing", schedule="packing"`` -- overriding the
    compression/constraint routing.  ``config.verify`` appends the
    registered verify stage, so the plan is independently re-checked
    before it leaves the pipeline.
    """
    if config.architecture != "auto" or config.schedule != "auto":
        if (config.architecture == "packing") != (config.schedule == "packing"):
            raise ValueError(
                "the packing architecture and schedule stages must be "
                "selected together (the schedule stage materializes the "
                "architecture stage's packed plan)"
            )
        flavor = Pipeline.from_registry(
            config.architecture if config.architecture != "auto" else "partition",
            config.schedule if config.schedule != "auto" else "list",
        )
    elif config.compression == "per-tam":
        flavor = Pipeline.per_tam()
    elif config.is_constrained:
        flavor = Pipeline.constrained()
    else:
        flavor = Pipeline.standard()
    if config.verify:
        return Pipeline(
            flavor.stages + (stage_factory("verify", "invariants")(),),
            name=f"{flavor.name}+verify",
        )
    return flavor


def plan(
    soc: Soc,
    width_budget: int,
    config: RunConfig | None = None,
    *,
    events: EventSink | Iterable[EventSink] | None = None,
) -> PlanResult:
    """Plan ``soc`` under ``width_budget``: the one-call entry point."""
    config = config if config is not None else RunConfig()
    return pipeline_for(config).run(soc, width_budget, config, events=events)
