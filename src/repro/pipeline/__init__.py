"""Staged co-optimization pipeline: config, stages, events, result.

The package unifies the repo's four-step flow (wrapper design,
decompressor design, test-architecture design, test scheduling) behind

* :class:`~repro.pipeline.config.RunConfig` -- every knob in one
  frozen value object,
* :class:`~repro.pipeline.pipeline.Pipeline` -- typed stages with a
  pluggable registry for the architecture/schedule steps,
* :class:`~repro.pipeline.result.PlanResult` -- the unified outcome
  (JSON round-trippable via :mod:`repro.reporting.export`),
* :class:`~repro.pipeline.events.RunEvent` -- the structured run-event
  stream (also mirrored to the ``repro.pipeline`` logger).

Quick start::

    from repro.pipeline import RunConfig, plan

    result = plan(soc, 32, RunConfig(compression="auto", jobs=4))
"""

from repro.pipeline.config import (
    COMPRESSION_MODES,
    Compression,
    RunConfig,
    normalize_compression,
)
from repro.pipeline.events import LOGGER, EventRecorder, EventSink, RunEvent
from repro.pipeline.pipeline import Pipeline, pipeline_for, plan
from repro.pipeline.result import PlanResult
from repro.pipeline.stages import (
    ArchitectureStage,
    ConstrainedArchitectureStage,
    ConstrainedScheduleStage,
    DecompressorStage,
    PerTamArchitectureStage,
    PerTamScheduleStage,
    PlanContext,
    RobustArchitectureStage,
    ScheduleStage,
    Stage,
    VerifyStage,
    WrapperStage,
    available_stages,
    register_stage,
    stage_factory,
    unregister_stage,
)
from repro.pipeline.tables import LookupTables

__all__ = [
    "COMPRESSION_MODES",
    "Compression",
    "RunConfig",
    "normalize_compression",
    "LOGGER",
    "EventRecorder",
    "EventSink",
    "RunEvent",
    "Pipeline",
    "pipeline_for",
    "plan",
    "PlanResult",
    "ArchitectureStage",
    "ConstrainedArchitectureStage",
    "ConstrainedScheduleStage",
    "DecompressorStage",
    "PerTamArchitectureStage",
    "PerTamScheduleStage",
    "PlanContext",
    "RobustArchitectureStage",
    "ScheduleStage",
    "Stage",
    "VerifyStage",
    "WrapperStage",
    "available_stages",
    "register_stage",
    "stage_factory",
    "unregister_stage",
    "LookupTables",
]
