"""Structured run events: the pipeline's observability layer.

Every pipeline run produces a stream of :class:`RunEvent` records --
run start/end, per-stage start/end with wall-clock timings, analysis
cache hit/miss counts, search progress -- replacing the ad-hoc
``_time.perf_counter()`` pairs the pre-pipeline optimizers carried and
giving library consumers a programmatic signal instead of stdout.

Events flow to two places:

* any number of caller-supplied **sinks** (plain callables), which is
  what tests and embedding services use to tap a run live;
* the ``repro.pipeline`` **logger**, so standard ``logging``
  configuration observes runs with no repro-specific wiring.  Library
  code never ``print()``\\ s; the CLI renders its own stdout from
  returned values and can opt into the event log with ``--verbose``.
"""

from __future__ import annotations

import json
import logging
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

#: All library-side run reporting goes through this logger (or a child).
LOGGER = logging.getLogger("repro.pipeline")

#: Event kinds emitted with INFO verbosity; everything else is DEBUG.
_INFO_KINDS = frozenset({"run-start", "run-end", "stage-start", "stage-end"})


@dataclass(frozen=True)
class RunEvent:
    """One structured observation from a pipeline run.

    ``kind`` is a stable string ("run-start", "stage-start",
    "stage-end", "stage-error", "cache-stats", ...); ``stage`` names
    the originating stage when there is one; ``elapsed`` is seconds
    since the run started; ``payload`` holds kind-specific,
    JSON-serializable details.
    """

    kind: str
    stage: str | None
    elapsed: float
    payload: Mapping[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        """Single-line human rendering (used by the logger mirror)."""
        where = f" [{self.stage}]" if self.stage else ""
        details = " ".join(
            f"{k}={_format_value(v)}" for k, v in self.payload.items()
        )
        text = f"+{self.elapsed:.3f}s {self.kind}{where}"
        return f"{text} {details}" if details else text


def _format_value(value: Any) -> str:
    """Render one payload value for the single-line event format.

    Scalars print bare; containers (lists, dicts, tuples) are
    compact-JSON-encoded so a payload like ``widths=[9, 7]`` stays
    greppable instead of degrading to ``widths=[9, 7]``-with-spaces or
    a ``repr`` full of quotes.  Values JSON cannot express fall back to
    ``repr``.
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return str(value)
    try:
        return json.dumps(value, separators=(",", ":"), default=repr)
    except (TypeError, ValueError):
        return repr(value)


#: A sink receives every event of the run it is attached to.
EventSink = Callable[[RunEvent], None]


class EventRecorder:
    """Collects and fans out the events of one pipeline run."""

    def __init__(self, *sinks: EventSink) -> None:
        self._sinks = tuple(sinks)
        self._start = time.perf_counter()
        self.events: list[RunEvent] = []

    # ------------------------------------------------------------------

    def emit(
        self, kind: str, stage: str | None = None, **payload: Any
    ) -> RunEvent:
        """Record an event, mirror it to logging, and fan out to sinks."""
        event = RunEvent(
            kind=kind,
            stage=stage,
            elapsed=time.perf_counter() - self._start,
            payload=payload,
        )
        self.events.append(event)
        level = logging.INFO if kind in _INFO_KINDS else logging.DEBUG
        if LOGGER.isEnabledFor(level):
            LOGGER.log(level, "%s", event.format())
        for sink in self._sinks:
            sink(event)
        return event

    @contextmanager
    def stage(self, name: str, **payload: Any) -> Iterator[None]:
        """Bracket a stage with start/end (or error) events and timing."""
        self.emit("stage-start", name, **payload)
        began = time.perf_counter()
        try:
            yield
        except BaseException as exc:
            self.emit(
                "stage-error",
                name,
                seconds=time.perf_counter() - began,
                error=repr(exc),
            )
            raise
        self.emit("stage-end", name, seconds=time.perf_counter() - began)

    # ------------------------------------------------------------------

    def stage_timings(self) -> tuple[tuple[str, float], ...]:
        """(stage name, seconds) for every completed stage, in order.

        Only events that actually name their stage contribute: a
        hand-emitted ``stage-end`` with ``stage=None`` used to leak an
        unusable ``("", seconds)`` row into ``PlanResult.stage_timings``
        and every report built on it, so anonymous stage ends are
        skipped instead.
        """
        return tuple(
            (event.stage, float(event.payload["seconds"]))
            for event in self.events
            if event.kind == "stage-end" and event.stage is not None
        )

    @property
    def total_seconds(self) -> float:
        """Wall-clock seconds since this recorder was created."""
        return time.perf_counter() - self._start
