"""The unified outcome of a pipeline run.

:class:`PlanResult` supersedes the pre-pipeline ``OptimizeResult`` /
``ConstrainedResult`` pair: one frozen dataclass carries the planned
architecture, the run provenance (compression mode, partition-search
statistics, wall-clock), the constraint bookkeeping (peak power, TAM
idle time -- zero/None for unconstrained runs), and the per-stage
timings from the event stream.  ``repro.reporting.export`` gives it a
lossless JSON round trip (:func:`~repro.reporting.export.result_to_json`
/ :func:`~repro.reporting.export.result_from_json`).

``OptimizeResult`` and ``ConstrainedResult`` remain importable as
aliases of this class for backward compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.architecture import TestArchitecture

if TYPE_CHECKING:
    from repro.obs.report import RunReport


@dataclass(frozen=True)
class PlanResult:
    """Outcome of one co-optimization run (any pipeline flavor)."""

    soc_name: str
    width_budget: int
    compression: str
    architecture: TestArchitecture
    cpu_seconds: float
    partitions_evaluated: int
    strategy: str
    peak_power: float = 0.0
    power_budget: float | None = None
    tam_idle_cycles: int = 0
    stage_timings: tuple[tuple[str, float], ...] = ()
    #: Observability artifact, attached when a run executes under an
    #: enabled :mod:`repro.obs` context; ``None`` otherwise.  Excluded
    #: from equality so plans stay comparable across observed and
    #: unobserved runs (bit-identical results is the engine invariant).
    report: "RunReport | None" = field(default=None, compare=False, repr=False)

    @property
    def test_time(self) -> int:
        return self.architecture.test_time

    @property
    def test_data_volume(self) -> int:
        return self.architecture.test_data_volume

    @property
    def tam_widths(self) -> tuple[int, ...]:
        return tuple(t.width for t in self.architecture.tams)


#: Backward-compatible names for the pre-pipeline result types.
OptimizeResult = PlanResult
ConstrainedResult = PlanResult
