"""Seeded synthetic many-core SOCs (the 100+-core search workload).

The paper's designs top out at a few dozen cores, where the partition
space at paper-scale widths stays enumerable.  The ``repro.search``
layer exists for the regime beyond that: at ``W_TAM = 128`` the
partition count blows past ``AUTO_PARTITION_LIMIT`` even at the default
six-TAM cap, so only the greedy / anneal / evolutionary backends can
play.  This module generates that workload: ``synth<N>`` SOCs with
``N`` small cores (fuzz-sized, so the per-core analysis of hundreds of
cores stays cheap while the *architecture search* is the hard part).

Generation is deterministic: the design name seeds an FNV hash, every
core derives from one :mod:`numpy` generator, and the same name always
yields the same SOC -- ``synth150`` is as stable a benchmark name as
``d695``.  ``synth100`` / ``synth150`` / ``synth300`` appear in the
benchmarks catalog; any ``synth<N>`` with ``N`` in bounds loads.
"""

from __future__ import annotations

import re

import numpy as np

from repro.soc.core import Core
from repro.soc.soc import Soc

#: Bounds on the accepted ``synth<N>`` core counts.
MIN_SYNTHETIC_CORES = 2
MAX_SYNTHETIC_CORES = 512

#: The core counts listed in the benchmarks catalog.
CATALOG_CORE_COUNTS: tuple[int, ...] = (100, 150, 300)

_NAME_RE = re.compile(r"^synth(\d+)$")

_GATES_PER_SCAN_CELL = 22  # reporting-only approximation


def _seed_for(name: str) -> int:
    value = 2166136261
    for ch in name.encode("utf-8"):
        value = ((value ^ ch) * 16777619) & 0xFFFFFFFF
    return value


def parse_synthetic_name(name: str) -> int | None:
    """``"synth150"`` -> 150; ``None`` when ``name`` is not synthetic.

    A well-formed ``synth<N>`` outside the supported bounds raises
    (the caller asked for a synthetic design; silently treating it as
    an unknown name would misreport the problem).
    """
    match = _NAME_RE.match(name)
    if match is None:
        return None
    num_cores = int(match.group(1))
    if not MIN_SYNTHETIC_CORES <= num_cores <= MAX_SYNTHETIC_CORES:
        raise ValueError(
            f"synthetic designs support {MIN_SYNTHETIC_CORES}.."
            f"{MAX_SYNTHETIC_CORES} cores, got {name!r}"
        )
    return num_cores


def synthetic_core(rng: np.random.Generator, index: int) -> Core:
    """One small core; sized so exact-mode analysis stays cheap."""
    chains = tuple(
        int(rng.integers(6, 41)) for _ in range(int(rng.integers(1, 5)))
    )
    cells = sum(chains)
    return Core(
        name=f"sc{index}",
        inputs=int(rng.integers(1, 11)),
        outputs=int(rng.integers(1, 11)),
        bidirs=int(rng.integers(0, 3)),
        scan_chain_lengths=chains,
        patterns=int(rng.integers(8, 49)),
        care_bit_density=float(rng.uniform(0.05, 0.3)),
        one_fraction=float(rng.uniform(0.2, 0.8)),
        seed=int(rng.integers(0, 2**31)),
        gates=cells * _GATES_PER_SCAN_CELL,
    )


def synthetic_soc(num_cores: int, *, seed: int | None = None) -> Soc:
    """A deterministic ``num_cores``-core SOC named ``synth<N>``.

    ``seed`` defaults to a hash of the name, so ``synthetic_soc(150)``
    is reproducible across processes and sessions; passing an explicit
    seed yields alternate instances of the same size for fuzzing.
    """
    if not MIN_SYNTHETIC_CORES <= num_cores <= MAX_SYNTHETIC_CORES:
        raise ValueError(
            f"synthetic SOCs support {MIN_SYNTHETIC_CORES}.."
            f"{MAX_SYNTHETIC_CORES} cores, got {num_cores}"
        )
    name = f"synth{num_cores}"
    rng = np.random.default_rng(_seed_for(name) if seed is None else seed)
    cores = tuple(synthetic_core(rng, index) for index in range(num_cores))
    return Soc(
        name=name,
        cores=cores,
        gates=sum(core.gates for core in cores),
        latches=sum(core.scan_cells for core in cores),
    )


def load_synthetic(name: str) -> Soc | None:
    """Resolve a ``synth<N>`` design name, or ``None`` if not synthetic."""
    num_cores = parse_synthetic_name(name)
    if num_cores is None:
        return None
    return synthetic_soc(num_cores)
