"""Hierarchical SOC test planning (extension).

Modern SOCs embed pre-designed *child* SOCs ("mega-cores") that arrive
with their own cores and are wrapped as a unit; the parent-level
planner sees only the child's wrapper.  Following the modular
hierarchical-test formulation (Chakrabarty et al., "Test Planning for
Modular Testing of Hierarchical SOCs"), a wrapped child is
characterized by its *test-time-versus-width* envelope: for every
parent TAM width ``w`` granted to the child, the child runs its own
internal test plan and exposes the resulting test time and ATE volume.

:class:`ChildSocCore` computes that envelope by recursively invoking
the flat co-optimizer on the child, and quacks enough like a per-core
lookup for the parent planner (:func:`optimize_hierarchical`) to
schedule children and ordinary cores side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

from repro.core.architecture import (
    CoreConfig,
    DecompressorPlacement,
    ScheduledCore,
    Tam,
    TestArchitecture,
)
from repro.core.partition import iter_partitions
from repro.core.scheduler import schedule_cores
from repro.explore.dse import analysis_for
from repro.soc.core import Core
from repro.soc.soc import Soc


@dataclass
class ChildSocCore:
    """A wrapped child SOC, seen from the parent as one testable unit.

    Parameters
    ----------
    soc:
        The child design.
    compression:
        Compression mode used *inside* the child when its plan is built.
    max_tams:
        TAM count limit for the child's internal architecture.
    """

    soc: Soc
    compression: Union[bool, str] = True
    max_tams: int | None = None
    _envelope: dict[int, tuple[int, int]] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.soc.name

    def plan_at(self, width: int) -> tuple[int, int]:
        """(test time, volume) of the child at a parent width grant."""
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        cached = self._envelope.get(width)
        if cached is None:
            from repro.core.optimizer import optimize_soc

            result = optimize_soc(
                self.soc,
                width,
                compression=self.compression,
                max_tams=self.max_tams,
            )
            cached = (result.test_time, result.test_data_volume)
            self._envelope[width] = cached
        return cached

    def test_time(self, width: int) -> int:
        return self.plan_at(width)[0]

    def volume(self, width: int) -> int:
        return self.plan_at(width)[1]


Member = Union[Core, ChildSocCore]


@dataclass(frozen=True)
class HierarchicalPlan:
    """Parent-level architecture over cores and wrapped child SOCs."""

    architecture: TestArchitecture
    child_names: tuple[str, ...]

    @property
    def test_time(self) -> int:
        return self.architecture.test_time

    @property
    def test_data_volume(self) -> int:
        return self.architecture.test_data_volume

    @property
    def tam_widths(self) -> tuple[int, ...]:
        return tuple(t.width for t in self.architecture.tams)


def optimize_hierarchical(
    name: str,
    members: Sequence[Member],
    tam_width: int,
    *,
    compression: Union[bool, str] = True,
    max_tams: int | None = None,
    min_tam_width: int = 1,
) -> HierarchicalPlan:
    """Plan a parent SOC whose members are cores and/or child SOCs.

    Children are treated as monolithic tests whose duration depends on
    the width of the TAM they are granted (their internal plan);
    ordinary cores go through the usual per-core lookup.  The parent
    search enumerates TAM partitions and list-schedules the members.
    """
    if not members:
        raise ValueError("cannot plan an empty hierarchy")
    if tam_width < 1:
        raise ValueError(f"TAM width must be >= 1, got {tam_width}")
    names = []
    seen: set[str] = set()
    for member in members:
        label = member.name
        if label in seen:
            raise ValueError(f"duplicate member name: {label}")
        seen.add(label)
        names.append(label)

    by_name = {member.name: member for member in members}
    analyses = {
        member.name: analysis_for(member)
        for member in members
        if isinstance(member, Core)
    }
    comp = compression if compression is not True else "per-core"

    def time_of(label: str, width: int) -> int:
        member = by_name[label]
        if isinstance(member, ChildSocCore):
            return member.test_time(width)
        analysis = analyses[label]
        if comp == "none" or comp is False:
            return analysis.uncompressed_point(width).test_time
        best = analysis.best_compressed_for_tam(width)
        plain = analysis.uncompressed_point(width).test_time
        if best is None:
            return plain
        if comp == "auto":
            return min(best.test_time, plain)
        return best.test_time

    def volume_of(label: str, width: int) -> int:
        member = by_name[label]
        if isinstance(member, ChildSocCore):
            return member.volume(width)
        analysis = analyses[label]
        if comp == "none" or comp is False:
            return analysis.uncompressed_point(width).volume
        best = analysis.best_compressed_for_tam(width)
        if best is None or (
            comp == "auto"
            and analysis.uncompressed_point(width).test_time < best.test_time
        ):
            return analysis.uncompressed_point(width).volume
        return best.volume

    max_parts = min(len(names), 6) if max_tams is None else max_tams
    max_parts = min(max_parts, tam_width // min_tam_width)
    best_outcome = None
    for widths in iter_partitions(tam_width, max_parts, min_tam_width):
        outcome = schedule_cores(names, widths, time_of)
        if best_outcome is None or outcome.makespan < best_outcome.makespan:
            best_outcome = outcome
    assert best_outcome is not None

    widths = best_outcome.widths
    tams = tuple(Tam(index=i, width=w) for i, w in enumerate(widths))
    loads = [0] * len(widths)
    widest = max(widths)
    order = sorted(
        range(len(names)), key=lambda i: (-time_of(names[i], widest), names[i])
    )
    scheduled: list[ScheduledCore] = []
    for index in order:
        label = names[index]
        tam = best_outcome.assignment[index]
        width = widths[tam]
        duration = time_of(label, width)
        member = by_name[label]
        if isinstance(member, ChildSocCore):
            # The child's internal plan (and any compression in it) is
            # encapsulated; the parent sees a monolithic test.
            compressed = False
            code_width = None
            chains = width
        else:
            compressed = comp not in ("none", False) and _core_compressed(
                member, width, analyses, comp
            )
            code_width = _code_width(member, width, analyses, comp)
            if compressed:
                chains = analyses[label].best_compressed_for_tam(width).m
            else:
                chains = min(width, member.max_useful_wrapper_chains)
        config = CoreConfig(
            core_name=label,
            uses_compression=compressed,
            wrapper_chains=chains,
            code_width=code_width,
            test_time=duration,
            volume=volume_of(label, width),
        )
        start = loads[tam]
        scheduled.append(
            ScheduledCore(config=config, tam_index=tam, start=start, end=start + duration)
        )
        loads[tam] = start + duration

    architecture = TestArchitecture(
        soc_name=name,
        placement=DecompressorPlacement.PER_CORE
        if comp not in ("none", False)
        else DecompressorPlacement.NONE,
        tams=tams,
        scheduled=tuple(scheduled),
        ate_channels=tam_width,
    )
    children = tuple(
        member.name for member in members if isinstance(member, ChildSocCore)
    )
    return HierarchicalPlan(architecture=architecture, child_names=children)


def _core_compressed(member: Core, width: int, analyses, comp) -> bool:
    analysis = analyses[member.name]
    best = analysis.best_compressed_for_tam(width)
    if best is None:
        return False
    if comp == "auto":
        return best.test_time < analysis.uncompressed_point(width).test_time
    return True


def _code_width(member: Core, width: int, analyses, comp):
    if not _core_compressed(member, width, analyses, comp):
        return None
    return analyses[member.name].best_compressed_for_tam(width).code_width
