"""SOC and core data model, benchmark definitions, and ITC'02-style I/O.

This subpackage provides the structural substrate the optimizer works on:

* :mod:`repro.soc.core` -- the :class:`~repro.soc.core.Core` description
  (functional I/O, internal scan chains, pattern counts, care-bit density).
* :mod:`repro.soc.soc` -- the :class:`~repro.soc.soc.Soc` container.
* :mod:`repro.soc.itc02` -- a parser/writer for an ITC'02-style ``.soc``
  text format so externally supplied benchmarks can be loaded.
* :mod:`repro.soc.benchmarks` -- embedded reconstructions of the d695 and
  d2758 benchmark SOCs used in the paper.
* :mod:`repro.soc.industrial` -- synthetic industrial cores (ckt-1 ..
  ckt-12) and the System1..System4 SOCs crafted from them.
"""

from repro.soc.core import Core
from repro.soc.soc import Soc
from repro.soc.itc02 import parse_soc, parse_soc_file, format_soc, write_soc_file
from repro.soc.benchmarks import load_benchmark, benchmark_names
from repro.soc.industrial import (
    INDUSTRIAL_CORE_NAMES,
    design_catalog,
    industrial_core,
    industrial_system,
)
from repro.soc.hierarchy import ChildSocCore, HierarchicalPlan, optimize_hierarchical

__all__ = [
    "ChildSocCore",
    "HierarchicalPlan",
    "optimize_hierarchical",
    "Core",
    "Soc",
    "parse_soc",
    "parse_soc_file",
    "format_soc",
    "write_soc_file",
    "load_benchmark",
    "benchmark_names",
    "design_catalog",
    "industrial_core",
    "industrial_system",
    "INDUSTRIAL_CORE_NAMES",
]
