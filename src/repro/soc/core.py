"""Core description for modular SOC test planning.

A :class:`Core` captures exactly the information the paper's flow needs
about an embedded core: its functional terminals (which become wrapper
cells), its internal scan chains (indivisible items during wrapper design),
its test-set size, and -- because we synthesize test cubes rather than run
ATPG on the original netlists -- the care-bit density of its test cubes.

The conventions follow the IEEE 1500 / ITC'02 modular-test literature:

* every functional input and every bidirectional terminal contributes one
  *wrapper input cell* to the scan-in path;
* every functional output and every bidir contributes one *wrapper output
  cell* to the scan-out path;
* internal scan chains are fixed, indivisible segments that must be placed
  whole onto a wrapper chain.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Core:
    """An embedded core to be wrapped and tested.

    Parameters
    ----------
    name:
        Unique identifier within an SOC (e.g. ``"s38417"`` or ``"ckt-7"``).
    inputs:
        Number of functional input terminals.
    outputs:
        Number of functional output terminals.
    bidirs:
        Number of bidirectional terminals.  A bidir needs both a wrapper
        input cell and a wrapper output cell.
    scan_chain_lengths:
        Lengths of the internal scan chains, in flip-flops.  The tuple may
        be empty for purely combinational cores.
    patterns:
        Number of test patterns in the core's test set.
    care_bit_density:
        Fraction of specified (non-X) bits in the core's test cubes.
        ISCAS'89-class cores are dense (~0.4-0.7); modern industrial cores
        are sparse (0.01-0.05), which is what makes compression pay off.
    one_fraction:
        Fraction of the specified bits that are logic 1.  Test cubes from
        ATPG are usually roughly balanced; 0.5 by default.
    seed:
        Seed for the core's synthetic test-cube generator, so that every
        analysis of this core sees the same test data.
    gates:
        Approximate logic gate count (used only for reporting, mirroring
        Table 3's "no. of gates" column).
    """

    name: str
    inputs: int
    outputs: int
    bidirs: int = 0
    scan_chain_lengths: tuple[int, ...] = field(default_factory=tuple)
    patterns: int = 1
    care_bit_density: float = 0.5
    one_fraction: float = 0.5
    seed: int = 0
    gates: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("core name must be non-empty")
        for label, value in (
            ("inputs", self.inputs),
            ("outputs", self.outputs),
            ("bidirs", self.bidirs),
        ):
            if value < 0:
                raise ValueError(f"{label} must be >= 0, got {value}")
        if self.patterns < 1:
            raise ValueError(f"patterns must be >= 1, got {self.patterns}")
        if not 0.0 < self.care_bit_density <= 1.0:
            raise ValueError(
                f"care_bit_density must be in (0, 1], got {self.care_bit_density}"
            )
        if not 0.0 <= self.one_fraction <= 1.0:
            raise ValueError(
                f"one_fraction must be in [0, 1], got {self.one_fraction}"
            )
        lengths = tuple(int(x) for x in self.scan_chain_lengths)
        if any(x <= 0 for x in lengths):
            raise ValueError("scan chain lengths must be positive")
        object.__setattr__(self, "scan_chain_lengths", lengths)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def scan_cells(self) -> int:
        """Total number of internal scan flip-flops."""
        return sum(self.scan_chain_lengths)

    @property
    def num_scan_chains(self) -> int:
        return len(self.scan_chain_lengths)

    @property
    def wrapper_input_cells(self) -> int:
        """Wrapper cells on the scan-in side (inputs + bidirs)."""
        return self.inputs + self.bidirs

    @property
    def wrapper_output_cells(self) -> int:
        """Wrapper cells on the scan-out side (outputs + bidirs)."""
        return self.outputs + self.bidirs

    @property
    def scan_in_bits(self) -> int:
        """Bits loaded per pattern: input wrapper cells + scan cells."""
        return self.wrapper_input_cells + self.scan_cells

    @property
    def scan_out_bits(self) -> int:
        """Bits unloaded per pattern: output wrapper cells + scan cells."""
        return self.wrapper_output_cells + self.scan_cells

    @property
    def is_combinational(self) -> bool:
        return not self.scan_chain_lengths

    @property
    def max_useful_wrapper_chains(self) -> int:
        """Most wrapper chains that can each receive at least one item.

        Items on the scan-in side are the internal scan chains plus the
        individual wrapper input cells; beyond this count, extra wrapper
        chains necessarily stay empty on the scan-in side.  A core always
        supports at least one wrapper chain.
        """
        items = self.num_scan_chains + max(
            self.wrapper_input_cells, self.wrapper_output_cells
        )
        return max(1, items)

    @property
    def test_data_volume(self) -> int:
        """Raw (uncompressed, unpadded) stimulus volume in bits.

        This is the ``V_i`` column of the paper's Table 3: every pattern
        specifies one bit per scan cell and per wrapper input cell.
        """
        return self.patterns * self.scan_in_bits

    # ------------------------------------------------------------------
    # Identity for caching
    # ------------------------------------------------------------------

    def cache_key(self) -> tuple:
        """Value-identity tuple over every field that affects analysis.

        Two :class:`Core` instances with equal cache keys produce
        bit-identical wrapper designs, cube sets and estimates.  Used to
        key in-process caches without pinning the ``Core`` objects
        themselves (the tuple holds only primitives).
        """
        key = self.__dict__.get("_cache_key")
        if key is None:
            key = (
                self.name,
                self.inputs,
                self.outputs,
                self.bidirs,
                self.scan_chain_lengths,
                self.patterns,
                self.care_bit_density,
                self.one_fraction,
                self.seed,
            )
            object.__setattr__(self, "_cache_key", key)
        return key

    def fingerprint(self) -> str:
        """Stable hex digest of :meth:`cache_key`.

        Content-addresses the core for the persistent analysis cache
        (:mod:`repro.explore.cache`): the digest survives process
        restarts and is independent of object identity.  ``gates`` is
        excluded -- it only affects reporting, never analysis results.
        """
        text = repr(self.cache_key())
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def with_patterns(self, patterns: int) -> "Core":
        """Return a copy of this core with a different test-set size."""
        return replace(self, patterns=patterns)

    def with_seed(self, seed: int) -> "Core":
        """Return a copy of this core with a different cube-generator seed."""
        return replace(self, seed=seed)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: {self.inputs} in / {self.outputs} out / "
            f"{self.bidirs} bidir, {self.num_scan_chains} scan chains "
            f"({self.scan_cells} cells), {self.patterns} patterns, "
            f"care density {self.care_bit_density:.3f}"
        )


def balanced_chain_lengths(total_cells: int, num_chains: int) -> tuple[int, ...]:
    """Split ``total_cells`` flip-flops into ``num_chains`` near-equal chains.

    Used when a benchmark source reports only the flip-flop total and the
    chain count.  The first ``total_cells % num_chains`` chains get one
    extra cell, matching the usual scan-stitching convention.
    """
    if num_chains <= 0:
        if total_cells:
            raise ValueError("cannot place scan cells into zero chains")
        return ()
    if total_cells < num_chains:
        raise ValueError(
            f"cannot split {total_cells} cells into {num_chains} non-empty chains"
        )
    base, extra = divmod(total_cells, num_chains)
    return tuple(base + 1 if i < extra else base for i in range(num_chains))


def varied_chain_lengths(
    total_cells: int,
    num_chains: int,
    *,
    spread: float = 0.15,
    seed: int = 0,
) -> tuple[int, ...]:
    """Split ``total_cells`` into ``num_chains`` chains with bounded skew.

    Real scan stitching rarely produces perfectly balanced chains; the
    paper's cause (i) of non-monotonic test time (idle bits that balance
    wrapper chains) only exists when chain lengths differ.  ``spread`` is
    the maximum relative deviation of a chain from the mean length.  The
    result is deterministic in ``seed`` and always sums to ``total_cells``.
    """
    import numpy as np

    if not 0.0 <= spread < 1.0:
        raise ValueError(f"spread must be in [0, 1), got {spread}")
    balanced = balanced_chain_lengths(total_cells, num_chains)
    if spread == 0.0 or num_chains <= 1:
        return balanced
    rng = np.random.default_rng(seed)
    mean = total_cells / num_chains
    jitter = rng.uniform(-spread, spread, size=num_chains) * mean
    lengths = np.maximum(1, np.rint(np.asarray(balanced) + jitter).astype(int))
    # Repair the sum while keeping every chain at least one cell long.
    deficit = total_cells - int(lengths.sum())
    order = rng.permutation(num_chains)
    i = 0
    while deficit != 0:
        idx = order[i % num_chains]
        step = 1 if deficit > 0 else -1
        if lengths[idx] + step >= 1:
            lengths[idx] += step
            deficit -= step
        i += 1
    return tuple(int(x) for x in lengths)


def total_scan_elements(cores: Iterable[Core]) -> int:
    """Sum of scan cells over a collection of cores."""
    return sum(core.scan_cells for core in cores)


def validate_cores(cores: Sequence[Core]) -> None:
    """Raise ``ValueError`` if core names collide."""
    seen: set[str] = set()
    for core in cores:
        if core.name in seen:
            raise ValueError(f"duplicate core name: {core.name}")
        seen.add(core.name)
