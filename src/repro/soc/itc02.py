"""ITC'02-style ``.soc`` text format: parser and writer.

The ITC'02 SOC Test Benchmarks distribute each design as a small text file
listing, per module, its terminal counts, internal scan chains, and test
set sizes.  This module implements a reader/writer for a format that is a
faithful superset of the fields the optimizer needs, so users can bring
their own designs as plain text.  Example::

    SocName d695
    # comment lines and blank lines are ignored
    Module 1 c6288
      Inputs 32
      Outputs 32
      Patterns 12
    End
    Module 8 s5378
      Inputs 35
      Outputs 49
      Bidirs 0
      ScanChains 4 : 46 45 45 43
      Patterns 97
      CareBitDensity 0.62
      Gates 2958
    End

``ScanChains`` gives the chain count followed by the individual chain
lengths after a colon.  ``CareBitDensity``, ``OneFraction``, ``Seed`` and
``Gates`` are extensions of ours (with sensible defaults) used by the
synthetic test-cube generator and by reporting.
"""

from __future__ import annotations

import io
import os
from typing import Iterable, TextIO

from repro.soc.core import Core
from repro.soc.soc import Soc


class SocFormatError(ValueError):
    """Raised when a ``.soc`` document is malformed."""

    def __init__(self, message: str, line_no: int | None = None):
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)
        self.line_no = line_no


def _tokens(text: str) -> Iterable[tuple[int, list[str]]]:
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        yield line_no, line.split()


def parse_soc(text: str) -> Soc:
    """Parse a ``.soc`` document from a string into a :class:`Soc`."""
    soc_name: str | None = None
    soc_gates = 0
    soc_latches = 0
    cores: list[Core] = []
    current: dict | None = None
    current_line = 0

    def finish_module() -> None:
        nonlocal current
        if current is None:
            return
        try:
            cores.append(
                Core(
                    name=current["name"],
                    inputs=current.get("inputs", 0),
                    outputs=current.get("outputs", 0),
                    bidirs=current.get("bidirs", 0),
                    scan_chain_lengths=tuple(current.get("chains", ())),
                    patterns=current.get("patterns", 1),
                    care_bit_density=current.get("density", 0.5),
                    one_fraction=current.get("ones", 0.5),
                    seed=current.get("seed", 0),
                    gates=current.get("gates", 0),
                )
            )
        except ValueError as exc:
            raise SocFormatError(
                f"invalid module {current.get('name')!r}: {exc}", current_line
            ) from exc
        current = None

    for line_no, toks in _tokens(text):
        key = toks[0]
        try:
            if key == "SocName":
                soc_name = toks[1]
            elif key == "TotalModules":
                pass  # informational; validated at the end if present
            elif key == "SocGates":
                soc_gates = int(toks[1])
            elif key == "SocLatches":
                soc_latches = int(toks[1])
            elif key == "Module":
                finish_module()
                name = toks[2] if len(toks) > 2 else f"module{toks[1]}"
                current = {"name": name}
                current_line = line_no
            elif key == "End":
                if current is None:
                    raise SocFormatError("End without a Module", line_no)
                finish_module()
            elif current is not None:
                _parse_module_field(current, key, toks, line_no)
            else:
                raise SocFormatError(f"unexpected directive {key!r}", line_no)
        except (IndexError, ValueError) as exc:
            if isinstance(exc, SocFormatError):
                raise
            raise SocFormatError(f"cannot parse {key!r} directive: {exc}", line_no)
    finish_module()

    if soc_name is None:
        raise SocFormatError("missing SocName directive")
    return Soc(name=soc_name, cores=tuple(cores), gates=soc_gates, latches=soc_latches)


def _parse_module_field(current: dict, key: str, toks: list[str], line_no: int) -> None:
    if key == "Inputs":
        current["inputs"] = int(toks[1])
    elif key == "Outputs":
        current["outputs"] = int(toks[1])
    elif key == "Bidirs":
        current["bidirs"] = int(toks[1])
    elif key == "Patterns":
        current["patterns"] = int(toks[1])
    elif key == "CareBitDensity":
        current["density"] = float(toks[1])
    elif key == "OneFraction":
        current["ones"] = float(toks[1])
    elif key == "Seed":
        current["seed"] = int(toks[1])
    elif key == "Gates":
        current["gates"] = int(toks[1])
    elif key == "ScanChains":
        if ":" not in toks:
            raise SocFormatError("ScanChains needs 'count : lengths...'", line_no)
        colon = toks.index(":")
        count = int(toks[1])
        lengths = [int(t) for t in toks[colon + 1 :]]
        if len(lengths) != count:
            raise SocFormatError(
                f"ScanChains declares {count} chains but lists {len(lengths)} lengths",
                line_no,
            )
        current["chains"] = lengths
    else:
        raise SocFormatError(f"unknown module field {key!r}", line_no)


def parse_soc_file(path: str | os.PathLike) -> Soc:
    """Parse a ``.soc`` file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_soc(handle.read())


def format_soc(soc: Soc) -> str:
    """Serialize a :class:`Soc` to the ``.soc`` text format."""
    out = io.StringIO()
    out.write(f"SocName {soc.name}\n")
    out.write(f"TotalModules {len(soc.cores)}\n")
    if soc.gates:
        out.write(f"SocGates {soc.gates}\n")
    if soc.latches:
        out.write(f"SocLatches {soc.latches}\n")
    for index, core in enumerate(soc.cores, start=1):
        out.write(f"Module {index} {core.name}\n")
        out.write(f"  Inputs {core.inputs}\n")
        out.write(f"  Outputs {core.outputs}\n")
        if core.bidirs:
            out.write(f"  Bidirs {core.bidirs}\n")
        if core.scan_chain_lengths:
            lengths = " ".join(str(x) for x in core.scan_chain_lengths)
            out.write(f"  ScanChains {core.num_scan_chains} : {lengths}\n")
        out.write(f"  Patterns {core.patterns}\n")
        out.write(f"  CareBitDensity {core.care_bit_density}\n")
        if core.one_fraction != 0.5:
            out.write(f"  OneFraction {core.one_fraction}\n")
        if core.seed:
            out.write(f"  Seed {core.seed}\n")
        if core.gates:
            out.write(f"  Gates {core.gates}\n")
        out.write("End\n")
    return out.getvalue()


def write_soc_file(soc: Soc, path: str | os.PathLike) -> None:
    """Write a :class:`Soc` to disk in the ``.soc`` text format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(format_soc(soc))


def dump_soc(soc: Soc, stream: TextIO) -> None:
    """Write a :class:`Soc` to an open text stream."""
    stream.write(format_soc(soc))
