"""Synthetic industrial cores (ckt-1 .. ckt-12) and System1..System4 SOCs.

The paper's main experiments use SOCs "crafted from industrial cores"
described in the ITC'06 selective-encoding paper (ref [14]): scan-cell
counts from 10,000 to 110,000, care-bit density of 1-5%, and per-system
test data volume in the multi-gigabit range.  Those cores are proprietary,
so this module synthesizes stand-ins that match every stated property:

* scan cells per core: 10k .. 110k;
* hundreds of moderately unbalanced internal scan chains (real scan
  stitching never balances perfectly -- this is what produces the idle
  bits behind the paper's cause (i) of non-monotonic test time);
* care-bit density 1.0% .. 4.8%;
* pattern counts sized so that System1..System4 carry gigabits of raw
  test data.

``ckt-7`` -- the core the paper plots in Figures 2 and 3 -- is given 253
internal scan chains so that, at TAM width w = 10 (wrapper-chain range
m in [128, 255]), the interesting regime around m = 253 wrapper chains is
reproduced: beyond one wrapper chain per scan chain, extra chains only
redistribute I/O cells and the test time stops improving monotonically.
"""

from __future__ import annotations

from repro.soc.core import Core, varied_chain_lengths
from repro.soc.soc import Soc


def _seed_for(name: str) -> int:
    value = 2166136261
    for ch in name.encode("utf-8"):
        value = ((value ^ ch) * 16777619) & 0xFFFFFFFF
    return value


# name: (scan cells, scan chains, inputs, outputs, patterns, care density,
#        chain-length spread, one-fraction).  The one-fraction reflects the
# strong 0-skew of specified bits in industrial test data that selective
# encoding's minority-symbol coding exploits (ref [14]).
_CKT_SPECS: dict[str, tuple[int, int, int, int, int, float, float, float]] = {
    "ckt-1": (34_000, 130, 120, 104, 9_600, 0.014, 0.15, 0.28),
    "ckt-2": (12_000, 60, 96, 80, 5_400, 0.024, 0.18, 0.35),
    "ckt-3": (26_000, 100, 150, 130, 7_800, 0.016, 0.14, 0.30),
    "ckt-4": (45_000, 160, 180, 160, 12_600, 0.012, 0.16, 0.26),
    "ckt-5": (18_000, 80, 110, 90, 6_600, 0.020, 0.20, 0.38),
    "ckt-6": (64_000, 200, 210, 190, 16_800, 0.011, 0.13, 0.24),
    "ckt-7": (52_000, 253, 140, 120, 4_800, 0.026, 0.12, 0.50),
    "ckt-8": (23_000, 90, 100, 115, 7_200, 0.018, 0.17, 0.32),
    "ckt-9": (78_000, 240, 230, 210, 19_200, 0.010, 0.14, 0.25),
    "ckt-10": (15_000, 70, 88, 92, 6_000, 0.022, 0.19, 0.36),
    "ckt-11": (96_000, 300, 260, 240, 22_800, 0.010, 0.12, 0.22),
    "ckt-12": (110_000, 320, 280, 260, 26_400, 0.010, 0.11, 0.22),
}

INDUSTRIAL_CORE_NAMES: tuple[str, ...] = tuple(_CKT_SPECS)

# Core membership of the four industrial systems.  The paper does not list
# the composition; System1 is chosen to contain the cores visible in its
# Figure 4 (ckt-1, ckt-9, ckt-11), and the systems grow in core count the
# way Table 3's gate counts suggest.
_SYSTEM_CORES: dict[str, tuple[str, ...]] = {
    "System1": ("ckt-1", "ckt-2", "ckt-5", "ckt-9", "ckt-11"),
    "System2": ("ckt-2", "ckt-3", "ckt-4", "ckt-6", "ckt-8", "ckt-10"),
    "System3": tuple(f"ckt-{i}" for i in range(1, 9)),
    "System4": tuple(f"ckt-{i}" for i in range(1, 13)),
}

SYSTEM_NAMES: tuple[str, ...] = tuple(_SYSTEM_CORES)

_GATES_PER_SCAN_CELL = 22  # reporting-only approximation


def industrial_core(name: str) -> Core:
    """Build one of the synthetic industrial cores ``ckt-1`` .. ``ckt-12``."""
    try:
        (cells, chains, inputs, outputs, patterns, density, spread, ones) = (
            _CKT_SPECS[name]
        )
    except KeyError:
        raise KeyError(
            f"unknown industrial core {name!r}; available: "
            f"{', '.join(INDUSTRIAL_CORE_NAMES)}"
        ) from None
    seed = _seed_for(name)
    lengths = varied_chain_lengths(cells, chains, spread=spread, seed=seed)
    return Core(
        name=name,
        inputs=inputs,
        outputs=outputs,
        scan_chain_lengths=lengths,
        patterns=patterns,
        care_bit_density=density,
        one_fraction=ones,
        seed=seed,
        gates=cells * _GATES_PER_SCAN_CELL,
    )


def industrial_system(name: str) -> Soc:
    """Build one of the System1..System4 SOCs of the paper's Table 3."""
    try:
        members = _SYSTEM_CORES[name]
    except KeyError:
        raise KeyError(
            f"unknown system {name!r}; available: {', '.join(SYSTEM_NAMES)}"
        ) from None
    cores = tuple(industrial_core(core_name) for core_name in members)
    gates = sum(core.gates for core in cores)
    latches = sum(core.scan_cells for core in cores)
    return Soc(name=name, cores=cores, gates=gates, latches=latches)


def load_design(name: str) -> Soc:
    """Load any catalogued design: d695, d2758, System1..4, or synth<N>."""
    from repro.soc.benchmarks import _BUILDERS  # local import: avoid cycle
    from repro.soc.synthetic import load_synthetic

    if name in _BUILDERS:
        return _BUILDERS[name]()
    if name in _SYSTEM_CORES:
        return industrial_system(name)
    synthetic = load_synthetic(name)
    if synthetic is not None:
        return synthetic
    available = sorted(_BUILDERS) + list(SYSTEM_NAMES) + ["synth<N>"]
    raise KeyError(f"unknown design {name!r}; available: {', '.join(available)}")


def design_catalog() -> tuple[dict[str, object], ...]:
    """Every name :func:`load_design` accepts, with summary statistics.

    One row per design: ``name``, ``family`` (``"academic"`` for the
    embedded ITC'02-class benchmarks, ``"industrial"`` for the
    System1..4 SOCs, ``"synthetic"`` for the seeded many-core
    ``synth<N>`` workloads), ``cores``, ``scan_cells``, ``patterns``,
    and ``gates``.  This is the discovery surface service clients use
    to learn valid design names without reading source (the
    ``designs`` protocol request and the ``repro-soc benchmarks``
    subcommand both render it).
    """
    from repro.soc.benchmarks import _BUILDERS  # local import: avoid cycle
    from repro.soc.synthetic import CATALOG_CORE_COUNTS, synthetic_soc

    rows: list[dict[str, object]] = []
    for name in sorted(_BUILDERS):
        soc = _BUILDERS[name]()
        rows.append(_catalog_row(soc, family="academic"))
    for name in SYSTEM_NAMES:
        rows.append(_catalog_row(industrial_system(name), family="industrial"))
    for num_cores in CATALOG_CORE_COUNTS:
        rows.append(
            _catalog_row(synthetic_soc(num_cores), family="synthetic")
        )
    return tuple(rows)


def _catalog_row(soc: Soc, *, family: str) -> dict[str, object]:
    return {
        "name": soc.name,
        "family": family,
        "cores": len(soc.cores),
        "scan_cells": soc.total_scan_cells,
        "patterns": soc.total_patterns,
        "gates": soc.gates,
    }
