"""SOC container: a named collection of wrapped cores plus chip-level pins.

The paper's optimizer operates on a flat list of cores sharing a top-level
TAM width (``W_TAM``) or a number of ATE channels (``W_ATE``).  The
:class:`Soc` class is that list plus bookkeeping used for reporting
(gate count, initial test data volume).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Sequence

from repro.soc.core import Core, validate_cores


@dataclass(frozen=True)
class Soc:
    """A core-based system-on-chip.

    Parameters
    ----------
    name:
        Benchmark or design name (``"d695"``, ``"System1"``, ...).
    cores:
        The embedded cores, in no particular order.
    gates:
        Approximate total logic gate count (reporting only).
    latches:
        Approximate total latch/flip-flop count (reporting only).
    """

    name: str
    cores: tuple[Core, ...] = field(default_factory=tuple)
    gates: int = 0
    latches: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("SOC name must be non-empty")
        cores = tuple(self.cores)
        validate_cores(cores)
        object.__setattr__(self, "cores", cores)

    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[Core]:
        return iter(self.cores)

    def __len__(self) -> int:
        return len(self.cores)

    def core(self, name: str) -> Core:
        """Look up a core by name; raises ``KeyError`` if absent."""
        for core in self.cores:
            if core.name == name:
                return core
        raise KeyError(f"no core named {name!r} in SOC {self.name!r}")

    @property
    def core_names(self) -> tuple[str, ...]:
        return tuple(core.name for core in self.cores)

    @property
    def total_scan_cells(self) -> int:
        return sum(core.scan_cells for core in self.cores)

    @property
    def total_patterns(self) -> int:
        return sum(core.patterns for core in self.cores)

    @property
    def initial_test_data_volume(self) -> int:
        """``V_i`` of Table 3: raw stimulus bits over all cores."""
        return sum(core.test_data_volume for core in self.cores)

    @property
    def max_useful_tam_width(self) -> int:
        """Widest single TAM any core in the SOC could exploit."""
        return max((c.max_useful_wrapper_chains for c in self.cores), default=1)

    # ------------------------------------------------------------------

    def with_cores(self, cores: Sequence[Core]) -> "Soc":
        """Return a copy of this SOC with a replaced core list."""
        return replace(self, cores=tuple(cores))

    def subset(self, names: Sequence[str]) -> "Soc":
        """Return an SOC restricted to the named cores (order preserved)."""
        wanted = list(names)
        missing = set(wanted) - set(self.core_names)
        if missing:
            raise KeyError(f"cores not in {self.name!r}: {sorted(missing)}")
        picked = tuple(core for core in self.cores if core.name in set(wanted))
        return replace(self, name=f"{self.name}-subset", cores=picked)

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"SOC {self.name}: {len(self.cores)} cores, "
            f"{self.total_scan_cells} scan cells, "
            f"{self.initial_test_data_volume / 1e6:.2f} Mbit initial volume"
        ]
        lines.extend("  " + core.describe() for core in self.cores)
        return "\n".join(lines)
