"""Process-wide kernel-selection flags.

Every vectorized fast path in the repo keeps its scalar reference
implementation; ``REPRO_SCALAR_KERNELS`` switches the whole pipeline
onto the references at once.  The differential suite and the hot-path
benchmark both lean on this: the former to prove bit-identity between
the two stacks, the latter to measure the speedup on the same build.
"""

from __future__ import annotations

import os


def use_scalar_kernels() -> bool:
    """True when ``REPRO_SCALAR_KERNELS`` selects the scalar kernels.

    Read at call time (not import time) so tests and the benchmark can
    flip the environment per subprocess.  Unset, empty, and ``"0"`` all
    mean the vectorized fast path.
    """
    return os.environ.get("REPRO_SCALAR_KERNELS", "").strip() not in ("", "0")
