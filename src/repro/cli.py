"""Command-line interface: plan a design and print the result.

Examples::

    repro-soc plan d695 --width 32
    repro-soc plan System1 --width 31 --no-compression --gantt
    repro-soc figure 2
    repro-soc table 3 --widths 16,32
    repro-soc describe System2
    repro-soc simulate d695 --width 16
    repro-soc export d695 --width 24 --out plan.json
    repro-soc power System2 --width 32 --budget-fraction 0.5
    repro-soc plan d695 --width 16 --trace trace.json --report report.json
    repro-soc report report.json

Every planning subcommand builds one
:class:`~repro.pipeline.config.RunConfig` from the shared performance
flags (``--jobs`` / ``--cache-dir`` / ``--no-cache``, with their
``REPRO_*`` environment equivalents applied at resolve time) and hands
it to the staged pipeline.  ``--verbose`` surfaces the pipeline's
structured run events on stderr via ``logging``; regular output stays
on stdout.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys

from repro import obs
from repro.core.architecture import architecture_summary
from repro.pipeline import RunConfig
from repro.pipeline import plan as run_plan
from repro.soc.industrial import load_design


def _run_config(args: argparse.Namespace, **overrides: object) -> RunConfig:
    """One :class:`RunConfig` from the shared performance flags.

    The CLI enables the persistent analysis cache by default (every
    invocation is a fresh process, so on-disk reuse is where repeated
    ``figure``/``table``/``plan`` runs win); ``--no-cache`` opts out.
    """
    return RunConfig(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=False if args.no_cache else True,
        **overrides,  # type: ignore[arg-type]
    )


def _configure_logging(verbosity: int) -> None:
    """Route the pipeline's run events to stderr at -v/-vv."""
    if not verbosity:
        return
    level = logging.INFO if verbosity == 1 else logging.DEBUG
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(name)s: %(message)s"))
    logger = logging.getLogger("repro")
    logger.addHandler(handler)
    logger.setLevel(level)


def _cmd_plan(args: argparse.Namespace) -> int:
    soc = load_design(args.design)
    compression = "none" if args.no_compression else args.compression
    config = _run_config(
        args,
        compression=compression,
        max_tams=args.max_tams,
        strategy=args.strategy,
    )
    result = run_plan(soc, args.width, config)
    print(architecture_summary(result.architecture))
    print(
        f"partitions evaluated: {result.partitions_evaluated} "
        f"({result.strategy}), cpu {result.cpu_seconds:.2f} s"
    )
    if args.gantt:
        print(result.architecture.render_gantt())
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    soc = load_design(args.design)
    print(soc.describe())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.reporting import experiments as exp

    config = _run_config(args)
    if args.number == 2:
        print(exp.format_figure2(exp.figure2_data(config=config)))
    elif args.number == 3:
        print(exp.format_figure3(exp.figure3_data(config=config)))
    elif args.number == 4:
        print(exp.format_figure4(exp.figure4_data(config=config)))
    else:
        print(f"no figure {args.number} in the paper", file=sys.stderr)
        return 2
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.reporting import experiments as exp

    config = _run_config(args)
    widths = tuple(int(w) for w in args.widths.split(",")) if args.widths else None
    if args.number == 1:
        rows = exp.table1_rows(channels=widths or (16, 24, 32), config=config)
        print(exp.format_table1(rows))
    elif args.number == 2:
        rows = exp.table2_rows(widths=widths or (16, 24, 32, 48, 64), config=config)
        print(exp.format_table2(rows))
    elif args.number == 3:
        rows = exp.table3_rows(widths=widths or (16, 32, 48, 64), config=config)
        print(exp.format_table3(rows))
    else:
        print(f"no table {args.number} in the paper", file=sys.stderr)
        return 2
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.sim.simulator import simulate_architecture

    soc = load_design(args.design)
    config = _run_config(args, compression=args.compression)
    result = run_plan(soc, args.width, config)
    report = simulate_architecture(soc, result.architecture)
    print(
        f"simulated {report.soc_name}: {report.total_cycles} cycles "
        f"(planned {result.test_time}), {report.patterns_applied} patterns, "
        f"{report.bits_streamed} bits streamed, "
        f"{report.codewords_consumed} codewords"
    )
    verdict = "MATCH" if report.total_cycles == result.test_time else "MISMATCH"
    print(f"plan-vs-silicon: {verdict}")
    return 0 if verdict == "MATCH" else 1


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.reporting.export import result_to_json

    soc = load_design(args.design)
    config = _run_config(args, compression=args.compression)
    result = run_plan(soc, args.width, config)
    text = result_to_json(result)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    from repro.power.model import power_table

    soc = load_design(args.design)
    table = power_table(soc, compression=args.compression != "none")
    budget = sum(table.values()) * args.budget_fraction
    config = _run_config(
        args, compression=args.compression, power_budget=budget
    )
    result = run_plan(soc, args.width, config)
    print(
        f"{soc.name} at W={args.width}, budget "
        f"{args.budget_fraction:.2f}x SOC power ({budget:.0f} units): "
        f"{result.test_time} cycles, peak power {result.peak_power:.0f}, "
        f"TAM idle {result.tam_idle_cycles} cycles"
    )
    print(result.architecture.render_gantt())
    return 0


def _add_perf_args(parser: argparse.ArgumentParser) -> None:
    """Shared analysis-engine knobs (see docs/api.md, Performance & caching)."""
    group = parser.add_argument_group("performance")
    group.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for per-core analyses "
        "(0 = one per CPU; default: REPRO_JOBS, else serial)",
    )
    group.add_argument(
        "--cache-dir",
        default=None,
        help="persistent analysis-cache directory "
        "(default: REPRO_CACHE_DIR, else ~/.cache/repro-soc/analysis)",
    )
    group.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent analysis cache for this run",
    )
    group.add_argument(
        "--verbose",
        "-v",
        action="count",
        default=0,
        help="log pipeline run events to stderr (-v stage timings, "
        "-vv every event)",
    )
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome trace-event JSON of the run "
        "(open in Perfetto / chrome://tracing)",
    )
    group.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write the run report JSON (render it back with "
        "'repro-soc report PATH')",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-soc",
        description="SOC test-architecture optimization with core-level "
        "test-pattern expansion (DATE 2008 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="optimize one design at a width budget")
    plan.add_argument("design", help="d695, d2758, or System1..System4")
    plan.add_argument("--width", type=int, required=True, help="W_TAM budget")
    plan.add_argument(
        "--compression",
        choices=["per-core", "none", "auto", "select"],
        default="per-core",
    )
    plan.add_argument("--no-compression", action="store_true")
    plan.add_argument("--max-tams", type=int, default=None)
    plan.add_argument(
        "--strategy", choices=["auto", "exhaustive", "greedy"], default="auto"
    )
    plan.add_argument("--gantt", action="store_true", help="print a Gantt chart")
    _add_perf_args(plan)
    plan.set_defaults(func=_cmd_plan)

    describe = sub.add_parser("describe", help="print a design summary")
    describe.add_argument("design")
    describe.set_defaults(func=_cmd_describe)

    figure = sub.add_parser("figure", help="reproduce a paper figure")
    figure.add_argument("number", type=int)
    _add_perf_args(figure)
    figure.set_defaults(func=_cmd_figure)

    table = sub.add_parser("table", help="reproduce a paper table")
    table.add_argument("number", type=int)
    table.add_argument("--widths", default=None, help="comma-separated widths")
    _add_perf_args(table)
    table.set_defaults(func=_cmd_table)

    simulate = sub.add_parser(
        "simulate", help="replay a plan through the bit-level simulator"
    )
    simulate.add_argument("design")
    simulate.add_argument("--width", type=int, required=True)
    simulate.add_argument(
        "--compression",
        choices=["per-core", "none", "auto", "select"],
        default="auto",
    )
    _add_perf_args(simulate)
    simulate.set_defaults(func=_cmd_simulate)

    export = sub.add_parser("export", help="plan and export to JSON")
    export.add_argument("design")
    export.add_argument("--width", type=int, required=True)
    export.add_argument(
        "--compression",
        choices=["per-core", "none", "auto", "select"],
        default="auto",
    )
    export.add_argument("--out", default=None, help="output path (default stdout)")
    _add_perf_args(export)
    export.set_defaults(func=_cmd_export)

    power = sub.add_parser("power", help="plan under a flat power budget")
    power.add_argument("design")
    power.add_argument("--width", type=int, required=True)
    power.add_argument(
        "--compression",
        choices=["per-core", "none", "auto"],
        default="per-core",
    )
    power.add_argument(
        "--budget-fraction",
        type=float,
        default=0.5,
        help="budget as a fraction of total SOC flat power",
    )
    _add_perf_args(power)
    power.set_defaults(func=_cmd_power)

    report = sub.add_parser(
        "report", help="render a saved run-report JSON as summary tables"
    )
    report.add_argument("file", help="a --report artifact or result export")
    report.set_defaults(func=_cmd_report)

    return parser


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import RunReport, render_report

    with open(args.file, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    # Accept both a bare run report (--report artifact) and a result
    # export that embeds one under its "report" key.
    if data.get("kind") != "run-report" and data.get("report"):
        data = data["report"]
    if data.get("kind") == "session-report":
        print(json.dumps(data, indent=2))
        return 0
    try:
        report = RunReport.from_dict(data)
    except (KeyError, ValueError) as error:
        print(f"not a run report: {error}", file=sys.stderr)
        return 2
    print(render_report(report))
    return 0


def _write_obs_artifacts(
    args: argparse.Namespace, active: "obs.Observability"
) -> None:
    """Write the --trace / --report files after the command ran."""
    from repro.obs.report import session_report
    from repro.obs.trace import write_chrome_trace

    trace_path = getattr(args, "trace", None)
    if trace_path:
        write_chrome_trace(trace_path, active.tracer.snapshot())
        print(f"wrote trace {trace_path}", file=sys.stderr)
    report_path = getattr(args, "report", None)
    if report_path:
        if active.run_count == 1 and active.last_report is not None:
            text = active.last_report.to_json()
        else:
            text = json.dumps(session_report(active), indent=2)
        with open(report_path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote report {report_path}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(getattr(args, "verbose", 0))
    wants_obs = bool(
        getattr(args, "trace", None) or getattr(args, "report", None)
    ) or obs.env_requests_obs()
    if not wants_obs:
        return args.func(args)
    # Scoped so repeated main() calls (tests) never leak a context.
    with obs.enabled() as active:
        code = args.func(args)
        _write_obs_artifacts(args, active)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
