"""Command-line interface: plan a design and print the result.

Examples::

    repro-soc plan d695 --width 32
    repro-soc plan System1 --width 31 --no-compression --gantt
    repro-soc figure 2
    repro-soc table 3 --widths 16,32
    repro-soc describe System2
    repro-soc simulate d695 --width 16
    repro-soc export d695 --width 24 --out plan.json
    repro-soc power System2 --width 32 --budget-fraction 0.5
    repro-soc plan d695 --width 16 --trace trace.json --report report.json
    repro-soc report report.json
    repro-soc benchmarks
    repro-soc serve --port 7465 --jobs 4
    repro-soc submit d695 --width 16 --port 7465
    repro-soc status --port 7465
    repro-soc top --port 7465

Every planning subcommand builds one
:class:`~repro.pipeline.config.RunConfig` from the shared performance
flags (``--jobs`` / ``--cache-dir`` / ``--no-cache``, with their
``REPRO_*`` environment equivalents applied at resolve time) and hands
it to the staged pipeline.  ``--verbose`` surfaces the pipeline's
structured run events on stderr via ``logging``; regular output stays
on stdout.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys

from repro import obs
from repro.core.architecture import architecture_summary
from repro.pipeline import RunConfig
from repro.pipeline import plan as run_plan
from repro.soc.industrial import load_design


def _run_config(args: argparse.Namespace, **overrides: object) -> RunConfig:
    """One :class:`RunConfig` from the shared performance flags.

    The CLI enables the persistent analysis cache by default (every
    invocation is a fresh process, so on-disk reuse is where repeated
    ``figure``/``table``/``plan`` runs win); ``--no-cache`` opts out.
    """
    return RunConfig(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=False if args.no_cache else True,
        **overrides,  # type: ignore[arg-type]
    )


def _configure_logging(verbosity: int) -> None:
    """Route the pipeline's run events to stderr at -v/-vv."""
    if not verbosity:
        return
    level = logging.INFO if verbosity == 1 else logging.DEBUG
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(name)s: %(message)s"))
    logger = logging.getLogger("repro")
    logger.addHandler(handler)
    logger.setLevel(level)


def _search_opts_from_args(args: argparse.Namespace) -> dict[str, str]:
    """Collect --search-opt KEY=VALUE pairs (plus --study/--resume sugar)."""
    opts: dict[str, str] = {}
    for item in getattr(args, "search_opt", None) or []:
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise ValueError(
                f"--search-opt expects KEY=VALUE, got {item!r}"
            )
        opts[key.strip()] = value
    if getattr(args, "study", None):
        opts.setdefault("study", args.study)
    if getattr(args, "resume", False):
        opts.setdefault("resume", "true")
    return opts


def _pack_opts_from_args(args: argparse.Namespace) -> dict[str, str]:
    """Collect --pack-opt KEY=VALUE pairs for the rectangle packer."""
    opts: dict[str, str] = {}
    for item in getattr(args, "pack_opt", None) or []:
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise ValueError(f"--pack-opt expects KEY=VALUE, got {item!r}")
        opts[key.strip()] = value
    return opts


def _cmd_plan(args: argparse.Namespace) -> int:
    soc = load_design(args.design)
    compression = "none" if args.no_compression else args.compression
    try:
        search_opts = _search_opts_from_args(args)
        pack_opts = _pack_opts_from_args(args)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    config = _run_config(
        args,
        compression=compression,
        max_tams=args.max_tams,
        strategy=args.strategy,
        search_opts=tuple(sorted(search_opts.items())),
        architecture=args.architecture,
        schedule=args.schedule,
        pack_opts=tuple(sorted(pack_opts.items())),
        verify=args.verify,
    )
    try:
        result = run_plan(soc, args.width, config)
    except ValueError as error:
        # Backend option validation (unknown knob, bad value) is a usage
        # error, same as a malformed --search-opt.
        print(str(error), file=sys.stderr)
        return 2
    print(architecture_summary(result.architecture))
    print(
        f"partitions evaluated: {result.partitions_evaluated} "
        f"({result.strategy}), cpu {result.cpu_seconds:.2f} s"
    )
    if args.gantt:
        print(result.architecture.render_gantt())
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    soc = load_design(args.design)
    print(soc.describe())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.reporting import experiments as exp

    config = _run_config(args)
    if args.number == 2:
        print(exp.format_figure2(exp.figure2_data(config=config)))
    elif args.number == 3:
        print(exp.format_figure3(exp.figure3_data(config=config)))
    elif args.number == 4:
        print(exp.format_figure4(exp.figure4_data(config=config)))
    else:
        print(f"no figure {args.number} in the paper", file=sys.stderr)
        return 2
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.reporting import experiments as exp

    config = _run_config(args)
    widths = tuple(int(w) for w in args.widths.split(",")) if args.widths else None
    if args.number == 1:
        rows = exp.table1_rows(channels=widths or (16, 24, 32), config=config)
        print(exp.format_table1(rows))
    elif args.number == 2:
        rows = exp.table2_rows(widths=widths or (16, 24, 32, 48, 64), config=config)
        print(exp.format_table2(rows))
    elif args.number == 3:
        rows = exp.table3_rows(widths=widths or (16, 32, 48, 64), config=config)
        print(exp.format_table3(rows))
    else:
        print(f"no table {args.number} in the paper", file=sys.stderr)
        return 2
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.sim.simulator import simulate_architecture

    soc = load_design(args.design)
    config = _run_config(args, compression=args.compression)
    result = run_plan(soc, args.width, config)
    report = simulate_architecture(soc, result.architecture)
    print(
        f"simulated {report.soc_name}: {report.total_cycles} cycles "
        f"(planned {result.test_time}), {report.patterns_applied} patterns, "
        f"{report.bits_streamed} bits streamed, "
        f"{report.codewords_consumed} codewords"
    )
    verdict = "MATCH" if report.total_cycles == result.test_time else "MISMATCH"
    print(f"plan-vs-silicon: {verdict}")
    return 0 if verdict == "MATCH" else 1


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.reporting.export import result_to_json

    soc = load_design(args.design)
    config = _run_config(args, compression=args.compression)
    result = run_plan(soc, args.width, config)
    text = result_to_json(result)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    from repro.power.model import power_table

    soc = load_design(args.design)
    table = power_table(soc, compression=args.compression != "none")
    budget = sum(table.values()) * args.budget_fraction
    config = _run_config(
        args, compression=args.compression, power_budget=budget
    )
    result = run_plan(soc, args.width, config)
    print(
        f"{soc.name} at W={args.width}, budget "
        f"{args.budget_fraction:.2f}x SOC power ({budget:.0f} units): "
        f"{result.test_time} cycles, peak power {result.peak_power:.0f}, "
        f"TAM idle {result.tam_idle_cycles} cycles"
    )
    print(result.architecture.render_gantt())
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import verify_plan

    if args.plan:
        from repro.reporting.export import result_from_json

        with open(args.plan, "r", encoding="utf-8") as handle:
            text = handle.read()
        try:
            result = result_from_json(text)
        except (KeyError, TypeError, ValueError) as error:
            # The export reconstructs through the real constructors, so
            # a structurally impossible plan (overlap, wrong slot
            # length) is rejected before it even reaches the checker.
            print(
                f"rejected: {args.plan} is not a consistent plan export: "
                f"{error}",
                file=sys.stderr,
            )
            return 2
        try:
            soc = load_design(result.soc_name)
        except KeyError:
            soc = None  # unknown design: structural checks only
        config = RunConfig(compression=result.compression)
        report = verify_plan(result, soc, config=config)
    else:
        if not args.design or args.width is None:
            print(
                "verify needs DESIGN --width W, or --plan FILE",
                file=sys.stderr,
            )
            return 2
        soc = load_design(args.design)
        try:
            pack_opts = _pack_opts_from_args(args)
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
        config = _run_config(
            args,
            compression=args.compression,
            architecture=getattr(args, "architecture", "auto"),
            schedule=getattr(args, "schedule", "auto"),
            pack_opts=tuple(sorted(pack_opts.items())),
        )
        result = run_plan(soc, args.width, config)
        report = verify_plan(result, soc, config=config)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_benchmarks(args: argparse.Namespace) -> int:
    from repro.soc.industrial import design_catalog

    rows = design_catalog()
    if args.json:
        print(json.dumps(list(rows), indent=2))
        return 0
    header = f"{'design':<10} {'family':<11} {'cores':>5} {'scan cells':>11} {'patterns':>9} {'gates':>10}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['name']:<10} {row['family']:<11} {row['cores']:>5} "
            f"{row['scan_cells']:>11,} {row['patterns']:>9,} {row['gates']:>10,}"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs.logging import configure_json_logging
    from repro.serve.server import run_server
    from repro.serve.service import PlanningService, ServiceSettings

    settings = ServiceSettings(
        workers=args.jobs,
        max_depth=args.queue_depth,
        max_retries=args.max_retries,
        default_timeout_s=args.job_timeout,
        isolation=args.isolation,
        state_dir=args.state_dir,
        telemetry=not args.no_telemetry,
    )
    service = PlanningService(settings)
    # The service's structured lifecycle log goes to stderr as JSON
    # lines (one object per line, correlated by request_id), unless
    # the operator opted out.
    if not args.no_log:
        configure_json_logging(sys.stderr)
    # The ready line goes to stdout (scripts parse it for the real
    # port); the stopped summary to stderr so it never mixes in.
    return run_server(
        service,
        host=args.host,
        port=args.port,
        on_ready=lambda event: print(json.dumps(event), flush=True),
        on_stopped=lambda event: print(
            json.dumps(event), file=sys.stderr, flush=True
        ),
    )


def _client(args: argparse.Namespace) -> "object":
    from repro.serve.client import ServiceClient

    return ServiceClient(args.host, args.port)


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve.errors import BackpressureError

    config = _run_config(args, compression=args.compression)
    with _client(args) as client:  # type: ignore[attr-defined]
        try:
            ticket = client.submit(
                args.design,
                args.width,
                config,
                priority=args.priority,
                timeout_s=args.job_timeout,
            )
        except BackpressureError as error:
            print(
                f"rejected: {error} (retry after {error.retry_after:.3g} s)",
                file=sys.stderr,
            )
            return 3
        if args.no_wait:
            print(
                json.dumps(
                    {
                        "job_id": ticket.job_id,
                        "state": ticket.state,
                        "deduped": ticket.deduped,
                    }
                )
            )
            return 0
        result = client.fetch_plan(ticket.job_id, timeout_s=args.job_timeout)
    if args.json:
        from repro.reporting.export import result_to_json

        print(result_to_json(result))
    else:
        print(architecture_summary(result.architecture))
        dedup_note = " (coalesced with an identical in-flight job)" if ticket.deduped else ""
        print(f"job {ticket.job_id}{dedup_note}")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    with _client(args) as client:  # type: ignore[attr-defined]
        if args.job_id:
            payload = client.status(args.job_id)
            payload.pop("ok", None)
            payload.pop("v", None)
        else:
            payload = client.stats()
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.serve.errors import ServiceError
    from repro.serve.top import run_top

    try:
        with _client(args) as client:  # type: ignore[attr-defined]
            code = run_top(
                client,
                interval_s=args.interval,
                iterations=1 if args.once else None,
            )
            if code == 0 and args.metrics:
                print(client.metrics(), end="")
            return code
    except (OSError, ServiceError) as error:
        print(f"service unreachable: {error}", file=sys.stderr)
        return 3


def _add_client_args(parser: argparse.ArgumentParser) -> None:
    from repro.serve.server import DEFAULT_HOST, DEFAULT_PORT

    group = parser.add_argument_group("service connection")
    group.add_argument("--host", default=DEFAULT_HOST)
    group.add_argument("--port", type=int, default=DEFAULT_PORT)


def _add_perf_args(parser: argparse.ArgumentParser) -> None:
    """Shared analysis-engine knobs (see docs/api.md, Performance & caching)."""
    group = parser.add_argument_group("performance")
    group.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for per-core analyses "
        "(0 = one per CPU; default: REPRO_JOBS, else serial)",
    )
    group.add_argument(
        "--cache-dir",
        default=None,
        help="persistent analysis-cache directory "
        "(default: REPRO_CACHE_DIR, else ~/.cache/repro-soc/analysis)",
    )
    group.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent analysis cache for this run",
    )
    group.add_argument(
        "--verbose",
        "-v",
        action="count",
        default=0,
        help="log pipeline run events to stderr (-v stage timings, "
        "-vv every event)",
    )
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome trace-event JSON of the run "
        "(open in Perfetto / chrome://tracing)",
    )
    group.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write the run report JSON (render it back with "
        "'repro-soc report PATH')",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-soc",
        description="SOC test-architecture optimization with core-level "
        "test-pattern expansion (DATE 2008 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="optimize one design at a width budget")
    plan.add_argument(
        "design",
        help="d695, d2758, System1..System4, or a synthetic synthN "
        "(e.g. synth150)",
    )
    plan.add_argument("--width", type=int, required=True, help="W_TAM budget")
    plan.add_argument(
        "--compression",
        choices=["per-core", "none", "auto", "select"],
        default="per-core",
    )
    plan.add_argument("--no-compression", action="store_true")
    plan.add_argument("--max-tams", type=int, default=None)
    plan.add_argument(
        "--strategy",
        choices=["auto", "exhaustive", "greedy", "anneal", "evolutionary"],
        default="auto",
        help="architecture-search backend (see docs/search.md)",
    )
    plan.add_argument(
        "--search-opt",
        action="append",
        metavar="KEY=VALUE",
        default=None,
        help="backend hyperparameter override, repeatable (e.g. "
        "--search-opt iterations=8000 --search-opt seed=7); keys are "
        "validated against the chosen backend",
    )
    plan.add_argument(
        "--architecture",
        default="auto",
        metavar="STAGE",
        help="registered architecture (step-3) stage; 'packing' selects "
        "the flexible-width rectangle packer (see docs/packing.md); "
        "default: auto (compression/constraint routing)",
    )
    plan.add_argument(
        "--schedule",
        default="auto",
        metavar="STAGE",
        help="registered schedule (step-4) stage; pair 'packing' with "
        "--architecture packing; default: auto",
    )
    plan.add_argument(
        "--pack-opt",
        action="append",
        metavar="KEY=VALUE",
        default=None,
        help="rectangle-packer override, repeatable (heuristic="
        "bottom-left|diagonal|auto, max_widths=N)",
    )
    plan.add_argument(
        "--study",
        metavar="PATH",
        default=None,
        help="evolutionary only: JSON study store checkpointed every "
        "generation (shorthand for --search-opt study=PATH)",
    )
    plan.add_argument(
        "--resume",
        action="store_true",
        help="evolutionary only: continue from the --study checkpoint "
        "(shorthand for --search-opt resume=true)",
    )
    plan.add_argument("--gantt", action="store_true", help="print a Gantt chart")
    plan.add_argument(
        "--verify",
        action="store_true",
        help="run the invariant checker as a pipeline stage (fails the run "
        "on any violation)",
    )
    _add_perf_args(plan)
    plan.set_defaults(func=_cmd_plan)

    verify = sub.add_parser(
        "verify",
        help="independently re-check a plan against the invariant catalog",
    )
    verify.add_argument(
        "design", nargs="?", default=None, help="design to plan and verify"
    )
    verify.add_argument("--width", type=int, default=None, help="W_TAM budget")
    verify.add_argument(
        "--compression",
        choices=["per-core", "none", "auto", "select", "per-tam"],
        default="per-core",
    )
    verify.add_argument(
        "--plan",
        default=None,
        metavar="FILE",
        help="verify an exported plan JSON instead of planning afresh",
    )
    verify.add_argument(
        "--architecture",
        default="auto",
        metavar="STAGE",
        help="architecture stage to plan with (e.g. packing)",
    )
    verify.add_argument(
        "--schedule",
        default="auto",
        metavar="STAGE",
        help="schedule stage to plan with (e.g. packing)",
    )
    verify.add_argument(
        "--pack-opt",
        action="append",
        metavar="KEY=VALUE",
        default=None,
        help="rectangle-packer override, repeatable",
    )
    _add_perf_args(verify)
    verify.set_defaults(func=_cmd_verify)

    describe = sub.add_parser("describe", help="print a design summary")
    describe.add_argument("design")
    describe.set_defaults(func=_cmd_describe)

    figure = sub.add_parser("figure", help="reproduce a paper figure")
    figure.add_argument("number", type=int)
    _add_perf_args(figure)
    figure.set_defaults(func=_cmd_figure)

    table = sub.add_parser("table", help="reproduce a paper table")
    table.add_argument("number", type=int)
    table.add_argument("--widths", default=None, help="comma-separated widths")
    _add_perf_args(table)
    table.set_defaults(func=_cmd_table)

    simulate = sub.add_parser(
        "simulate", help="replay a plan through the bit-level simulator"
    )
    simulate.add_argument("design")
    simulate.add_argument("--width", type=int, required=True)
    simulate.add_argument(
        "--compression",
        choices=["per-core", "none", "auto", "select"],
        default="auto",
    )
    _add_perf_args(simulate)
    simulate.set_defaults(func=_cmd_simulate)

    export = sub.add_parser("export", help="plan and export to JSON")
    export.add_argument("design")
    export.add_argument("--width", type=int, required=True)
    export.add_argument(
        "--compression",
        choices=["per-core", "none", "auto", "select"],
        default="auto",
    )
    export.add_argument("--out", default=None, help="output path (default stdout)")
    _add_perf_args(export)
    export.set_defaults(func=_cmd_export)

    power = sub.add_parser("power", help="plan under a flat power budget")
    power.add_argument("design")
    power.add_argument("--width", type=int, required=True)
    power.add_argument(
        "--compression",
        choices=["per-core", "none", "auto"],
        default="per-core",
    )
    power.add_argument(
        "--budget-fraction",
        type=float,
        default=0.5,
        help="budget as a fraction of total SOC flat power",
    )
    _add_perf_args(power)
    power.set_defaults(func=_cmd_power)

    report = sub.add_parser(
        "report", help="render a saved run-report JSON as summary tables"
    )
    report.add_argument("file", help="a --report artifact or result export")
    report.set_defaults(func=_cmd_report)

    benchmarks = sub.add_parser(
        "benchmarks", help="list the available designs with core counts"
    )
    benchmarks.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    benchmarks.set_defaults(func=_cmd_benchmarks)

    serve = sub.add_parser(
        "serve", help="run the concurrent planning service (line-JSON TCP)"
    )
    _add_client_args(serve)
    serve.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="concurrent worker slots (0 = one per CPU; "
        "default: REPRO_JOBS, else 1)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        help="pending-job bound before submissions get backpressure",
    )
    serve.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="re-runs after a worker crash (exponential backoff)",
    )
    serve.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="default per-job deadline in seconds",
    )
    serve.add_argument(
        "--isolation",
        choices=["process", "thread"],
        default="process",
        help="process: killable subprocess per attempt (default); "
        "thread: in-process, no preemptive timeout",
    )
    serve.add_argument(
        "--state-dir",
        default=None,
        help="directory for queue persistence across restarts",
    )
    serve.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable live telemetry (rolling latency windows and the "
        "metrics/health ops degrade gracefully); the zero-overhead "
        "configuration",
    )
    serve.add_argument(
        "--no-log",
        action="store_true",
        help="suppress the structured JSON log lines on stderr",
    )
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit one plan request to a running service"
    )
    submit.add_argument("design")
    submit.add_argument("--width", type=int, required=True)
    submit.add_argument(
        "--compression",
        choices=["per-core", "none", "auto", "select"],
        default="per-core",
    )
    submit.add_argument(
        "--priority", type=int, default=0, help="higher runs earlier"
    )
    submit.add_argument(
        "--job-timeout", type=float, default=None, help="per-job deadline (s)"
    )
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="print the job id instead of waiting for the result",
    )
    submit.add_argument(
        "--json", action="store_true", help="print the full result export"
    )
    _add_client_args(submit)
    _add_perf_args(submit)
    submit.set_defaults(func=_cmd_submit)

    status = sub.add_parser(
        "status", help="query a running service (a job, or overall stats)"
    )
    status.add_argument("job_id", nargs="?", default=None)
    _add_client_args(status)
    status.set_defaults(func=_cmd_status)

    top = sub.add_parser(
        "top", help="live dashboard of a running service (stats + health)"
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="print one frame and exit (scripting/CI)",
    )
    top.add_argument(
        "--metrics",
        action="store_true",
        help="also dump the raw OpenMetrics exposition after the frame",
    )
    _add_client_args(top)
    top.set_defaults(func=_cmd_top)

    return parser


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import RunReport, render_report

    with open(args.file, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    # Accept both a bare run report (--report artifact) and a result
    # export that embeds one under its "report" key.
    if data.get("kind") != "run-report" and data.get("report"):
        data = data["report"]
    if data.get("kind") == "session-report":
        print(json.dumps(data, indent=2))
        return 0
    try:
        report = RunReport.from_dict(data)
    except (KeyError, ValueError) as error:
        print(f"not a run report: {error}", file=sys.stderr)
        return 2
    print(render_report(report))
    return 0


def _write_obs_artifacts(
    args: argparse.Namespace, active: "obs.Observability"
) -> None:
    """Write the --trace / --report files after the command ran."""
    from repro.obs.report import session_report
    from repro.obs.trace import write_chrome_trace

    trace_path = getattr(args, "trace", None)
    if trace_path:
        write_chrome_trace(trace_path, active.tracer.snapshot())
        print(f"wrote trace {trace_path}", file=sys.stderr)
    report_path = getattr(args, "report", None)
    if report_path:
        if active.run_count == 1 and active.last_report is not None:
            text = active.last_report.to_json()
        else:
            text = json.dumps(session_report(active), indent=2)
        with open(report_path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote report {report_path}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(getattr(args, "verbose", 0))
    wants_obs = bool(
        getattr(args, "trace", None) or getattr(args, "report", None)
    ) or obs.env_requests_obs()
    if not wants_obs:
        return args.func(args)
    # Scoped so repeated main() calls (tests) never leak a context.
    with obs.enabled() as active:
        code = args.func(args)
        _write_obs_artifacts(args, active)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
