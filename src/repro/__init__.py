"""repro -- test-architecture optimization and test scheduling for SOCs
with core-level expansion of compressed test patterns.

A from-scratch reproduction of Larsson, Larsson, Chakrabarty, Eles and
Peng (DATE 2008).  The library plans modular SOC tests: it partitions
the top-level TAM width into buses, designs a wrapper and (optionally) a
selective-encoding decompressor for every core, and schedules the core
tests to minimize the SOC test time.

Quickstart::

    import repro

    soc = repro.load_design("d695")
    plan = repro.optimize_soc(soc, tam_width=32, compression=True)
    print(plan.test_time, plan.tam_widths)
    print(plan.architecture.render_gantt())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.soc.core import Core
from repro.soc.soc import Soc
from repro.soc.benchmarks import load_benchmark, benchmark_names
from repro.soc.industrial import (
    INDUSTRIAL_CORE_NAMES,
    industrial_core,
    industrial_system,
    load_design,
)
from repro.soc.itc02 import parse_soc, parse_soc_file, format_soc, write_soc_file
from repro.wrapper.design import WrapperDesign, design_wrapper
from repro.wrapper.timing import scan_test_time, uncompressed_test_time
from repro.compression.cubes import TestCubeSet, generate_cubes
from repro.compression.selective import (
    Codeword,
    CompressedStream,
    code_parameters,
    encode_slices,
    slice_costs,
)
from repro.compression.decompressor import Decompressor, expand_stream
from repro.explore.cache import AnalysisDiskCache, resolve_cache
from repro.explore.dse import CoreAnalysis, analysis_for, analyze_soc_cores
from repro.parallel import parallel_map, resolve_jobs
from repro.core.architecture import TestArchitecture, DecompressorPlacement
from repro.core.optimizer import (
    OptimizeResult,
    optimize_per_tam,
    optimize_soc,
    optimize_soc_constrained,
)
from repro.core.soclevel import optimize_soc_level_decompressor
from repro.pipeline import (
    Pipeline,
    PlanResult,
    RunConfig,
    RunEvent,
    plan,
)
from repro.core.hardware import decompressor_cost
from repro.core.optimal import optimal_schedule
from repro.core.abort_on_fail import expected_session_time, reorder_within_tams
from repro.ate.tester import Ate
from repro.power.model import core_test_power, power_table
from repro.sim.simulator import simulate_architecture
from repro.compression.misr import Misr, signature_of
from repro.explore.selection import select_technique
from repro.soc.hierarchy import ChildSocCore, optimize_hierarchical
from repro.wrapper.stitching import best_stitching, restitch
from repro.reporting.export import (
    architecture_from_json,
    architecture_to_json,
    result_to_json,
)
from repro.quality.coverage import CoverageModel, soc_quality
from repro.quality.truncation import truncate_for_depth
from repro.core.bus import optimize_bus
from repro.compression.cubeio import (
    load_cubes_npz,
    read_patterns,
    save_cubes_npz,
    write_patterns,
)

__version__ = "1.0.0"

__all__ = [
    "Core",
    "Soc",
    "load_benchmark",
    "benchmark_names",
    "load_design",
    "industrial_core",
    "industrial_system",
    "INDUSTRIAL_CORE_NAMES",
    "parse_soc",
    "parse_soc_file",
    "format_soc",
    "write_soc_file",
    "WrapperDesign",
    "design_wrapper",
    "scan_test_time",
    "uncompressed_test_time",
    "TestCubeSet",
    "generate_cubes",
    "Codeword",
    "CompressedStream",
    "code_parameters",
    "encode_slices",
    "slice_costs",
    "Decompressor",
    "expand_stream",
    "CoreAnalysis",
    "analysis_for",
    "TestArchitecture",
    "DecompressorPlacement",
    "OptimizeResult",
    "PlanResult",
    "RunConfig",
    "RunEvent",
    "Pipeline",
    "plan",
    "optimize_soc",
    "optimize_soc_constrained",
    "optimize_per_tam",
    "optimize_soc_level_decompressor",
    "decompressor_cost",
    "optimal_schedule",
    "expected_session_time",
    "reorder_within_tams",
    "Ate",
    "core_test_power",
    "power_table",
    "simulate_architecture",
    "Misr",
    "signature_of",
    "select_technique",
    "ChildSocCore",
    "optimize_hierarchical",
    "best_stitching",
    "restitch",
    "architecture_from_json",
    "architecture_to_json",
    "result_to_json",
    "CoverageModel",
    "soc_quality",
    "truncate_for_depth",
    "optimize_bus",
    "load_cubes_npz",
    "save_cubes_npz",
    "read_patterns",
    "write_patterns",
    "__version__",
]
