"""Automatic test equipment (ATE) model: channels, memory, timing."""

from repro.ate.tester import Ate, AteFit

__all__ = ["Ate", "AteFit"]
