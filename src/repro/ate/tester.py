"""A simple ATE model.

The paper's cost drivers are (i) the number of ATE channels feeding the
chip (``W_ATE``, the Table 1 constraint), (ii) the per-channel vector
memory depth, and (iii) the tester clock that converts cycle counts into
seconds.  This model performs the bookkeeping for all three; it does not
model channel multiplexing or repeat-per-vector features.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AteFit:
    """Whether a test fits the tester memory, and by what margin."""

    fits: bool
    required_depth: int
    available_depth: int

    @property
    def utilization(self) -> float:
        if self.available_depth == 0:
            return float("inf")
        return self.required_depth / self.available_depth


@dataclass(frozen=True)
class Ate:
    """An ATE with ``channels`` scan channels.

    Parameters
    ----------
    channels:
        Number of chip-side scan channels the tester drives (``W_ATE``).
    memory_depth:
        Vectors (cycles) of storage behind each channel.
    clock_hz:
        Tester clock frequency, for cycle -> seconds conversion.
    """

    channels: int
    memory_depth: int = 16_000_000
    clock_hz: float = 20e6

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ValueError(f"channels must be >= 1, got {self.channels}")
        if self.memory_depth < 1:
            raise ValueError(f"memory_depth must be >= 1, got {self.memory_depth}")
        if self.clock_hz <= 0:
            raise ValueError(f"clock_hz must be > 0, got {self.clock_hz}")

    def seconds(self, cycles: int) -> float:
        """Test application time for a cycle count."""
        return cycles / self.clock_hz

    def fit(self, volume_bits: int) -> AteFit:
        """Check a stimulus volume against the channel memory.

        The volume is spread evenly over the channels; the per-channel
        depth must cover it.
        """
        required = -(-volume_bits // self.channels)
        return AteFit(
            fits=required <= self.memory_depth,
            required_depth=required,
            available_depth=self.memory_depth,
        )

    def depth_for_schedule(self, total_cycles: int) -> AteFit:
        """Check a schedule length (cycles) against memory depth.

        With one bit per channel per cycle, a schedule of ``T`` cycles
        needs depth ``T`` on each active channel.
        """
        return AteFit(
            fits=total_cycles <= self.memory_depth,
            required_depth=total_cycles,
            available_depth=self.memory_depth,
        )
