"""Independent plan verification: invariants, fuzzing, corruption.

Public surface:

* :func:`verify_plan` / :func:`verify_architecture` /
  :func:`verify_constrained` / :func:`verify_preemptive` /
  :func:`verify_packed` -- re-derive a plan's invariants from the
  paper's models and report violations.
* :class:`VerificationReport` / :class:`Violation` /
  :class:`PlanVerificationError` -- the result types.
* :func:`corrupt_result` / :func:`corrupt_architecture` -- deliberate
  tampering helpers for negative tests and fault injection.
* :mod:`repro.verify.fuzz` -- the seeded cross-planner fuzz harness
  (imported lazily; it pulls in every planner).
"""

from repro.verify.corrupt import (
    CORRUPTION_MODES,
    corrupt_architecture,
    corrupt_result,
)
from repro.verify.invariants import (
    PlanVerificationError,
    VerificationReport,
    Violation,
    verify_architecture,
    verify_constrained,
    verify_packed,
    verify_plan,
    verify_preemptive,
)

__all__ = [
    "CORRUPTION_MODES",
    "PlanVerificationError",
    "VerificationReport",
    "Violation",
    "corrupt_architecture",
    "corrupt_result",
    "verify_architecture",
    "verify_constrained",
    "verify_packed",
    "verify_plan",
    "verify_preemptive",
]
