"""Deliberate plan corruption, for exercising the verifier.

The data model's constructors reject invalid plans outright
(``TestArchitecture.__post_init__`` raises on overlap, ``ScheduledCore``
on a wrong slot length), so producing a *bad* plan to test the verifier
requires bypassing them with ``object.__setattr__`` -- exactly what a
planner bug inside already-constructed objects, or a defect introduced
after construction, would look like.  These helpers centralize that
tampering so tests and the service's fault-injection hook corrupt plans
the same way.

Every function deep-copies its input; the original plan is never
mutated.
"""

from __future__ import annotations

import copy

from repro.core.architecture import TestArchitecture
from repro.pipeline.result import PlanResult

#: Corruption modes accepted by :func:`corrupt_result` (and the serve
#: fault hook's ``corrupt_plan`` key).
CORRUPTION_MODES = ("overlap", "inflate-makespan", "power-overrun")


def _corrupt_overlap(architecture: TestArchitecture) -> None:
    """Slide the second-starting test onto the first one's TAM and slot."""
    items = sorted(architecture.scheduled, key=lambda s: (s.start, s.end))
    if len(items) < 2:
        raise ValueError("need at least two scheduled cores to overlap")
    first, second = items[0], items[1]
    object.__setattr__(second, "tam_index", first.tam_index)
    object.__setattr__(second, "start", first.start)
    object.__setattr__(
        second, "end", first.start + second.config.test_time
    )


def _corrupt_makespan(architecture: TestArchitecture) -> None:
    """Stretch the last-finishing test far beyond its model time."""
    if not architecture.scheduled:
        raise ValueError("cannot inflate an empty schedule")
    last = max(architecture.scheduled, key=lambda s: s.end)
    stretch = max(1000, last.config.test_time)
    object.__setattr__(last.config, "test_time", last.config.test_time + stretch)
    object.__setattr__(last, "end", last.end + stretch)


def corrupt_architecture(
    architecture: TestArchitecture, mode: str
) -> TestArchitecture:
    """A corrupted deep copy of ``architecture``."""
    tampered = copy.deepcopy(architecture)
    if mode == "overlap":
        _corrupt_overlap(tampered)
    elif mode == "inflate-makespan":
        _corrupt_makespan(tampered)
    else:
        raise ValueError(
            f"unknown architecture corruption {mode!r}; "
            f"expected one of {CORRUPTION_MODES[:2]}"
        )
    return tampered


def corrupt_result(result: PlanResult, mode: str) -> PlanResult:
    """A corrupted deep copy of ``result``.

    ``"overlap"`` and ``"inflate-makespan"`` tamper with the embedded
    architecture; ``"power-overrun"`` lowers the recorded power budget
    below the recorded peak, turning a feasible plan into one that
    violates its own constraint.
    """
    tampered = copy.deepcopy(result)
    if mode in ("overlap", "inflate-makespan"):
        object.__setattr__(
            tampered,
            "architecture",
            corrupt_architecture(tampered.architecture, mode),
        )
    elif mode == "power-overrun":
        if tampered.peak_power <= 0.0:
            raise ValueError(
                "power-overrun corruption needs a power-aware plan "
                "(peak_power > 0)"
            )
        object.__setattr__(
            tampered, "power_budget", tampered.peak_power / 2.0
        )
    else:
        raise ValueError(
            f"unknown corruption {mode!r}; expected one of {CORRUPTION_MODES}"
        )
    return tampered
