"""Cross-planner fuzzing: random SOCs through every planner + checker.

One seed drives one scenario end to end: a small random SOC is planned
by the pipeline under several compression modes, each plan is re-checked
by the independent invariant checker (:mod:`repro.verify.invariants`),
and the planners are cross-checked against each other through
metamorphic properties that must hold regardless of the random inputs:

* **permutation invariance** -- re-ordering the SOC's core list must not
  change the planned makespan (the schedulers sort canonically);
* **exhaustive dominance** -- the exhaustive partition search can never
  lose to the trivial single-TAM schedule or to the greedy search over
  the same partition space;
* **unconstrained equivalence** -- the constrained scheduler with no
  constraints, and the preemptive scheduler with no power budget, must
  reproduce the paper scheduler's makespan exactly with zero inserted
  TAM idle time;
* **constraint soundness** -- under a random feasible power budget and
  random precedence DAG, the constrained and preemptive schedules must
  pass the full invariant catalog.

Everything is derived from the seed alone, so any finding is replayable
with ``python scripts/fuzz_plans.py --seeds N --start SEED``.

Cores are kept tiny (a few short chains, tens of patterns) so the
``exact`` analysis mode stays cheap and a CI-sized run covers hundreds
of SOCs in seconds-per-seed territory.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.core.partition import search_partitions
from repro.core.preemption import schedule_preemptive
from repro.core.scheduler import schedule_cores
from repro.core.timeline import schedule_constrained
from repro.explore.dse import analysis_for
from repro.pipeline import RunConfig
from repro.pipeline import plan as run_plan
from repro.pipeline.tables import LookupTables
from repro.soc.core import Core
from repro.soc.soc import Soc
from repro.verify.invariants import (
    VerificationReport,
    verify_constrained,
    verify_plan,
    verify_preemptive,
)


@dataclass(frozen=True)
class Finding:
    """One fuzzer-detected property failure, replayable by seed."""

    seed: int
    check: str
    detail: str

    def format(self) -> str:
        return f"seed {self.seed} [{self.check}] {self.detail}"


# ---------------------------------------------------------------------------
# Random inputs.
# ---------------------------------------------------------------------------


def random_core(rng: random.Random, index: int) -> Core:
    """One small random core; sized so exact-mode analysis is cheap."""
    chains = tuple(
        rng.randint(6, 40) for _ in range(rng.randint(1, 4))
    )
    return Core(
        name=f"fz{index}",
        inputs=rng.randint(1, 10),
        outputs=rng.randint(1, 10),
        bidirs=rng.randint(0, 2),
        scan_chain_lengths=chains,
        patterns=rng.randint(8, 48),
        care_bit_density=rng.uniform(0.05, 0.6),
        one_fraction=rng.uniform(0.2, 0.8),
        seed=rng.randint(0, 2**31),
        gates=rng.randint(500, 20000),
    )


def random_soc(rng: random.Random) -> Soc:
    cores = tuple(
        random_core(rng, index) for index in range(rng.randint(2, 5))
    )
    return Soc(
        name=f"fuzz-{rng.randint(0, 10**9)}",
        cores=cores,
        gates=sum(c.gates for c in cores),
        latches=sum(sum(c.scan_chain_lengths) for c in cores),
    )


def random_precedence(
    rng: random.Random, names: Sequence[str]
) -> tuple[tuple[str, str], ...]:
    """A random precedence DAG: edges only forward in a fixed order."""
    if len(names) < 2 or rng.random() < 0.3:
        return ()
    order = sorted(names)
    pairs: set[tuple[str, str]] = set()
    for _ in range(rng.randint(1, len(order) - 1)):
        i, j = sorted(rng.sample(range(len(order)), 2))
        pairs.add((order[i], order[j]))
    return tuple(sorted(pairs))


# ---------------------------------------------------------------------------
# One scenario.
# ---------------------------------------------------------------------------


def _collect(
    findings: list[Finding], seed: int, check: str, report: VerificationReport
) -> None:
    for violation in report.violations:
        findings.append(Finding(seed, check, violation.format()))


def fuzz_one(seed: int) -> list[Finding]:
    """Run the full scenario for one seed; returns property failures."""
    rng = random.Random(seed)
    soc = random_soc(rng)
    names = [core.name for core in soc.cores]
    width = rng.randint(4, 20)
    findings: list[Finding] = []

    # --- pipeline plans under several compression modes, each verified.
    compressions = ["per-core", rng.choice(["none", "auto", "select"])]
    if width >= 3 and rng.random() < 0.3:
        compressions.append("per-tam")
    plans = {}
    for compression in compressions:
        config = RunConfig(
            compression=compression, mode="exact", use_cache=False
        )
        result = run_plan(soc, width, config)
        plans[compression] = result
        _collect(
            findings,
            seed,
            f"plan:{compression}",
            verify_plan(result, soc, config=config),
        )

    # --- metamorphic: core-order permutation cannot change the makespan.
    shuffled = list(soc.cores)
    rng.shuffle(shuffled)
    twin = run_plan(
        soc.with_cores(shuffled),
        width,
        RunConfig(compression="per-core", mode="exact", use_cache=False),
    )
    base = plans["per-core"]
    if twin.test_time != base.test_time:
        findings.append(
            Finding(
                seed,
                "permutation-invariance",
                f"makespan {base.test_time} became "
                f"{twin.test_time} after shuffling cores",
            )
        )

    # --- metamorphic: exhaustive never loses to single-TAM or greedy.
    tables = LookupTables(
        {core.name: analysis_for(core, mode="exact") for core in soc.cores},
        "per-core",
    )
    single = schedule_cores(names, (width,), tables.time_of)
    exhaustive = search_partitions(
        names, width, tables.time_of, strategy="exhaustive"
    )
    greedy = search_partitions(names, width, tables.time_of, strategy="greedy")
    if exhaustive.makespan > single.makespan:
        findings.append(
            Finding(
                seed,
                "exhaustive-dominance",
                f"exhaustive {exhaustive.makespan} > single-TAM "
                f"{single.makespan} at width {width}",
            )
        )
    if exhaustive.makespan > greedy.makespan:
        findings.append(
            Finding(
                seed,
                "exhaustive-dominance",
                f"exhaustive {exhaustive.makespan} > greedy "
                f"{greedy.makespan} at width {width}",
            )
        )

    # --- metamorphic: no constraints => exactly the paper scheduler.
    partitions = [exhaustive.widths]
    partitions.append(
        tuple(
            rng.randint(1, max(2, width // 2))
            for _ in range(rng.randint(1, min(3, len(names))))
        )
    )
    for widths in partitions:
        plain = schedule_cores(names, widths, tables.time_of)
        unconstrained = schedule_constrained(names, widths, tables.time_of)
        if unconstrained.makespan != plain.makespan:
            findings.append(
                Finding(
                    seed,
                    "constrained-equivalence",
                    f"widths {widths}: constrained(no constraints) "
                    f"{unconstrained.makespan} != plain {plain.makespan}",
                )
            )
        if unconstrained.tam_idle_cycles != 0:
            findings.append(
                Finding(
                    seed,
                    "constrained-equivalence",
                    f"widths {widths}: {unconstrained.tam_idle_cycles} idle "
                    "cycles inserted with no constraints",
                )
            )
        preemptive = schedule_preemptive(
            names, widths, tables.time_of, max_segments=rng.randint(1, 4)
        )
        if preemptive.makespan != plain.makespan:
            findings.append(
                Finding(
                    seed,
                    "preemptive-equivalence",
                    f"widths {widths}: preemptive(no budget) "
                    f"{preemptive.makespan} != plain {plain.makespan}",
                )
            )

    # --- constrained + preemptive under random feasible constraints,
    #     re-checked by the independent invariant catalog.
    powers = {name: rng.uniform(0.5, 10.0) for name in names}
    budget = max(powers.values()) * rng.uniform(1.05, 2.5)
    precedence = random_precedence(rng, names)
    widths = partitions[-1]
    constrained = schedule_constrained(
        names,
        widths,
        tables.time_of,
        power_of=powers,
        power_budget=budget,
        precedence=precedence,
    )
    _collect(
        findings,
        seed,
        "constrained",
        verify_constrained(
            constrained,
            names,
            tables.time_of,
            power_of=powers,
            power_budget=budget,
            precedence=precedence,
        ),
    )
    max_segments = rng.randint(1, 4)
    preemptive = schedule_preemptive(
        names,
        widths,
        tables.time_of,
        power_of=powers,
        power_budget=budget,
        precedence=precedence,
        max_segments=max_segments,
    )
    _collect(
        findings,
        seed,
        "preemptive",
        verify_preemptive(
            preemptive,
            names,
            tables.time_of,
            power_of=powers,
            power_budget=budget,
            precedence=precedence,
            max_segments=max_segments,
        ),
    )

    # --- tie-heavy synthetic times: model-derived test times are large
    #     and rarely collide, which hides tie-break divergence between
    #     the planners.  Small random width-dependent times make equal
    #     finish times common (this stage is what flushed out the
    #     constrained scheduler's start-first tie-break bug).
    syn_names = [f"s{i}" for i in range(rng.randint(2, 6))]
    syn_widths = tuple(rng.randint(1, 4) for _ in range(rng.randint(1, 3)))
    syn_times = {
        (name, width): rng.randint(1, 12)
        for name in syn_names
        for width in set(syn_widths)
    }

    def syn_time_of(name: str, width: int) -> int:
        return syn_times[(name, width)]

    syn_plain = schedule_cores(syn_names, syn_widths, syn_time_of)
    syn_constrained = schedule_constrained(
        syn_names, syn_widths, syn_time_of
    )
    syn_preemptive = schedule_preemptive(
        syn_names, syn_widths, syn_time_of, max_segments=rng.randint(1, 3)
    )
    if syn_constrained.makespan != syn_plain.makespan:
        findings.append(
            Finding(
                seed,
                "constrained-equivalence",
                f"synthetic times, widths {syn_widths}: constrained "
                f"{syn_constrained.makespan} != plain {syn_plain.makespan}",
            )
        )
    if syn_constrained.tam_idle_cycles != 0:
        findings.append(
            Finding(
                seed,
                "constrained-equivalence",
                f"synthetic times, widths {syn_widths}: "
                f"{syn_constrained.tam_idle_cycles} idle cycles inserted "
                "with no constraints",
            )
        )
    if syn_preemptive.makespan != syn_plain.makespan:
        findings.append(
            Finding(
                seed,
                "preemptive-equivalence",
                f"synthetic times, widths {syn_widths}: preemptive "
                f"{syn_preemptive.makespan} != plain {syn_plain.makespan}",
            )
        )
    return findings


def fuzz_many(
    seeds: Sequence[int], *, fail_fast: bool = False
) -> list[Finding]:
    """Run many seeds; returns all findings (empty means clean)."""
    findings: list[Finding] = []
    for seed in seeds:
        findings.extend(fuzz_one(seed))
        if fail_fast and findings:
            break
    return findings


__all__ = [
    "Finding",
    "fuzz_many",
    "fuzz_one",
    "random_core",
    "random_precedence",
    "random_soc",
]
