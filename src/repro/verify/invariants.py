"""Independent invariant checking for every plan shape the repo produces.

The planners (:mod:`repro.core.scheduler`, :mod:`repro.core.partition`,
:mod:`repro.core.timeline`, :mod:`repro.core.preemption`) and the three
delivery paths (direct, pipeline, ``repro.serve``) all promise the same
contract: a plan's per-core test times come from the paper's wrapper and
decompressor models, cores sharing a TAM never overlap, the TAM widths
fit the ATE channel budget, power stays under the budget, precedence
holds, and the headline numbers (makespan, peak power, volume) equal
what the schedule actually implies.

This module re-derives each of those facts from first principles --
:func:`repro.wrapper.timing.scan_test_time` for uncompressed cores, the
selective-code points of :class:`repro.explore.dse.CoreAnalysis` and the
dictionary model of :mod:`repro.compression.dictionary` for compressed
ones, a sweep over interval endpoints for overlap and power -- and never
trusts a stored field it can recompute.  In particular the constructors'
own validation (``TestArchitecture.__post_init__``'s overlap check,
``ScheduledCore``'s slot-length check) is deliberately repeated here:
a corrupted object produced by bypassing the constructor must still be
caught.

Checks that need information the caller did not provide (an SOC for the
time models, a power map for the power sweep) are skipped, not failed;
the report's ``checks`` tuple records exactly what ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence, TYPE_CHECKING

from repro.core.architecture import DecompressorPlacement, TestArchitecture
from repro.core.preemption import PreemptiveSchedule
from repro.core.timeline import ConstrainedSchedule
from repro.soc.soc import Soc

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.explore.dse import CoreAnalysis
    from repro.pack.packer import PackedPlan
    from repro.pipeline.config import RunConfig
    from repro.pipeline.result import PlanResult

#: ``PlanResult.strategy`` prefix marking a rectangle-packed plan;
#: survives JSON export, so re-imported plans verify correctly too.
PACKED_STRATEGY_PREFIX = "packing"

#: Signature shared with the schedulers: (core name, tam width) -> cycles.
TimeFn = Callable[[str, int], int]

#: Absolute tolerance for floating-point power comparisons.
POWER_EPS = 1e-6


# ---------------------------------------------------------------------------
# Report data model.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Violation:
    """One broken invariant, locatable to a core and/or TAM."""

    code: str
    message: str
    core: str | None = None
    tam: int | None = None

    def format(self) -> str:
        where = []
        if self.core is not None:
            where.append(f"core={self.core}")
        if self.tam is not None:
            where.append(f"tam={self.tam}")
        suffix = f" ({', '.join(where)})" if where else ""
        return f"[{self.code}] {self.message}{suffix}"


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of one verification run: which checks ran, what broke."""

    subject: str
    checks: tuple[str, ...] = ()
    violations: tuple[Violation, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            return f"{self.subject}: ok ({len(self.checks)} checks)"
        lines = [
            f"{self.subject}: {len(self.violations)} violation(s) "
            f"in {len(self.checks)} checks"
        ]
        lines.extend("  " + v.format() for v in self.violations)
        return "\n".join(lines)

    def raise_if_violations(self) -> "VerificationReport":
        """Return self when clean; raise :class:`PlanVerificationError` else."""
        if not self.ok:
            raise PlanVerificationError(self)
        return self


class PlanVerificationError(ValueError):
    """A plan failed independent verification (carries the report)."""

    def __init__(self, report: VerificationReport) -> None:
        super().__init__(report.summary())
        self.report = report


@dataclass
class _Collector:
    """Accumulates the checks run and the violations found."""

    checks: list[str] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)

    def ran(self, name: str) -> None:
        if name not in self.checks:
            self.checks.append(name)

    def fail(
        self,
        code: str,
        message: str,
        *,
        core: str | None = None,
        tam: int | None = None,
    ) -> None:
        self.ran(code)
        self.violations.append(Violation(code, message, core=core, tam=tam))

    def report(self, subject: str) -> VerificationReport:
        return VerificationReport(
            subject, tuple(self.checks), tuple(self.violations)
        )


# ---------------------------------------------------------------------------
# Shared interval helpers (overlap / power / precedence / makespan).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Slot:
    """Normalized view of one scheduled interval, any plan shape."""

    name: str
    tam: int
    start: int
    end: int


def _check_tam_overlap(out: _Collector, slots: Sequence[_Slot]) -> None:
    """Same-TAM tests must not overlap (independent sweep, not trusted)."""
    out.ran("tam-overlap")
    by_tam: dict[int, list[_Slot]] = {}
    for slot in slots:
        by_tam.setdefault(slot.tam, []).append(slot)
    for tam, items in sorted(by_tam.items()):
        items.sort(key=lambda s: (s.start, s.end))
        for a, b in zip(items, items[1:]):
            if b.start < a.end:
                out.fail(
                    "tam-overlap",
                    f"{a.name} [{a.start}, {a.end}) overlaps "
                    f"{b.name} [{b.start}, {b.end})",
                    core=b.name,
                    tam=tam,
                )


def _peak_power(
    slots: Iterable[_Slot], power_of: Mapping[str, float]
) -> float:
    """Sweep-line peak of the flat per-core power profile."""
    spans = [
        (s.start, s.end, float(power_of.get(s.name, 0.0)))
        for s in slots
        if s.end > s.start
    ]
    peak = 0.0
    for t, _, _ in spans:
        level = sum(p for s, e, p in spans if s <= t < e)
        peak = max(peak, level)
    return peak


def _instant_peak_width(
    slots: Iterable[_Slot], widths: Mapping[int, int]
) -> int:
    """Sweep-line peak of the instantaneous occupied TAM width.

    Flexible-width (packed) plans time-share the ATE interface: the sum
    of TAM widths may legitimately exceed the channel budget as long as
    the widths *active at any one instant* fit.  The peak over all slot
    starts is the exact maximum (the active set only changes there).
    """
    spans = [
        (s.start, s.end, int(widths.get(s.tam, 0)))
        for s in slots
        if s.end > s.start
    ]
    peak = 0
    for t, _, _ in spans:
        level = sum(w for s, e, w in spans if s <= t < e)
        peak = max(peak, level)
    return peak


def _check_power(
    out: _Collector,
    slots: Sequence[_Slot],
    power_of: Mapping[str, float],
    power_budget: float | None,
    stated_peak: float | None,
) -> None:
    peak = _peak_power(slots, power_of)
    if power_budget is not None:
        out.ran("power-budget")
        if peak > power_budget + POWER_EPS:
            out.fail(
                "power-budget",
                f"recomputed peak power {peak:.6g} exceeds budget "
                f"{power_budget:.6g}",
            )
    if stated_peak is not None:
        out.ran("peak-power")
        if abs(peak - stated_peak) > POWER_EPS:
            out.fail(
                "peak-power",
                f"stated peak power {stated_peak:.6g} != recomputed "
                f"{peak:.6g}",
            )


def _check_precedence(
    out: _Collector,
    slots: Sequence[_Slot],
    precedence: Sequence[tuple[str, str]],
) -> None:
    """``before`` must fully finish before ``after`` starts.

    For preemptive schedules a core appears as several slots; the
    relevant times are its last end and its first start.
    """
    if not precedence:
        return
    out.ran("precedence")
    finish: dict[str, int] = {}
    start: dict[str, int] = {}
    for slot in slots:
        finish[slot.name] = max(finish.get(slot.name, slot.end), slot.end)
        start[slot.name] = min(start.get(slot.name, slot.start), slot.start)
    for before, after in precedence:
        if before not in finish or after not in start:
            out.fail(
                "precedence",
                f"constraint ({before!r}, {after!r}) names an unscheduled core",
                core=before if before not in finish else after,
            )
            continue
        if finish[before] > start[after]:
            out.fail(
                "precedence",
                f"{after} starts at {start[after]} before {before} "
                f"finishes at {finish[before]}",
                core=after,
            )


def _check_membership(
    out: _Collector, scheduled_names: Sequence[str], expected: Sequence[str]
) -> None:
    out.ran("core-membership")
    seen: set[str] = set()
    for name in scheduled_names:
        if name in seen:
            out.fail(
                "core-membership", "core scheduled more than once", core=name
            )
        seen.add(name)
    missing = sorted(set(expected) - seen)
    extra = sorted(seen - set(expected))
    if missing:
        out.fail("core-membership", f"cores never scheduled: {missing}")
    if extra:
        out.fail("core-membership", f"unknown cores scheduled: {extra}")


# ---------------------------------------------------------------------------
# Per-core model recomputation (the paper's time/volume models).
# ---------------------------------------------------------------------------


def _uncompressed_expectation(analysis: "CoreAnalysis", chains: int):
    """(time, volume) of a plain wrapper with ``chains`` wrapper chains."""
    from repro.wrapper.design import design_wrapper
    from repro.wrapper.timing import scan_test_time, uncompressed_tam_volume

    core = analysis.core
    design = design_wrapper(core, chains)
    time = scan_test_time(core.patterns, design.scan_in_max, design.scan_out_max)
    return time, uncompressed_tam_volume(core, design)


def _dictionary_expectations(
    analysis: "CoreAnalysis", chains: int, code_width: int
) -> list[tuple[int, int]]:
    """All (time, volume) pairs a dictionary decompressor could yield.

    Mirrors :class:`repro.explore.selection.TechniqueSelector` but rebuilt
    from the raw cube set, one candidate per configured index width.
    """
    from repro.compression.dictionary import (
        build_dictionary,
        compression_stats,
        delivery_cycles,
    )
    from repro.explore.selection import DEFAULT_INDEX_BITS
    from repro.wrapper.design import design_wrapper

    if analysis.mode != "exact" or analysis.cubes is None:
        return []
    core = analysis.core
    design = design_wrapper(core, chains)
    slices = analysis.cubes.slices(design).reshape(-1, chains)
    expectations: list[tuple[int, int]] = []
    for index_bits in DEFAULT_INDEX_BITS:
        if 2**index_bits > slices.shape[0]:
            continue
        dictionary = build_dictionary(slices, index_bits)
        stats = compression_stats(slices, dictionary)
        time = (
            delivery_cycles(stats, code_width)
            + core.patterns
            + min(design.scan_in_max, design.scan_out_max)
        )
        expectations.append((time, stats.compressed_bits))
    return expectations


def _check_core_models(
    out: _Collector,
    architecture: TestArchitecture,
    analyses: Mapping[str, "CoreAnalysis"],
) -> None:
    """Per-core test time and volume must match the technique's model."""
    out.ran("time-model")
    out.ran("volume-model")
    widths = {t.index: t.width for t in architecture.tams}
    recomputed_total = 0
    for item in architecture.scheduled:
        cfg = item.config
        analysis = analyses.get(cfg.core_name)
        if analysis is None:
            out.fail(
                "time-model",
                "no analysis available for scheduled core",
                core=cfg.core_name,
            )
            continue
        if cfg.technique == "none":
            # The planners account an uncompressed core at the full TAM
            # width (padded chains stream idle bits), while the stored
            # chain count is clamped to the core's useful maximum --
            # accept the model at either width.
            counts = {cfg.wrapper_chains}
            tam_width = widths.get(item.tam_index)
            if tam_width is not None and tam_width >= 1:
                counts.add(tam_width)
            expected = [
                _uncompressed_expectation(analysis, m) for m in sorted(counts)
            ]
        elif cfg.technique == "selective":
            point = analysis.compressed_point(cfg.wrapper_chains)
            if cfg.code_width != point.code_width:
                out.fail(
                    "code-width",
                    f"stored code width {cfg.code_width} != "
                    f"{point.code_width} implied by m={cfg.wrapper_chains}",
                    core=cfg.core_name,
                )
            expected = [(point.test_time, point.volume)]
        elif cfg.technique == "dictionary":
            expected = _dictionary_expectations(
                analysis, cfg.wrapper_chains, cfg.code_width or 0
            )
            if not expected:
                out.fail(
                    "time-model",
                    "dictionary technique but no dictionary is buildable "
                    "(estimate-mode analysis or degenerate cube set)",
                    core=cfg.core_name,
                )
                continue
        else:  # pragma: no cover - constructor rejects unknown techniques
            out.fail(
                "time-model",
                f"unknown technique {cfg.technique!r}",
                core=cfg.core_name,
            )
            continue
        if cfg.test_time not in {t for t, _ in expected}:
            want = sorted({t for t, _ in expected})
            out.fail(
                "time-model",
                f"stored test time {cfg.test_time} != model time "
                f"{want[0] if len(want) == 1 else want} "
                f"({cfg.technique}, m={cfg.wrapper_chains})",
                core=cfg.core_name,
            )
        matching = [v for t, v in expected if t == cfg.test_time]
        volumes = matching or [v for _, v in expected]
        if cfg.volume not in volumes:
            out.fail(
                "volume-model",
                f"stored volume {cfg.volume} != model volume "
                f"{volumes[0] if len(volumes) == 1 else sorted(set(volumes))} "
                f"({cfg.technique}, m={cfg.wrapper_chains})",
                core=cfg.core_name,
            )
        recomputed_total += cfg.volume
    out.ran("volume-conservation")
    if architecture.test_data_volume != sum(
        s.config.volume for s in architecture.scheduled
    ):  # pragma: no cover - property is derived; guards future caching
        out.fail(
            "volume-conservation",
            "architecture volume differs from the sum of its parts",
        )


def _check_width_fit(
    out: _Collector,
    architecture: TestArchitecture,
    analyses: "Mapping[str, CoreAnalysis] | None",
) -> None:
    """Wrapper/code widths must fit the TAM each core sits on."""
    out.ran("wrapper-fit")
    out.ran("placement-consistency")
    widths = {t.index: t.width for t in architecture.tams}
    placement = architecture.placement
    for item in architecture.scheduled:
        cfg = item.config
        width = widths.get(item.tam_index)
        if width is None:
            continue  # reported by the tam-index check
        if cfg.wrapper_chains < 1:
            out.fail(
                "wrapper-fit",
                f"wrapper chain count {cfg.wrapper_chains} < 1",
                core=cfg.core_name,
                tam=item.tam_index,
            )
            continue
        if placement is DecompressorPlacement.NONE and cfg.uses_compression:
            out.fail(
                "placement-consistency",
                "compressed core under placement 'none'",
                core=cfg.core_name,
                tam=item.tam_index,
            )
        if cfg.uses_compression and placement is not DecompressorPlacement.NONE:
            # The TAM carries code bits; the decompressor fans them out to
            # the wrapper chains.  Under per-TAM placement the stored TAM
            # width is the *expanded* bus, so the wrapper chains must fit.
            if placement is DecompressorPlacement.PER_TAM:
                if cfg.wrapper_chains > width:
                    out.fail(
                        "wrapper-fit",
                        f"{cfg.wrapper_chains} wrapper chains exceed the "
                        f"{width}-bit expanded TAM",
                        core=cfg.core_name,
                        tam=item.tam_index,
                    )
            elif cfg.code_width is not None and cfg.code_width > width:
                out.fail(
                    "wrapper-fit",
                    f"code width {cfg.code_width} exceeds TAM width {width}",
                    core=cfg.core_name,
                    tam=item.tam_index,
                )
        elif not cfg.uses_compression and cfg.wrapper_chains > width:
            out.fail(
                "wrapper-fit",
                f"{cfg.wrapper_chains} wrapper chains exceed TAM width "
                f"{width}",
                core=cfg.core_name,
                tam=item.tam_index,
            )
        if not cfg.uses_compression and analyses is not None:
            analysis = analyses.get(cfg.core_name)
            if (
                analysis is not None
                and cfg.wrapper_chains
                > analysis.core.max_useful_wrapper_chains
            ):
                out.fail(
                    "wrapper-fit",
                    f"{cfg.wrapper_chains} wrapper chains exceed the core's "
                    f"useful maximum "
                    f"{analysis.core.max_useful_wrapper_chains}",
                    core=cfg.core_name,
                    tam=item.tam_index,
                )


# ---------------------------------------------------------------------------
# Public entry points.
# ---------------------------------------------------------------------------


def _resolve_analyses(
    soc: Soc | None,
    config: "RunConfig | None",
    analyses: Mapping[str, "CoreAnalysis"] | None,
) -> Mapping[str, "CoreAnalysis"] | None:
    if analyses is not None or soc is None:
        return analyses
    from repro.explore.dse import analysis_for
    from repro.pipeline.config import RunConfig

    cfg = config or RunConfig()
    return {
        core.name: analysis_for(
            core, mode=cfg.mode, samples=cfg.samples, grid=cfg.grid
        )
        for core in soc
    }


def _verify_architecture_into(
    out: _Collector,
    architecture: TestArchitecture,
    *,
    soc: Soc | None,
    config: "RunConfig | None",
    analyses: Mapping[str, "CoreAnalysis"] | None,
    power_of: Mapping[str, float] | None,
    power_budget: float | None,
    stated_peak: float | None,
    precedence: Sequence[tuple[str, str]],
    packed: bool = False,
) -> None:
    out.ran("tam-index")
    indices = [t.index for t in architecture.tams]
    if len(set(indices)) != len(indices):
        out.fail("tam-index", f"duplicate TAM indices: {sorted(indices)}")
    known = set(indices)
    out.ran("slot-bounds")
    slots: list[_Slot] = []
    for item in architecture.scheduled:
        name = item.config.core_name
        if item.tam_index not in known:
            out.fail(
                "tam-index",
                f"scheduled on unknown TAM {item.tam_index}",
                core=name,
            )
        if item.start < 0:
            out.fail(
                "slot-bounds", f"negative start {item.start}", core=name
            )
        if item.end - item.start != item.config.test_time:
            out.fail(
                "slot-bounds",
                f"slot [{item.start}, {item.end}) has length "
                f"{item.end - item.start} != test time "
                f"{item.config.test_time}",
                core=name,
            )
        slots.append(_Slot(name, item.tam_index, item.start, item.end))
    _check_tam_overlap(out, slots)

    out.ran("width-budget")
    if packed:
        # Packed plans time-share the ATE wires: one single-core TAM per
        # rectangle, so the width *sum* may exceed the budget while the
        # instantaneous occupied width never may.
        widths = {t.index: t.width for t in architecture.tams}
        peak_width = _instant_peak_width(slots, widths)
        if peak_width > architecture.ate_channels:
            out.fail(
                "width-budget",
                f"instantaneous occupied width {peak_width} > "
                f"{architecture.ate_channels} ATE channels",
            )
    elif architecture.placement is not DecompressorPlacement.PER_TAM:
        # Per-TAM stores post-expansion widths, which legitimately exceed
        # the ATE channel budget; all other placements pay wire-for-wire.
        total = architecture.total_tam_width
        if total > architecture.ate_channels:
            out.fail(
                "width-budget",
                f"TAM widths sum to {total} > {architecture.ate_channels} "
                f"ATE channels",
            )

    resolved = _resolve_analyses(soc, config, analyses)
    if soc is not None:
        _check_membership(
            out, [s.config.core_name for s in architecture.scheduled],
            soc.core_names,
        )
    if resolved is not None:
        _check_width_fit(out, architecture, resolved)
        _check_core_models(out, architecture, resolved)
    else:
        _check_width_fit(out, architecture, None)

    if power_of is not None:
        _check_power(out, slots, power_of, power_budget, stated_peak)
    _check_precedence(out, slots, precedence)


def verify_architecture(
    architecture: TestArchitecture,
    *,
    soc: Soc | None = None,
    config: "RunConfig | None" = None,
    analyses: Mapping[str, "CoreAnalysis"] | None = None,
    power_of: Mapping[str, float] | None = None,
    power_budget: float | None = None,
    stated_peak: float | None = None,
    precedence: Sequence[tuple[str, str]] = (),
    packed: bool = False,
) -> VerificationReport:
    """Independently re-check a :class:`TestArchitecture`.

    Structural invariants (TAM indices, slot bounds, same-TAM overlap,
    width budget) always run.  Model invariants (per-core time/volume,
    wrapper fit against the core) additionally need ``soc`` (and use
    ``config``'s analysis knobs, or explicit ``analyses``).  Power checks
    need ``power_of``; precedence checks need ``precedence``.

    ``packed`` marks a flexible-width (rectangle-packed) plan: the
    width-budget check then bounds the *instantaneous* occupied width by
    a sweep instead of the width sum (see :func:`verify_packed` for the
    full 2D geometry check, which needs the original
    :class:`~repro.pack.packer.PackedPlan`).
    """
    out = _Collector()
    _verify_architecture_into(
        out,
        architecture,
        soc=soc,
        config=config,
        analyses=analyses,
        power_of=power_of,
        power_budget=power_budget,
        stated_peak=stated_peak,
        precedence=tuple(precedence),
        packed=packed,
    )
    return out.report(f"architecture:{architecture.soc_name}")


def verify_plan(
    result: "PlanResult",
    soc: Soc | None = None,
    *,
    config: "RunConfig | None" = None,
    analyses: Mapping[str, "CoreAnalysis"] | None = None,
    power_of: Mapping[str, float] | None = None,
    precedence: Sequence[tuple[str, str]] | None = None,
) -> VerificationReport:
    """Verify a :class:`PlanResult` from any delivery path.

    Beyond :func:`verify_architecture` this checks the result's own
    bookkeeping: the recorded width budget matches the architecture, and
    -- for constrained runs -- the recorded peak power matches a
    sweep-line recomputation and respects the recorded budget.  When the
    plan is power-constrained but no ``power_of`` map is given, the
    default :func:`repro.power.model.power_table` model is assumed (the
    same default the pipeline uses).

    A strategy starting with ``"packing"`` (see
    :data:`PACKED_STRATEGY_PREFIX`) switches the width-budget check to
    the packed (instantaneous-width) form, so re-imported packed plans
    verify without the original packer state.
    """
    out = _Collector()
    architecture = result.architecture

    out.ran("budget-consistency")
    if result.width_budget != architecture.ate_channels:
        out.fail(
            "budget-consistency",
            f"result records width budget {result.width_budget} but the "
            f"architecture has {architecture.ate_channels} ATE channels",
        )

    budget = result.power_budget
    if power_of is None and config is not None:
        power_of = config.power_of
    if budget is None and config is not None:
        budget = config.power_budget
    if power_of is None and budget is not None and soc is not None:
        from repro.power.model import power_table

        power_of = power_table(soc, compression=result.compression != "none")
    if precedence is None:
        precedence = config.precedence if config is not None else ()
    stated_peak = result.peak_power if power_of is not None else None

    _verify_architecture_into(
        out,
        architecture,
        soc=soc,
        config=config,
        analyses=analyses,
        power_of=power_of,
        power_budget=budget,
        stated_peak=stated_peak,
        precedence=tuple(precedence),
        packed=result.strategy.startswith(PACKED_STRATEGY_PREFIX),
    )
    return out.report(f"plan:{result.soc_name}")


def verify_packed(
    plan: "PackedPlan",
    core_names: Sequence[str],
    time_of: TimeFn,
) -> VerificationReport:
    """Re-check a :class:`~repro.pack.packer.PackedPlan`'s 2D geometry.

    Invariants, each re-derived from the raw rectangles:

    * ``rect-bounds`` -- every rectangle lies inside the
      ``width_budget``-wide strip and starts at time >= 0;
    * ``rect-overlap`` -- no two rectangles overlap in 2D (sweep over
      start times; at each instant the active rectangles, sorted by x,
      must be pairwise disjoint);
    * ``channel-budget`` -- the instantaneous occupied width never
      exceeds the budget at any instant;
    * ``width-support`` -- each core runs at a width its wrapper table
      actually supports: ``time_of(name, width)`` must equal the
      rectangle's height exactly;
    * ``core-membership`` -- every core packed exactly once;
    * ``makespan`` -- the stated makespan equals the last finish.
    """
    out = _Collector()
    out.ran("rect-bounds")
    out.ran("width-support")
    for rect in plan.rects:
        if rect.x < 0 or rect.x + rect.width > plan.width_budget:
            out.fail(
                "rect-bounds",
                f"rectangle x=[{rect.x}, {rect.x + rect.width}) falls "
                f"outside the {plan.width_budget}-wide strip",
                core=rect.name,
            )
        if rect.start < 0:
            out.fail(
                "rect-bounds",
                f"negative start {rect.start}",
                core=rect.name,
            )
        expected = time_of(rect.name, rect.width)
        if rect.end - rect.start != expected:
            out.fail(
                "width-support",
                f"rectangle height {rect.end - rect.start} != test time "
                f"{expected} at width {rect.width}",
                core=rect.name,
            )
    _check_membership(out, [rect.name for rect in plan.rects], core_names)

    out.ran("rect-overlap")
    out.ran("channel-budget")
    live = [rect for rect in plan.rects if rect.end > rect.start]
    for probe in live:
        t = probe.start
        active = sorted(
            (rect for rect in live if rect.start <= t < rect.end),
            key=lambda rect: (rect.x, rect.name),
        )
        for a, b in zip(active, active[1:]):
            if b.x < a.x + a.width:
                out.fail(
                    "rect-overlap",
                    f"{a.name} x=[{a.x}, {a.x + a.width}) overlaps "
                    f"{b.name} x=[{b.x}, {b.x + b.width}) at time {t}",
                    core=b.name,
                )
        occupied = sum(rect.width for rect in active)
        if occupied > plan.width_budget:
            out.fail(
                "channel-budget",
                f"instantaneous occupied width {occupied} > "
                f"{plan.width_budget} ATE channels at time {t}",
            )

    out.ran("makespan")
    actual = max((rect.end for rect in plan.rects), default=0)
    if plan.makespan != actual:
        out.fail(
            "makespan",
            f"stated makespan {plan.makespan} != last finish {actual}",
        )
    return out.report(f"packed:{plan.soc_name}")


def verify_constrained(
    schedule: ConstrainedSchedule,
    core_names: Sequence[str],
    time_of: TimeFn,
    *,
    power_of: Mapping[str, float] | None = None,
    power_budget: float | None = None,
    precedence: Sequence[tuple[str, str]] = (),
) -> VerificationReport:
    """Re-check a :class:`ConstrainedSchedule` against its inputs."""
    out = _Collector()
    out.ran("tam-index")
    out.ran("slot-bounds")
    slots: list[_Slot] = []
    for iv in schedule.intervals:
        if not 0 <= iv.tam < len(schedule.widths):
            out.fail(
                "tam-index", f"unknown TAM {iv.tam}", core=iv.name
            )
            continue
        if iv.start < 0:
            out.fail("slot-bounds", f"negative start {iv.start}", core=iv.name)
        expected = time_of(iv.name, schedule.widths[iv.tam])
        if iv.end - iv.start != expected:
            out.fail(
                "slot-bounds",
                f"interval [{iv.start}, {iv.end}) has length "
                f"{iv.end - iv.start} != test time {expected} on a "
                f"{schedule.widths[iv.tam]}-bit TAM",
                core=iv.name,
                tam=iv.tam,
            )
        slots.append(_Slot(iv.name, iv.tam, iv.start, iv.end))
    _check_membership(out, [iv.name for iv in schedule.intervals], core_names)
    _check_tam_overlap(out, slots)
    out.ran("makespan")
    actual = max((iv.end for iv in schedule.intervals), default=0)
    if schedule.makespan != actual:
        out.fail(
            "makespan",
            f"stated makespan {schedule.makespan} != last finish {actual}",
        )
    _check_power(
        out,
        slots,
        power_of or {},
        power_budget,
        schedule.peak_power if power_of is not None else None,
    )
    _check_precedence(out, slots, precedence)
    return out.report("constrained-schedule")


def verify_preemptive(
    schedule: PreemptiveSchedule,
    core_names: Sequence[str],
    time_of: TimeFn,
    *,
    power_of: Mapping[str, float] | None = None,
    power_budget: float | None = None,
    precedence: Sequence[tuple[str, str]] = (),
    max_segments: int | None = None,
) -> VerificationReport:
    """Re-check a :class:`PreemptiveSchedule` against its inputs."""
    out = _Collector()
    out.ran("tam-index")
    out.ran("segment-order")
    out.ran("segment-sum")
    if max_segments is not None:
        out.ran("segment-count")
    slots: list[_Slot] = []
    by_core: dict[str, list] = {}
    for seg in schedule.segments:
        if not 0 <= seg.tam < len(schedule.widths):
            out.fail("tam-index", f"unknown TAM {seg.tam}", core=seg.name)
            continue
        by_core.setdefault(seg.name, []).append(seg)
        slots.append(_Slot(seg.name, seg.tam, seg.start, seg.end))
    _check_membership(out, sorted(by_core), core_names)
    for name, segments in sorted(by_core.items()):
        tams = {seg.tam for seg in segments}
        if len(tams) > 1:
            out.fail(
                "segment-order",
                f"segments span several TAMs: {sorted(tams)}",
                core=name,
            )
            continue
        tam = segments[0].tam
        segments.sort(key=lambda seg: seg.start)
        for position, seg in enumerate(segments):
            if seg.index != position:
                out.fail(
                    "segment-order",
                    f"segment at start {seg.start} has index {seg.index}, "
                    f"expected {position}",
                    core=name,
                )
            if seg.end - seg.start < 1:
                out.fail(
                    "segment-order",
                    f"empty segment [{seg.start}, {seg.end})",
                    core=name,
                )
        for a, b in zip(segments, segments[1:]):
            if b.start < a.end:
                out.fail(
                    "segment-order",
                    f"segments [{a.start}, {a.end}) and "
                    f"[{b.start}, {b.end}) overlap",
                    core=name,
                )
        total = sum(seg.end - seg.start for seg in segments)
        expected = time_of(name, schedule.widths[tam])
        if total != expected:
            out.fail(
                "segment-sum",
                f"segment durations sum to {total} != test time {expected} "
                f"on a {schedule.widths[tam]}-bit TAM",
                core=name,
                tam=tam,
            )
        if max_segments is not None and len(segments) > max_segments:
            out.fail(
                "segment-count",
                f"{len(segments)} segments exceed max_segments="
                f"{max_segments}",
                core=name,
            )
    _check_tam_overlap(out, slots)
    out.ran("makespan")
    actual = max((seg.end for seg in schedule.segments), default=0)
    if schedule.makespan != actual:
        out.fail(
            "makespan",
            f"stated makespan {schedule.makespan} != last finish {actual}",
        )
    _check_power(
        out,
        slots,
        power_of or {},
        power_budget,
        schedule.peak_power if power_of is not None else None,
    )
    _check_precedence(out, slots, precedence)
    return out.report("preemptive-schedule")
