"""Decompressor hardware cost model.

The paper reports the selective-encoding decompressor as cheap: the
control FSM synthesizes to 5 flip-flops and 23 combinational gates, the
``w``-to-``m`` mapper scales with the interface widths, and a full
instance costs well under 1% of a million-gate core.  This module
provides an order-of-magnitude model calibrated to those statements,
used by the hardware-overhead ablation (A3):

* controller: 5 FFs + 23 gates (fixed);
* slice register: one FF per output bit, plus a written-bit mask FF per
  output bit (fill-at-END semantics), plus the ``w``-bit input register;
* mapper logic: a payload decoder (~4 gates per output bit) and the
  group-write multiplexing (~2 gates per output bit).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.selective import code_parameters

CONTROLLER_FLIP_FLOPS = 5
CONTROLLER_GATES = 23
FLIP_FLOPS_PER_OUTPUT_BIT = 2  # slice register + written mask
GATES_PER_OUTPUT_BIT = 6  # index decode + write mux


@dataclass(frozen=True)
class DecompressorCost:
    """Gate/flip-flop cost of one decompressor instance."""

    code_width: int
    output_width: int
    flip_flops: int
    gates: int

    def area_fraction(self, core_gates: int) -> float:
        """Overhead relative to a core's gate count (FFs counted as gates)."""
        if core_gates <= 0:
            raise ValueError("core gate count must be > 0")
        return (self.gates + self.flip_flops) / core_gates


def decompressor_cost(m: int, w: int | None = None) -> DecompressorCost:
    """Cost of a decompressor with ``m`` outputs (code width from ``m``).

    ``w`` may be passed explicitly (it must match ``m``'s code width or
    exceed it, for padded inputs); by default it is derived from ``m``.
    """
    _, natural_w = code_parameters(m)
    if w is None:
        w = natural_w
    elif w < natural_w:
        raise ValueError(
            f"code width {w} too narrow for {m} outputs (needs >= {natural_w})"
        )
    flip_flops = CONTROLLER_FLIP_FLOPS + FLIP_FLOPS_PER_OUTPUT_BIT * m + w
    gates = CONTROLLER_GATES + GATES_PER_OUTPUT_BIT * m
    return DecompressorCost(
        code_width=w, output_width=m, flip_flops=flip_flops, gates=gates
    )


def architecture_hardware_cost(architecture) -> DecompressorCost:
    """Aggregate decompressor cost over a planned architecture.

    Sums the per-core (or per-TAM) instances implied by the
    architecture's placement; an uncompressed architecture costs zero.
    """
    total_ff = 0
    total_gates = 0
    widest_w = 0
    widest_m = 0
    seen_tams: set[int] = set()
    for item in architecture.scheduled:
        config = item.config
        if not config.uses_compression or config.code_width is None:
            continue
        if architecture.placement.value == "per-tam":
            if item.tam_index in seen_tams:
                continue
            seen_tams.add(item.tam_index)
        cost = decompressor_cost(config.wrapper_chains, config.code_width)
        total_ff += cost.flip_flops
        total_gates += cost.gates
        widest_w = max(widest_w, cost.code_width)
        widest_m = max(widest_m, cost.output_width)
    return DecompressorCost(
        code_width=widest_w,
        output_width=widest_m,
        flip_flops=total_ff,
        gates=total_gates,
    )
