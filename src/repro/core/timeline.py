"""Constrained test scheduling: power budgets and precedence (extension).

The paper's scheduler packs cores back-to-back per TAM.  Real test
plans carry two further constraint families the SOC test-scheduling
literature (including the authors' follow-up work) treats as standard:

* a **power budget** -- the summed flat power of concurrently running
  core tests must stay below ``power_budget`` at all times (Chou et
  al.'s model); and
* **precedence** -- core B's test may only start after core A's test
  completed (e.g. a memory built off a repaired block, or diagnostic
  ordering).

:func:`schedule_constrained` extends the longest-first list heuristic
with both: a core's start on a TAM may be *delayed* past the bus-free
time (inserting TAM idle time) until its predecessors are done and the
power profile admits it.  With no constraints given it reduces exactly
to the paper's scheduler (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.core.architecture import (
    CoreConfig,
    DecompressorPlacement,
    ScheduledCore,
    Tam,
    TestArchitecture,
)
from repro.core.scheduler import ConfigFn, TimeFn


@dataclass(frozen=True)
class PlacedInterval:
    """One placed core test on the global timeline."""

    name: str
    tam: int
    start: int
    end: int
    power: float


@dataclass(frozen=True)
class ConstrainedSchedule:
    """Outcome of constrained scheduling for one TAM partition."""

    widths: tuple[int, ...]
    intervals: tuple[PlacedInterval, ...]
    makespan: int
    peak_power: float

    def interval_for(self, name: str) -> PlacedInterval:
        for interval in self.intervals:
            if interval.name == name:
                return interval
        raise KeyError(name)

    @property
    def tam_idle_cycles(self) -> int:
        """Total bus idle time inserted to satisfy the constraints."""
        idle = 0
        by_tam: dict[int, list[PlacedInterval]] = {}
        for interval in self.intervals:
            by_tam.setdefault(interval.tam, []).append(interval)
        for items in by_tam.values():
            items.sort(key=lambda iv: iv.start)
            clock = 0
            for iv in items:
                idle += iv.start - clock
                clock = iv.end
        return idle


class PrecedenceError(ValueError):
    """Raised for cyclic or dangling precedence constraints."""


def _check_precedence(
    names: Sequence[str], precedence: Sequence[tuple[str, str]]
) -> dict[str, set[str]]:
    known = set(names)
    preds: dict[str, set[str]] = {name: set() for name in names}
    for before, after in precedence:
        if before not in known or after not in known:
            raise PrecedenceError(
                f"precedence ({before!r} -> {after!r}) names unknown cores"
            )
        if before == after:
            raise PrecedenceError(f"core {before!r} cannot precede itself")
        preds[after].add(before)
    # Cycle check via Kahn's algorithm.
    remaining = {name: set(p) for name, p in preds.items()}
    done: list[str] = []
    ready = [n for n, p in remaining.items() if not p]
    while ready:
        node = ready.pop()
        done.append(node)
        for other, p in remaining.items():
            if node in p:
                p.discard(node)
                if not p:
                    ready.append(other)
    if len(done) != len(names):
        cyclic = sorted(set(names) - set(done))
        raise PrecedenceError(f"cyclic precedence among {cyclic}")
    return preds


def _power_ok(
    placed: Sequence[PlacedInterval],
    start: int,
    end: int,
    power: float,
    budget: float,
) -> bool:
    """Would adding (start, end, power) keep the profile within budget?"""
    if power > budget:
        return False
    events: list[tuple[int, float]] = []
    for iv in placed:
        lo = max(start, iv.start)
        hi = min(end, iv.end)
        if lo < hi:
            events.append((lo, iv.power))
            events.append((hi, -iv.power))
    events.sort()
    level = power
    for _, delta in events:
        level += delta
        if level > budget + 1e-9:
            return False
    return True


def _earliest_power_feasible(
    placed: Sequence[PlacedInterval],
    ready: int,
    duration: int,
    power: float,
    budget: float,
) -> int | None:
    """Earliest start >= ready where the window fits the power budget."""
    if power > budget:
        return None
    candidates = sorted(
        {ready} | {iv.end for iv in placed if iv.end > ready}
    )
    for start in candidates:
        if _power_ok(placed, start, start + duration, power, budget):
            return start
    return None  # unreachable: past every placed end the profile is empty


def schedule_constrained(
    core_names: Sequence[str],
    widths: Sequence[int],
    time_of: TimeFn,
    *,
    power_of: Mapping[str, float] | Callable[[str], float] | None = None,
    power_budget: float | None = None,
    precedence: Sequence[tuple[str, str]] = (),
) -> ConstrainedSchedule:
    """Longest-first list scheduling with power and precedence constraints.

    Raises :class:`PrecedenceError` for malformed precedence and
    ``ValueError`` when a single core's power already exceeds the budget
    (no schedule exists under the flat model).
    """
    if not widths:
        raise ValueError("at least one TAM is required")
    if any(w < 1 for w in widths):
        raise ValueError(f"TAM widths must be >= 1, got {tuple(widths)}")
    preds = _check_precedence(core_names, precedence)

    def power(name: str) -> float:
        if power_of is None:
            return 0.0
        if callable(power_of):
            return float(power_of(name))
        return float(power_of[name])

    if power_budget is not None:
        for name in core_names:
            if power(name) > power_budget:
                raise ValueError(
                    f"core {name!r} alone exceeds the power budget "
                    f"({power(name):.2f} > {power_budget:.2f})"
                )

    widest = max(widths)
    placed: list[PlacedInterval] = []
    finished: dict[str, int] = {}
    tam_free = [0] * len(widths)
    pending = set(core_names)

    while pending:
        ready_names = [
            name for name in pending if preds[name] <= set(finished)
        ]
        # Longest-first among ready cores (deterministic tie-break).
        ready_names.sort(key=lambda n: (-time_of(n, widest), n))
        name = ready_names[0]
        ready_at = max(
            (finished[p] for p in preds[name]), default=0
        )
        best: tuple[int, int, int] | None = None  # (end, tam, start)
        for tam, width in enumerate(widths):
            duration = time_of(name, width)
            earliest = max(tam_free[tam], ready_at)
            if power_budget is not None:
                start = _earliest_power_feasible(
                    placed, earliest, duration, power(name), power_budget
                )
                if start is None:
                    continue
            else:
                start = earliest
            # Earliest finish, ties broken by TAM index -- the same
            # effective order the paper scheduler uses, so the
            # no-constraints case reduces to it exactly (breaking ties
            # by start instead diverged on equal-finish candidates and
            # could end with a worse makespan; found by fuzzing).
            key = (start + duration, tam, start)
            if best is None or key < best:
                best = key
        if best is None:
            raise ValueError(f"no feasible placement for core {name!r}")
        end, tam, start = best
        placed.append(
            PlacedInterval(
                name=name, tam=tam, start=start, end=end, power=power(name)
            )
        )
        finished[name] = end
        tam_free[tam] = end
        pending.discard(name)

    makespan = max((iv.end for iv in placed), default=0)
    peak = _peak_power(placed)
    return ConstrainedSchedule(
        widths=tuple(widths),
        intervals=tuple(placed),
        makespan=makespan,
        peak_power=peak,
    )


def _peak_power(placed: Sequence[PlacedInterval]) -> float:
    events: list[tuple[int, float]] = []
    for iv in placed:
        events.append((iv.start, iv.power))
        events.append((iv.end, -iv.power))
    events.sort()
    level = 0.0
    peak = 0.0
    for _, delta in events:
        level += delta
        peak = max(peak, level)
    return peak


def constrained_architecture(
    soc_name: str,
    schedule: ConstrainedSchedule,
    config_of: ConfigFn,
    *,
    placement: DecompressorPlacement,
    ate_channels: int,
) -> TestArchitecture:
    """Materialize a constrained schedule as a :class:`TestArchitecture`."""
    tams = tuple(Tam(index=i, width=w) for i, w in enumerate(schedule.widths))
    scheduled = []
    for iv in schedule.intervals:
        config = config_of(iv.name, schedule.widths[iv.tam])
        scheduled.append(
            ScheduledCore(
                config=config, tam_index=iv.tam, start=iv.start, end=iv.end
            )
        )
    return TestArchitecture(
        soc_name=soc_name,
        placement=placement,
        tams=tams,
        scheduled=tuple(scheduled),
        ate_channels=ate_channels,
    )
