"""Simulated-annealing architecture search (extension).

A third search strategy beside the exhaustive enumeration and the
greedy local search: simulated annealing over the joint
(partition, assignment) space.  SA is the classic metaheuristic for
TAM optimization in the literature; here it serves as an independent
check on the list heuristic (the optimizer-quality ablation) and as a
fallback for search spaces too large to enumerate but too rugged for
the greedy walker.

The state is a TAM width vector plus an explicit core-to-TAM
assignment; moves are: reassign a core, shift a wire between TAMs,
split a TAM, merge two TAMs.  Cooling is geometric and the whole run
is deterministic in ``seed``.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.partition import PartitionSearchResult
from repro.core.scheduler import ScheduleOutcome, TimeFn


def _makespan(
    core_names: Sequence[str],
    widths: list[int],
    assignment: list[int],
    time_of: TimeFn,
) -> int:
    loads = [0] * len(widths)
    for index, tam in enumerate(assignment):
        loads[tam] += time_of(core_names[index], widths[tam])
    return max(loads) if loads else 0


def anneal_search(
    core_names: Sequence[str],
    total_width: int,
    time_of: TimeFn,
    *,
    max_parts: int | None = None,
    min_width: int = 1,
    iterations: int = 4000,
    initial_temperature: float | None = None,
    cooling: float = 0.999,
    seed: int = 0,
) -> PartitionSearchResult:
    """Simulated annealing over partitions and assignments."""
    if not core_names:
        raise ValueError("cannot design an architecture for zero cores")
    if total_width < min_width:
        raise ValueError(
            f"width {total_width} cannot host a TAM of min width {min_width}"
        )
    if max_parts is None:
        max_parts = min(len(core_names), 6)
    max_parts = max(1, min(max_parts, total_width // min_width))
    if not 0.0 < cooling < 1.0:
        raise ValueError(f"cooling must be in (0, 1), got {cooling}")

    rng = np.random.default_rng(seed)
    names = list(core_names)
    n = len(names)

    # Start from the single full-width TAM, everything serial.
    widths: list[int] = [total_width]
    assignment: list[int] = [0] * n
    current = _makespan(names, widths, assignment, time_of)
    best = current
    best_state = (list(widths), list(assignment))
    if initial_temperature is None:
        initial_temperature = max(1.0, 0.2 * current)
    temperature = float(initial_temperature)
    evaluated = 1

    for _ in range(iterations):
        move = int(rng.integers(0, 4))
        new_widths = list(widths)
        new_assignment = list(assignment)
        if move == 0 and len(new_widths) > 1:
            # Reassign one core.
            index = int(rng.integers(0, n))
            new_assignment[index] = int(rng.integers(0, len(new_widths)))
        elif move == 1 and len(new_widths) > 1:
            # Shift a wire between two TAMs.
            donor = int(rng.integers(0, len(new_widths)))
            taker = int(rng.integers(0, len(new_widths)))
            if donor == taker or new_widths[donor] <= min_width:
                continue
            new_widths[donor] -= 1
            new_widths[taker] += 1
        elif move == 2 and len(new_widths) < max_parts:
            # Split a TAM; its cores land randomly on the two halves.
            victim = int(rng.integers(0, len(new_widths)))
            if new_widths[victim] < 2 * min_width:
                continue
            half = int(rng.integers(min_width, new_widths[victim] - min_width + 1))
            new_widths[victim] -= half
            new_widths.append(half)
            fresh = len(new_widths) - 1
            for index in range(n):
                if new_assignment[index] == victim and rng.random() < 0.5:
                    new_assignment[index] = fresh
        elif move == 3 and len(new_widths) > 1:
            # Merge two TAMs.
            a = int(rng.integers(0, len(new_widths)))
            b = int(rng.integers(0, len(new_widths)))
            if a == b:
                continue
            a, b = min(a, b), max(a, b)
            new_widths[a] += new_widths[b]
            del new_widths[b]
            for index in range(n):
                if new_assignment[index] == b:
                    new_assignment[index] = a
                elif new_assignment[index] > b:
                    new_assignment[index] -= 1
        else:
            continue

        candidate = _makespan(names, new_widths, new_assignment, time_of)
        evaluated += 1
        delta = candidate - current
        if delta <= 0 or rng.random() < math.exp(-delta / max(1e-9, temperature)):
            widths, assignment, current = new_widths, new_assignment, candidate
            if current < best:
                best = current
                best_state = (list(widths), list(assignment))
        temperature *= cooling

    best_widths, best_assignment = best_state
    # Canonicalize: widths sorted descending, assignment remapped.
    order = sorted(
        range(len(best_widths)), key=lambda t: -best_widths[t]
    )
    remap = {old: new for new, old in enumerate(order)}
    outcome = ScheduleOutcome(
        widths=tuple(best_widths[t] for t in order),
        makespan=best,
        assignment=tuple(remap[t] for t in best_assignment),
    )
    return PartitionSearchResult(
        outcome=outcome, partitions_evaluated=evaluated, strategy="anneal"
    )
