"""Simulated-annealing architecture search (compatibility shim).

The annealer now lives in :mod:`repro.search.backends.anneal` as a
registered backend of the search layer; this module keeps the
historical ``anneal_search`` signature for existing callers and tests.

One intentional behavior change vs. the original implementation rides
along (its own satellite fix, pinned by the differential suite):
cooling is applied exactly once per iteration.  The old loop skipped
``temperature *= cooling`` whenever a drawn move was invalid, so the
effective cooling schedule silently depended on the move-validity
rate.  Also, an explicit ``max_parts < 1`` now raises (the shared
:func:`repro.search.resolve_search_space` validation) instead of being
silently clamped to 1.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.scheduler import TimeFn
from repro.search.state import PartitionSearchResult

__all__ = ["anneal_search"]


def anneal_search(
    core_names: Sequence[str],
    total_width: int,
    time_of: TimeFn,
    *,
    max_parts: int | None = None,
    min_width: int = 1,
    iterations: int = 4000,
    initial_temperature: float | None = None,
    cooling: float = 0.999,
    seed: int = 0,
) -> PartitionSearchResult:
    """Simulated annealing over partitions and assignments."""
    from repro.search import run_search

    options: dict[str, object] = {
        "iterations": iterations,
        "cooling": cooling,
        "seed": seed,
    }
    if initial_temperature is not None:
        options["initial_temperature"] = initial_temperature
    return run_search(
        core_names,
        total_width,
        time_of,
        strategy="anneal",
        max_parts=max_parts,
        min_width=min_width,
        options=options,
    )
