"""SOC-level co-optimization: TAM design + scheduling + compression.

This package is the paper's primary contribution: given an SOC and a
top-level TAM width (or ATE channel budget), jointly choose

* the partition of the top-level width into fixed-width TAMs,
* the assignment of cores to TAMs (the test schedule),
* per core, the wrapper-chain count and the decompressor I/O widths,

so that the SOC test time is minimized.

Entry points:

* :func:`repro.core.optimizer.optimize_soc` -- the four-step heuristic
  with or without TDC (per-core decompressors);
* :func:`repro.core.optimizer.optimize_per_tam` -- the decompressor-per-
  TAM alternative of Figure 4(b);
* :func:`repro.core.soclevel.optimize_soc_level_decompressor` -- the
  SOC-level ("virtual TAM") decompressor architecture used as the
  stand-in for the paper's comparator [18].
"""

from repro.core.architecture import (
    CoreConfig,
    ScheduledCore,
    Tam,
    TestArchitecture,
    DecompressorPlacement,
)
from repro.core.scheduler import schedule_cores
from repro.core.partition import iter_partitions, count_partitions
from repro.core.optimizer import (
    ConstrainedResult,
    OptimizeResult,
    optimize_per_tam,
    optimize_soc,
    optimize_soc_constrained,
)
from repro.core.soclevel import optimize_soc_level_decompressor
from repro.core.hardware import decompressor_cost, DecompressorCost
from repro.core.timeline import (
    ConstrainedSchedule,
    PrecedenceError,
    schedule_constrained,
)
from repro.core.optimal import OptimalOutcome, optimal_schedule
from repro.core.abort_on_fail import (
    expected_improvement,
    expected_session_time,
    reorder_within_tams,
)
from repro.core.preemption import PreemptiveSchedule, Segment, schedule_preemptive
from repro.core.multifrequency import (
    FrequencyTam,
    MultiFrequencyPlan,
    optimize_multifrequency,
)
from repro.core.robust import (
    RobustPlan,
    RobustPlanResult,
    UncertaintyReport,
    evaluate_under_uncertainty,
    robust_plan,
    robust_search,
)
from repro.core.anneal import anneal_search
from repro.core.bus import BusPlan, optimize_bus

__all__ = [
    "CoreConfig",
    "ScheduledCore",
    "Tam",
    "TestArchitecture",
    "DecompressorPlacement",
    "schedule_cores",
    "iter_partitions",
    "count_partitions",
    "OptimizeResult",
    "ConstrainedResult",
    "optimize_soc",
    "optimize_soc_constrained",
    "optimize_per_tam",
    "optimize_soc_level_decompressor",
    "decompressor_cost",
    "DecompressorCost",
    "ConstrainedSchedule",
    "PrecedenceError",
    "schedule_constrained",
    "OptimalOutcome",
    "optimal_schedule",
    "expected_session_time",
    "expected_improvement",
    "reorder_within_tams",
    "PreemptiveSchedule",
    "Segment",
    "schedule_preemptive",
    "FrequencyTam",
    "MultiFrequencyPlan",
    "optimize_multifrequency",
    "RobustPlan",
    "RobustPlanResult",
    "UncertaintyReport",
    "evaluate_under_uncertainty",
    "robust_plan",
    "robust_search",
    "anneal_search",
    "BusPlan",
    "optimize_bus",
]
