"""Abort-on-first-fail analysis and ordering (extension).

Production testers usually abort an SOC test session at the first
failing core test: later tests cannot rescue a bad die, so their time
is wasted.  Given per-core failure probabilities, the *expected* test
time of a schedule therefore depends on the order in which tests
finish -- putting likely-to-fail, short tests early saves time on bad
dies.  This is the defect-probability-driven scheduling problem studied
by the same group (E. Larsson et al.) as a follow-up to the makespan
formulation.

Model: failures are independent; a core's failure is detected exactly
when its test ends; on detection the whole session stops.

* :func:`expected_session_time` computes the exact expectation for any
  schedule (parallel TAMs included).
* :func:`reorder_within_tams` applies the classic ratio rule -- sort
  each TAM's queue by descending ``p_fail / test_time`` -- which is
  provably optimal for a single serial TAM (exchange argument,
  property-tested) and a strong heuristic across TAMs.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping

from repro.core.architecture import ScheduledCore, TestArchitecture


def expected_session_time(
    architecture: TestArchitecture, fail_prob: Mapping[str, float]
) -> float:
    """Expected wall-clock cycles under abort-on-first-fail.

    The session ends at the earliest *end time* of a failing test, or
    at the makespan when every core passes.
    """
    slots = sorted(architecture.scheduled, key=lambda s: s.end)
    for slot in slots:
        p = fail_prob.get(slot.config.core_name, 0.0)
        if not 0.0 <= p <= 1.0:
            raise ValueError(
                f"failure probability of {slot.config.core_name} must be "
                f"in [0, 1], got {p}"
            )
    expected = 0.0
    survive = 1.0
    for slot in slots:
        p = fail_prob.get(slot.config.core_name, 0.0)
        expected += survive * p * slot.end
        survive *= 1.0 - p
    expected += survive * architecture.test_time
    return expected


def reorder_within_tams(
    architecture: TestArchitecture, fail_prob: Mapping[str, float]
) -> TestArchitecture:
    """Reorder each TAM's serial queue by descending ``p / time`` ratio.

    Keeps every core on its TAM (so the makespan is unchanged) while
    moving probable failures forward; returns a new architecture.
    """
    by_tam: dict[int, list[ScheduledCore]] = {}
    for slot in architecture.scheduled:
        by_tam.setdefault(slot.tam_index, []).append(slot)

    reordered: list[ScheduledCore] = []
    for tam_index, slots in by_tam.items():
        slots.sort(key=lambda s: s.start)
        base = min(s.start for s in slots)
        gaps_total = sum(
            b.start - a.end for a, b in zip(slots, slots[1:])
        )
        if gaps_total:
            # Idle gaps come from external constraints (power,
            # precedence); reordering across them would violate those
            # constraints, so leave such TAMs untouched.
            reordered.extend(slots)
            continue

        def ratio(slot: ScheduledCore) -> float:
            p = fail_prob.get(slot.config.core_name, 0.0)
            return p / max(1, slot.config.test_time)

        ordered = sorted(slots, key=lambda s: (-ratio(s), s.config.core_name))
        clock = base
        for slot in ordered:
            duration = slot.config.test_time
            reordered.append(
                replace(slot, start=clock, end=clock + duration)
            )
            clock += duration

    return replace(architecture, scheduled=tuple(reordered))


def expected_improvement(
    architecture: TestArchitecture, fail_prob: Mapping[str, float]
) -> tuple[float, float, TestArchitecture]:
    """Expected time before/after ratio-rule reordering.

    Returns ``(before, after, reordered_architecture)``.
    """
    before = expected_session_time(architecture, fail_prob)
    better = reorder_within_tams(architecture, fail_prob)
    after = expected_session_time(better, fail_prob)
    return before, after, better
