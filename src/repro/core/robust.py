"""Robust test planning under test-time uncertainty (extension).

Planned core test times are estimates: pattern counts grow with late
ECOs, compression ratios move with final ATPG, and the paper's own
sampled estimator carries a few percent of noise.  Following the
uncertainty-aware line of follow-up work (e.g. Deutsch & Chakrabarty's
robust TAM optimization), this module

* evaluates a *fixed* architecture under sampled multiplicative
  perturbations of the per-core times (:func:`evaluate_under_uncertainty`),
  reporting the makespan distribution and the worst case; and
* searches for a *robust* plan (:func:`robust_search`) by optimizing
  against inflated times -- the standard box-uncertainty surrogate --
  and reports both its nominal and worst-case makespan, so the nominal
  optimum and the robust plan can be compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.partition import PartitionSearchResult, search_partitions
from repro.core.scheduler import ScheduleOutcome, TimeFn


@dataclass(frozen=True)
class UncertaintyReport:
    """Makespan statistics of a fixed assignment under perturbed times."""

    nominal: int
    mean: float
    worst: int
    best: int
    trials: int

    @property
    def regret(self) -> float:
        """Worst-case slowdown relative to the nominal plan."""
        return self.worst / self.nominal if self.nominal else 1.0


def _makespan_with_times(
    core_names: Sequence[str],
    outcome: ScheduleOutcome,
    times: dict[str, int],
) -> int:
    loads = [0] * len(outcome.widths)
    for index, tam in enumerate(outcome.assignment):
        loads[tam] += times[core_names[index]]
    return max(loads)


def evaluate_under_uncertainty(
    core_names: Sequence[str],
    outcome: ScheduleOutcome,
    time_of: TimeFn,
    *,
    epsilon: float = 0.1,
    trials: int = 200,
    seed: int = 0,
) -> UncertaintyReport:
    """Sample per-core time perturbations in ``[1-eps, 1+eps]``.

    The assignment stays fixed (the architecture is committed to
    silicon); only the realized times move.
    """
    if not 0.0 <= epsilon < 1.0:
        raise ValueError(f"epsilon must be in [0, 1), got {epsilon}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    rng = np.random.default_rng(seed)
    nominal_times = {
        name: time_of(name, outcome.widths[tam])
        for name, tam in zip(core_names, outcome.assignment)
    }
    nominal = _makespan_with_times(core_names, outcome, nominal_times)
    spans = []
    for _ in range(trials):
        factors = rng.uniform(1 - epsilon, 1 + epsilon, size=len(core_names))
        perturbed = {
            name: max(1, int(round(nominal_times[name] * factor)))
            for name, factor in zip(core_names, factors)
        }
        spans.append(_makespan_with_times(core_names, outcome, perturbed))
    # The analytic worst case of a fixed assignment under box
    # uncertainty: every core at its maximum time.
    worst_times = {
        name: max(1, int(round(t * (1 + epsilon))))
        for name, t in nominal_times.items()
    }
    worst = _makespan_with_times(core_names, outcome, worst_times)
    return UncertaintyReport(
        nominal=nominal,
        mean=float(np.mean(spans)),
        worst=worst,
        best=int(min(spans)),
        trials=trials,
    )


@dataclass(frozen=True)
class RobustPlan:
    """A robust architecture and its nominal/worst-case makespans."""

    search: PartitionSearchResult
    nominal_makespan: int
    worst_case_makespan: int

    @property
    def widths(self) -> tuple[int, ...]:
        return self.search.widths


@dataclass(frozen=True)
class RobustPlanResult:
    """A full pipeline plan optimized for the worst case."""

    result: "Any"
    nominal_makespan: int
    worst_case_makespan: int
    epsilon: float

    @property
    def regret(self) -> float:
        """Worst-case slowdown relative to the nominal makespan."""
        if not self.nominal_makespan:
            return 1.0
        return self.worst_case_makespan / self.nominal_makespan


def robust_plan(
    soc: "Any",
    tam_width: int,
    config: "Any | None" = None,
    *,
    epsilon: float = 0.1,
    events: "Any | None" = None,
) -> RobustPlanResult:
    """Plan ``soc`` against inflated times, via the staged pipeline.

    Runs the standard wrapper/decompressor stages, swaps the
    architecture stage for
    :class:`~repro.pipeline.stages.RobustArchitectureStage` (the
    registry's "robust" entry), and schedules as usual.  Returns the
    :class:`~repro.pipeline.result.PlanResult` together with the
    nominal and worst-case makespans of the chosen assignment.
    """
    from repro.pipeline.config import RunConfig
    from repro.pipeline.events import RunEvent
    from repro.pipeline.pipeline import Pipeline
    from repro.pipeline.stages import (
        DecompressorStage,
        RobustArchitectureStage,
        ScheduleStage,
        WrapperStage,
    )

    if config is None:
        config = RunConfig()
    captured: dict[str, Any] = {}

    def capture(event: RunEvent) -> None:
        if event.kind == "search-done":
            captured.update(event.payload)

    sinks = [capture]
    if events is not None:
        sinks.extend(events if isinstance(events, (list, tuple)) else [events])
    pipeline = Pipeline(
        [
            WrapperStage(),
            DecompressorStage(),
            RobustArchitectureStage(epsilon=epsilon),
            ScheduleStage(),
        ],
        name="robust",
    )
    result = pipeline.run(soc, tam_width, config, events=sinks)
    return RobustPlanResult(
        result=result,
        nominal_makespan=int(captured["nominal_makespan"]),
        worst_case_makespan=int(captured["worst_case_makespan"]),
        epsilon=epsilon,
    )


def robust_search(
    core_names: Sequence[str],
    total_width: int,
    time_of: TimeFn,
    *,
    epsilon: float = 0.1,
    max_parts: int | None = None,
    min_width: int = 1,
    strategy: str = "auto",
    options: "Any | None" = None,
) -> RobustPlan:
    """Optimize against inflated times (box-uncertainty surrogate).

    For box uncertainty with a common ``epsilon``, the worst case of any
    assignment is exactly its makespan under times scaled by
    ``1 + epsilon``, so optimizing the inflated instance minimizes the
    true worst case over the partition/assignment space searched.
    """
    if not 0.0 <= epsilon < 1.0:
        raise ValueError(f"epsilon must be in [0, 1), got {epsilon}")

    def inflated(name: str, width: int) -> int:
        return max(1, int(round(time_of(name, width) * (1 + epsilon))))

    search = search_partitions(
        core_names,
        total_width,
        inflated,
        max_parts=max_parts,
        min_width=min_width,
        strategy=strategy,
        options=options,
    )
    outcome = search.outcome
    nominal_times = {
        name: time_of(name, outcome.widths[tam])
        for name, tam in zip(core_names, outcome.assignment)
    }
    nominal = _makespan_with_times(core_names, outcome, nominal_times)
    return RobustPlan(
        search=search,
        nominal_makespan=nominal,
        worst_case_makespan=search.makespan,
    )
