"""TAM partition enumeration + the ``search_partitions`` façade.

This module owns the *enumeration* of the partition space (the paper's
step 3 domain): :func:`iter_partitions`, its materialized/memoized twin
:func:`partitions_list`, and :func:`count_partitions` with the
``AUTO_PARTITION_LIMIT`` that decides when "auto" stops enumerating.

The *search strategies* that used to live here as private functions
(``_exhaustive``, ``_greedy``) moved to :mod:`repro.search` as
registered backends; :func:`search_partitions` is now a thin façade
over :func:`repro.search.run_search`, kept because every paper-facing
consumer (optimizer, robust planning, tests) speaks this signature.
Results are bit-identical to the pre-refactor implementation (pinned by
``tests/test_search_differential.py``).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Iterator, Mapping, Sequence

from repro.core.scheduler import TimeFn
from repro.search.state import PartitionSearchResult

__all__ = [
    "AUTO_PARTITION_LIMIT",
    "PartitionSearchResult",
    "count_partitions",
    "iter_partitions",
    "partitions_list",
    "search_partitions",
]

#: "auto" switches from exhaustive to greedy above this many partitions.
AUTO_PARTITION_LIMIT = 60_000


def iter_partitions(
    total: int, max_parts: int, min_width: int = 1
) -> Iterator[tuple[int, ...]]:
    """Yield integer partitions of ``total`` (non-increasing parts).

    Every part is at least ``min_width``; at most ``max_parts`` parts.
    Whenever ``total >= min_width`` the full-width single TAM ``(total,)``
    is yielded first; otherwise nothing is yielded.
    """
    if total < 1:
        raise ValueError(f"total width must be >= 1, got {total}")
    if max_parts < 1:
        raise ValueError(f"max_parts must be >= 1, got {max_parts}")
    if min_width < 1:
        raise ValueError(f"min_width must be >= 1, got {min_width}")

    def recurse(
        remaining: int, cap: int, parts_left: int, prefix: list[int]
    ) -> Iterator[tuple[int, ...]]:
        if remaining == 0:
            yield tuple(prefix)
            return
        if parts_left == 0 or remaining < min_width:
            return
        # Largest part first keeps the non-increasing invariant; the part
        # must leave room for the rest to be >= min_width each.
        for part in range(min(cap, remaining), min_width - 1, -1):
            rest = remaining - part
            if rest and (parts_left - 1 == 0 or rest < min_width):
                continue
            prefix.append(part)
            yield from recurse(rest, part, parts_left - 1, prefix)
            prefix.pop()

    yield from recurse(total, total, max_parts, [])


@lru_cache(maxsize=64)
def partitions_list(
    total: int, max_parts: int, min_width: int = 1
) -> tuple[tuple[int, ...], ...]:
    """Materialized (and memoized) :func:`iter_partitions`.

    Equal to ``tuple(iter_partitions(total, max_parts, min_width))``
    element for element (pinned by the differential suite) but built
    with a direct append recursion: resuming a ``yield from`` chain
    per partition costs more than every schedule the partition feeds.
    Only the exhaustive strategy calls this, so the memo stays below
    ``AUTO_PARTITION_LIMIT`` tuples per entry.
    """
    if total < 1:
        raise ValueError(f"total width must be >= 1, got {total}")
    if max_parts < 1:
        raise ValueError(f"max_parts must be >= 1, got {max_parts}")
    if min_width < 1:
        raise ValueError(f"min_width must be >= 1, got {min_width}")

    out: list[tuple[int, ...]] = []
    prefix: list[int] = []

    def recurse(remaining: int, cap: int, parts_left: int) -> None:
        if remaining == 0:
            out.append(tuple(prefix))
            return
        if parts_left == 0 or remaining < min_width:
            return
        for part in range(min(cap, remaining), min_width - 1, -1):
            rest = remaining - part
            if rest and (parts_left - 1 == 0 or rest < min_width):
                continue
            prefix.append(part)
            recurse(rest, part, parts_left - 1)
            prefix.pop()

    recurse(total, total, max_parts)
    return tuple(out)


def count_partitions(total: int, max_parts: int, min_width: int = 1) -> int:
    """Number of partitions :func:`iter_partitions` would yield."""
    # Dynamic program over (remaining, cap expressed as part sizes).
    # Small enough inputs that a dict-memoized recursion is fine.
    from functools import lru_cache

    @lru_cache(maxsize=None)
    def count(remaining: int, cap: int, parts_left: int) -> int:
        if remaining == 0:
            return 1
        if parts_left == 0 or remaining < min_width:
            return 0
        return sum(
            count(remaining - part, part, parts_left - 1)
            for part in range(min(cap, remaining), min_width - 1, -1)
            if not (
                remaining - part
                and (parts_left - 1 == 0 or remaining - part < min_width)
            )
        )

    return count(total, total, max_parts)


def search_partitions(
    core_names: Sequence[str],
    total_width: int,
    time_of: TimeFn,
    *,
    max_parts: int | None = None,
    min_width: int = 1,
    strategy: str = "auto",
    options: Mapping[str, Any] | None = None,
) -> PartitionSearchResult:
    """Find the best TAM partition + schedule for a width budget.

    ``strategy`` names a registered :mod:`repro.search` backend ("auto"
    picks exhaustive or greedy from the partition count); ``options``
    passes backend hyperparameters through (e.g. ``iterations`` /
    ``seed`` for anneal, ``generations`` / ``population`` for
    evolutionary), validated against the backend's declared knobs.
    """
    from repro.search import run_search

    return run_search(
        core_names,
        total_width,
        time_of,
        strategy=strategy,
        max_parts=max_parts,
        min_width=min_width,
        options=options,
    )
