"""TAM partition search (the paper's step 3).

The top-level width ``W_TAM`` must be cut into ``k`` fixed-width TAMs.
Two search strategies are provided:

* ``exhaustive`` -- enumerate every integer partition of ``W`` into at
  most ``max_parts`` parts of at least ``min_width`` wires and schedule
  each one.  Exact over the partition space and affordable for the
  paper-scale problems (W <= 64, k <= 6: tens of thousands of
  partitions, each scheduled in O(n k) table lookups).
* ``greedy`` -- a TR-Architect-flavored local search: start from one TAM
  of the full width, then repeatedly apply the best of three moves
  (split the bottleneck TAM, shift one wire toward the bottleneck TAM,
  merge the two least-loaded TAMs) while the makespan improves.  Used
  for wide budgets / many TAMs where enumeration explodes.

``search_partitions`` picks per the ``strategy`` argument ("auto" runs
the exhaustive search when the partition count is small and falls back
to greedy otherwise, keeping the better of greedy and the trivial
single-TAM solution).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Sequence

import numpy as np

from repro.core.scheduler import (
    ScheduleOutcome,
    TimeFn,
    TimeTable,
    schedule_cores,
    schedule_cores_indexed,
    schedule_makespans_batch,
)
from repro.flags import use_scalar_kernels

#: "auto" switches from exhaustive to greedy above this many partitions.
AUTO_PARTITION_LIMIT = 60_000


def iter_partitions(
    total: int, max_parts: int, min_width: int = 1
) -> Iterator[tuple[int, ...]]:
    """Yield integer partitions of ``total`` (non-increasing parts).

    Every part is at least ``min_width``; at most ``max_parts`` parts.
    Whenever ``total >= min_width`` the full-width single TAM ``(total,)``
    is yielded first; otherwise nothing is yielded.
    """
    if total < 1:
        raise ValueError(f"total width must be >= 1, got {total}")
    if max_parts < 1:
        raise ValueError(f"max_parts must be >= 1, got {max_parts}")
    if min_width < 1:
        raise ValueError(f"min_width must be >= 1, got {min_width}")

    def recurse(
        remaining: int, cap: int, parts_left: int, prefix: list[int]
    ) -> Iterator[tuple[int, ...]]:
        if remaining == 0:
            yield tuple(prefix)
            return
        if parts_left == 0 or remaining < min_width:
            return
        # Largest part first keeps the non-increasing invariant; the part
        # must leave room for the rest to be >= min_width each.
        for part in range(min(cap, remaining), min_width - 1, -1):
            rest = remaining - part
            if rest and (parts_left - 1 == 0 or rest < min_width):
                continue
            prefix.append(part)
            yield from recurse(rest, part, parts_left - 1, prefix)
            prefix.pop()

    yield from recurse(total, total, max_parts, [])


@lru_cache(maxsize=64)
def partitions_list(
    total: int, max_parts: int, min_width: int = 1
) -> tuple[tuple[int, ...], ...]:
    """Materialized (and memoized) :func:`iter_partitions`.

    Equal to ``tuple(iter_partitions(total, max_parts, min_width))``
    element for element (pinned by the differential suite) but built
    with a direct append recursion: resuming a ``yield from`` chain
    per partition costs more than every schedule the partition feeds.
    Only the exhaustive strategy calls this, so the memo stays below
    ``AUTO_PARTITION_LIMIT`` tuples per entry.
    """
    if total < 1:
        raise ValueError(f"total width must be >= 1, got {total}")
    if max_parts < 1:
        raise ValueError(f"max_parts must be >= 1, got {max_parts}")
    if min_width < 1:
        raise ValueError(f"min_width must be >= 1, got {min_width}")

    out: list[tuple[int, ...]] = []
    prefix: list[int] = []

    def recurse(remaining: int, cap: int, parts_left: int) -> None:
        if remaining == 0:
            out.append(tuple(prefix))
            return
        if parts_left == 0 or remaining < min_width:
            return
        for part in range(min(cap, remaining), min_width - 1, -1):
            rest = remaining - part
            if rest and (parts_left - 1 == 0 or rest < min_width):
                continue
            prefix.append(part)
            recurse(rest, part, parts_left - 1)
            prefix.pop()

    recurse(total, total, max_parts)
    return tuple(out)


def count_partitions(total: int, max_parts: int, min_width: int = 1) -> int:
    """Number of partitions :func:`iter_partitions` would yield."""
    # Dynamic program over (remaining, cap expressed as part sizes).
    # Small enough inputs that a dict-memoized recursion is fine.
    from functools import lru_cache

    @lru_cache(maxsize=None)
    def count(remaining: int, cap: int, parts_left: int) -> int:
        if remaining == 0:
            return 1
        if parts_left == 0 or remaining < min_width:
            return 0
        return sum(
            count(remaining - part, part, parts_left - 1)
            for part in range(min(cap, remaining), min_width - 1, -1)
            if not (
                remaining - part
                and (parts_left - 1 == 0 or remaining - part < min_width)
            )
        )

    return count(total, total, max_parts)


@dataclass(frozen=True)
class PartitionSearchResult:
    """Best partition found, with its schedule."""

    outcome: ScheduleOutcome
    partitions_evaluated: int
    strategy: str

    @property
    def widths(self) -> tuple[int, ...]:
        return self.outcome.widths

    @property
    def makespan(self) -> int:
        return self.outcome.makespan


def _exhaustive(
    core_names: Sequence[str],
    total_width: int,
    time_of: TimeFn,
    max_parts: int,
    min_width: int,
) -> PartitionSearchResult:
    if use_scalar_kernels():
        best: ScheduleOutcome | None = None
        evaluated = 0
        for widths in iter_partitions(total_width, max_parts, min_width):
            outcome = schedule_cores(core_names, widths, time_of)
            evaluated += 1
            if best is None or outcome.makespan < best.makespan:
                best = outcome
        assert best is not None  # (total,) is always yielded
        return PartitionSearchResult(
            outcome=best, partitions_evaluated=evaluated, strategy="exhaustive"
        )

    partitions = partitions_list(total_width, max_parts, min_width)
    table = TimeTable(core_names, time_of)
    makespans = schedule_makespans_batch(table, partitions)
    # argmin keeps the first minimum, matching the scalar loop's strict
    # ``<`` improvement test over the same enumeration order.
    winner = int(np.argmin(makespans))
    outcome = schedule_cores_indexed(table, partitions[winner])
    return PartitionSearchResult(
        outcome=outcome,
        partitions_evaluated=len(partitions),
        strategy="exhaustive",
    )


def _greedy_moves(widths: list[int], bottleneck: int, min_width: int) -> list[list[int]]:
    """Candidate neighbor partitions for the local search."""
    candidates: list[list[int]] = []
    # Split the bottleneck TAM in two (parallelism for its cores).
    w = widths[bottleneck]
    if w >= 2 * min_width:
        half = w // 2
        split = widths[:bottleneck] + widths[bottleneck + 1 :] + [w - half, half]
        candidates.append(split)
    # Shift one wire from every other TAM toward the bottleneck TAM.
    for donor in range(len(widths)):
        if donor == bottleneck or widths[donor] <= min_width:
            continue
        shifted = list(widths)
        shifted[donor] -= 1
        shifted[bottleneck] += 1
        candidates.append(shifted)
    # Merge the two narrowest TAMs (serialize their cores, free width).
    if len(widths) >= 2:
        order = sorted(range(len(widths)), key=lambda i: widths[i])
        a, b = order[0], order[1]
        merged = [w for i, w in enumerate(widths) if i not in (a, b)]
        merged.append(widths[a] + widths[b])
        candidates.append(merged)
    return candidates


def _greedy(
    core_names: Sequence[str],
    total_width: int,
    time_of: TimeFn,
    max_parts: int,
    min_width: int,
) -> PartitionSearchResult:
    if use_scalar_kernels():
        schedule = lambda widths: schedule_cores(core_names, widths, time_of)  # noqa: E731
    else:
        table = TimeTable(core_names, time_of)
        schedule = lambda widths: schedule_cores_indexed(table, widths)  # noqa: E731
    current = [total_width]
    best = schedule(current)
    evaluated = 1
    improved = True
    while improved:
        improved = False
        bottleneck = _bottleneck_tam(core_names, best, time_of)
        for widths in _greedy_moves(list(best.widths), bottleneck, min_width):
            if len(widths) > max_parts or any(w < min_width for w in widths):
                continue
            outcome = schedule(sorted(widths, reverse=True))
            evaluated += 1
            if outcome.makespan < best.makespan:
                best = outcome
                improved = True
                break
    return PartitionSearchResult(
        outcome=best, partitions_evaluated=evaluated, strategy="greedy"
    )


def _bottleneck_tam(
    core_names: Sequence[str], outcome: ScheduleOutcome, time_of: TimeFn
) -> int:
    loads = [0] * len(outcome.widths)
    for index, tam in enumerate(outcome.assignment):
        loads[tam] += time_of(core_names[index], outcome.widths[tam])
    return max(range(len(loads)), key=lambda i: loads[i])


def search_partitions(
    core_names: Sequence[str],
    total_width: int,
    time_of: TimeFn,
    *,
    max_parts: int | None = None,
    min_width: int = 1,
    strategy: str = "auto",
) -> PartitionSearchResult:
    """Find the best TAM partition + schedule for a width budget."""
    if not core_names:
        raise ValueError("cannot design an architecture for zero cores")
    if max_parts is None:
        max_parts = min(len(core_names), 6)
    max_parts = min(max_parts, total_width // min_width)
    if max_parts < 1:
        raise ValueError(
            f"width {total_width} cannot host a TAM of min width {min_width}"
        )

    if strategy == "auto":
        size = count_partitions(total_width, max_parts, min_width)
        strategy = "exhaustive" if size <= AUTO_PARTITION_LIMIT else "greedy"
    if strategy == "exhaustive":
        return _exhaustive(core_names, total_width, time_of, max_parts, min_width)
    if strategy == "greedy":
        return _greedy(core_names, total_width, time_of, max_parts, min_width)
    if strategy == "anneal":
        from repro.core.anneal import anneal_search

        return anneal_search(
            core_names,
            total_width,
            time_of,
            max_parts=max_parts,
            min_width=min_width,
        )
    raise ValueError(f"unknown strategy {strategy!r}")
