"""Test-architecture data model: TAMs, per-core configurations, schedules.

A :class:`TestArchitecture` is the complete answer the optimizer
produces: the TAM partition, where every core sits, when it is tested,
and with which wrapper/decompressor configuration.  It is deliberately a
plain data object -- the optimization logic lives in
:mod:`repro.core.scheduler`, :mod:`repro.core.partition` and
:mod:`repro.core.optimizer`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable


class DecompressorPlacement(enum.Enum):
    """Where test-pattern expansion happens, if anywhere (Figure 4)."""

    NONE = "none"  # Figure 4(a): no TDC
    PER_CORE = "per-core"  # Figure 4(c): the paper's proposal
    PER_TAM = "per-tam"  # Figure 4(b)
    SOC_LEVEL = "soc-level"  # the virtual-TAM comparator (ref [18])


@dataclass(frozen=True)
class Tam:
    """One fixed-width test access mechanism bus."""

    index: int
    width: int

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"TAM width must be >= 1, got {self.width}")


@dataclass(frozen=True)
class CoreConfig:
    """The per-core design choice behind a scheduled test.

    ``uses_compression`` selects between the two time models: without
    compression ``tam_width == wrapper_chains``; with compression the
    decompressor expands ``code_width`` TAM bits into ``wrapper_chains``
    wrapper-chain bits each cycle.  ``technique`` names the compression
    scheme ("none", "selective", or "dictionary"); the default "auto"
    resolves from ``uses_compression``.
    """

    core_name: str
    uses_compression: bool
    wrapper_chains: int
    code_width: int | None
    test_time: int
    volume: int
    technique: str = "auto"

    def __post_init__(self) -> None:
        if self.uses_compression and self.code_width is None:
            raise ValueError("compressed config needs a code width")
        if self.test_time < 0 or self.volume < 0:
            raise ValueError("test time and volume must be >= 0")
        if self.technique == "auto":
            resolved = "selective" if self.uses_compression else "none"
            object.__setattr__(self, "technique", resolved)
        elif self.technique not in ("none", "selective", "dictionary"):
            raise ValueError(f"unknown technique {self.technique!r}")
        if self.technique != "none" and not self.uses_compression:
            raise ValueError(
                f"technique {self.technique!r} requires uses_compression"
            )
        if self.technique == "none" and self.uses_compression:
            raise ValueError("compressed config cannot use technique 'none'")


@dataclass(frozen=True)
class ScheduledCore:
    """A core's slot in the schedule: which TAM, and when."""

    config: CoreConfig
    tam_index: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end - self.start != self.config.test_time:
            raise ValueError(
                f"slot length {self.end - self.start} != test time "
                f"{self.config.test_time} for {self.config.core_name}"
            )


@dataclass(frozen=True)
class TestArchitecture:
    """A complete SOC test architecture and schedule."""

    __test__ = False  # "Test" prefix is domain vocabulary, not a pytest class

    soc_name: str
    placement: DecompressorPlacement
    tams: tuple[Tam, ...]
    scheduled: tuple[ScheduledCore, ...]
    ate_channels: int

    def __post_init__(self) -> None:
        tam_indices = {t.index for t in self.tams}
        for item in self.scheduled:
            if item.tam_index not in tam_indices:
                raise ValueError(
                    f"{item.config.core_name} scheduled on unknown TAM "
                    f"{item.tam_index}"
                )
        # Overlap check: tests on the same TAM must not overlap in time.
        by_tam: dict[int, list[ScheduledCore]] = {}
        for item in self.scheduled:
            by_tam.setdefault(item.tam_index, []).append(item)
        for items in by_tam.values():
            items.sort(key=lambda s: s.start)
            for a, b in zip(items, items[1:]):
                if b.start < a.end:
                    raise ValueError(
                        f"overlap on TAM {a.tam_index}: "
                        f"{a.config.core_name} [{a.start}, {a.end}) vs "
                        f"{b.config.core_name} [{b.start}, {b.end})"
                    )

    # ------------------------------------------------------------------

    @property
    def total_tam_width(self) -> int:
        """Sum of on-chip TAM wire widths (Figure 4's wire-cost metric)."""
        return sum(t.width for t in self.tams)

    @property
    def test_time(self) -> int:
        """SOC test time: when the last core finishes."""
        return max((s.end for s in self.scheduled), default=0)

    @property
    def test_data_volume(self) -> int:
        """Total stimulus bits the ATE stores for this architecture."""
        return sum(s.config.volume for s in self.scheduled)

    @property
    def cores_per_tam(self) -> dict[int, tuple[str, ...]]:
        out: dict[int, list[str]] = {t.index: [] for t in self.tams}
        for item in sorted(self.scheduled, key=lambda s: s.start):
            out[item.tam_index].append(item.config.core_name)
        return {k: tuple(v) for k, v in out.items()}

    def tam_finish_times(self) -> dict[int, int]:
        out = {t.index: 0 for t in self.tams}
        for item in self.scheduled:
            out[item.tam_index] = max(out[item.tam_index], item.end)
        return out

    def config_for(self, core_name: str) -> CoreConfig:
        for item in self.scheduled:
            if item.config.core_name == core_name:
                return item.config
        raise KeyError(f"core {core_name!r} not in architecture")

    # ------------------------------------------------------------------

    def render_gantt(self, width: int = 72) -> str:
        """ASCII Gantt chart of the schedule (one row per TAM).

        Every slot gets at least one cell, and slots that do not overlap
        in time never share a cell: a per-TAM cursor pushes each slot
        past the previous one when rounding would land them on the same
        column (a short test next to a long one used to be painted over
        entirely).
        """
        total = self.test_time
        if total == 0:
            return "(empty schedule)"
        lines = []
        for tam in self.tams:
            row = [" "] * width
            items = sorted(
                (s for s in self.scheduled if s.tam_index == tam.index),
                key=lambda s: (s.start, s.end),
            )
            cursor = 0
            for item in items:
                lo = max(int(item.start / total * width), cursor)
                if lo >= width:
                    break
                hi = min(max(lo + 1, int(item.end / total * width)), width)
                label = item.config.core_name[: hi - lo]
                for pos in range(lo, hi):
                    row[pos] = "#"
                for offset, ch in enumerate(label):
                    row[lo + offset] = ch
                cursor = hi
            lines.append(f"TAM{tam.index} (w={tam.width:>3}) |{''.join(row)}|")
        lines.append(f"total: {total} cycles, {self.total_tam_width} TAM wires")
        return "\n".join(lines)


def architecture_summary(arch: TestArchitecture) -> str:
    """One-paragraph textual description of an architecture."""
    parts = [
        f"{arch.soc_name}: placement={arch.placement.value}, "
        f"{len(arch.tams)} TAM(s) "
        f"({', '.join(str(t.width) for t in arch.tams)} wires), "
        f"ATE channels={arch.ate_channels}, "
        f"test time={arch.test_time} cycles, "
        f"volume={arch.test_data_volume} bits"
    ]
    for tam_index, names in arch.cores_per_tam.items():
        parts.append(f"  TAM{tam_index}: {' -> '.join(names) if names else '(idle)'}")
    return "\n".join(parts)


def validate_width_budget(
    tams: Iterable[Tam], budget: int, *, label: str = "TAM width"
) -> None:
    """Raise if the TAM widths exceed the given wire budget."""
    total = sum(t.width for t in tams)
    if total > budget:
        raise ValueError(f"{label} budget exceeded: {total} > {budget}")
