"""The paper's co-optimization flow (section 3) -- pipeline-backed.

Four steps, per SOC and width budget:

1. *Wrapper-chain design* -- per core, wrapper designs for every
   candidate chain count (``repro.wrapper.design``, cached).
2. *Decompressor design* -- per core, the compressed test time
   ``tau_c(w, m)`` over all feasible decompressor I/O widths
   (``repro.explore.dse`` lookup tables).
3. *Test-architecture design* -- partition the top-level TAM width into
   fixed-width TAMs (``repro.core.partition``).
4. *Test scheduling* -- longest-first list scheduling onto the TAMs
   (``repro.core.scheduler``).

The flow itself now lives in :mod:`repro.pipeline` as typed stages
(:class:`~repro.pipeline.stages.WrapperStage`,
:class:`~repro.pipeline.stages.DecompressorStage`, pluggable
architecture and schedule stages); the functions here are thin,
signature-stable wrappers kept as the historical entry points.  They
are differentially tested to produce plans bit-identical to the
pre-pipeline implementations.

:func:`optimize_soc` runs the flow with per-core decompressors (the
paper's proposal, Figure 4(c)), without TDC (Figure 4(a)), or in an
"auto" mode (our extension) that lets each core bypass its decompressor
when compression does not pay -- relevant for the high-care-density
academic benchmarks.

:func:`optimize_per_tam` implements the Figure 4(b) alternative: one
decompressor per TAM, shared by every core on that TAM, so all of them
must use the same expanded width ``M_j``.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.compression.estimator import DEFAULT_SAMPLES
from repro.explore.dse import DEFAULT_GRID, Mode
from repro.pipeline.config import Compression, RunConfig, normalize_compression
from repro.pipeline.events import EventSink
from repro.pipeline.pipeline import Pipeline
from repro.pipeline.result import ConstrainedResult, OptimizeResult, PlanResult
from repro.pipeline.tables import LookupTables
from repro.soc.soc import Soc

#: Backward-compatible aliases for the pre-pipeline private names.
_LookupTables = LookupTables
_normalize_compression = normalize_compression


def optimize_soc(
    soc: Soc,
    tam_width: int,
    *,
    compression: bool | str = True,
    mode: Mode = "auto",
    samples: int = DEFAULT_SAMPLES,
    grid: int = DEFAULT_GRID,
    max_tams: int | None = None,
    min_tam_width: int = 1,
    strategy: str = "auto",
    search_opts: "Mapping[str, object] | tuple[tuple[str, str], ...]" = (),
    jobs: int | None = None,
    cache_dir: str | None = None,
    use_cache: bool | None = None,
    events: EventSink | Iterable[EventSink] | None = None,
) -> PlanResult:
    """Run the four-step co-optimization for a TAM width budget.

    Parameters
    ----------
    soc:
        The design to plan.
    tam_width:
        Top-level width budget ``W_TAM``.  With per-core decompression
        the ATE channel count equals the TAM width, so this same entry
        point serves the paper's Table 1 (``W_ATE``) and Table 2 /
        Table 3 (``W_TAM``) constraints.
    compression:
        ``True``/"per-core" (the paper), ``False``/"none" (the baseline
        of Table 3), or "auto" (per-core bypass extension).
    mode, samples, grid:
        Passed to the per-core design-space exploration.
    max_tams, min_tam_width, strategy:
        Partition-search controls (see :mod:`repro.core.partition`).
    search_opts:
        Backend hyperparameter overrides (e.g. ``{"iterations": 8000,
        "seed": 7}`` for the anneal strategy), validated against the
        chosen :mod:`repro.search` backend's declared knobs.
    jobs:
        Worker processes for the per-core analyses (default serial; see
        :func:`repro.parallel.resolve_jobs` for the env override).
    cache_dir, use_cache:
        Persistent analysis-cache controls (see
        :func:`repro.explore.cache.resolve_cache`).  The optimizer's
        result is bit-identical with or without the cache; only the
        wall-clock changes.
    events:
        Optional :class:`~repro.pipeline.events.RunEvent` sink(s)
        receiving the structured run stream.
    """
    if tam_width < 1:
        raise ValueError(f"TAM width must be >= 1, got {tam_width}")
    config = RunConfig(
        compression=normalize_compression(compression),
        mode=mode,
        samples=samples,
        grid=grid,
        max_tams=max_tams,
        min_tam_width=min_tam_width,
        strategy=strategy,
        search_opts=tuple(
            sorted((str(k), str(v)) for k, v in dict(search_opts).items())
        ),
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
    )
    return Pipeline.standard().run(soc, tam_width, config, events=events)


# ---------------------------------------------------------------------------
# Constrained planning (extension): power budget and precedence.
# ---------------------------------------------------------------------------


def optimize_soc_constrained(
    soc: Soc,
    tam_width: int,
    *,
    compression: bool | str = True,
    power_budget: float | None = None,
    power_of: dict[str, float] | None = None,
    precedence: tuple[tuple[str, str], ...] = (),
    mode: Mode = "auto",
    samples: int = DEFAULT_SAMPLES,
    grid: int = DEFAULT_GRID,
    max_tams: int | None = None,
    min_tam_width: int = 1,
    jobs: int | None = None,
    cache_dir: str | None = None,
    use_cache: bool | None = None,
    events: EventSink | Iterable[EventSink] | None = None,
) -> PlanResult:
    """Co-optimization under a power budget and/or precedence constraints.

    Like :func:`optimize_soc` but schedules with
    :func:`repro.core.timeline.schedule_constrained`, which may insert
    TAM idle time to respect the constraints.  When ``power_budget`` is
    given and ``power_of`` is not, per-core flat power comes from
    :func:`repro.power.model.power_table` (majority fill when
    compressing, random fill otherwise).

    Always uses the constrained pipeline, even with no constraints set
    (the exhaustive partition scan is part of this entry point's
    contract).
    """
    if tam_width < 1:
        raise ValueError(f"TAM width must be >= 1, got {tam_width}")
    config = RunConfig(
        compression=normalize_compression(compression),
        mode=mode,
        samples=samples,
        grid=grid,
        max_tams=max_tams,
        min_tam_width=min_tam_width,
        power_budget=power_budget,
        power_of=power_of,
        precedence=tuple(precedence),
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
    )
    return Pipeline.constrained().run(soc, tam_width, config, events=events)


# ---------------------------------------------------------------------------
# Figure 4(b): one decompressor per TAM.
# ---------------------------------------------------------------------------


def optimize_per_tam(
    soc: Soc,
    ate_channels: int,
    *,
    mode: Mode = "auto",
    samples: int = DEFAULT_SAMPLES,
    grid: int = DEFAULT_GRID,
    max_tams: int | None = None,
    min_code_width: int = 3,
    jobs: int | None = None,
    cache_dir: str | None = None,
    use_cache: bool | None = None,
    events: EventSink | Iterable[EventSink] | None = None,
) -> PlanResult:
    """Figure 4(b): decompressor per TAM, shared expanded width per TAM.

    The ATE channel budget is partitioned into per-TAM code widths
    ``w_j >= 3``; each TAM's decompressor expands to a single shared
    width ``M_j`` chosen from the best-``m`` candidates of the cores
    assigned to that TAM.  The reported TAM widths are the *expanded*
    on-chip widths -- the wide, costly buses the paper's Figure 4(b)
    points at.
    """
    if ate_channels < min_code_width:
        raise ValueError(
            f"ATE channels ({ate_channels}) below minimum code width "
            f"({min_code_width})"
        )
    config = RunConfig(
        compression="per-tam",
        mode=mode,
        samples=samples,
        grid=grid,
        max_tams=max_tams,
        min_code_width=min_code_width,
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
    )
    return Pipeline.per_tam().run(soc, ate_channels, config, events=events)
