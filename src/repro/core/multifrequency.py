"""Multi-frequency TAM design (extension; the paper's ref [12]).

Xu & Nicolici's multi-frequency TAM formulation lets each TAM run at
its own scan clock: a narrow TAM clocked faster delivers the same
bandwidth as a wide slow one, and cores with relaxed scan-frequency
limits can trade wires for clock rate.  The tester-side constraint is
*bandwidth*: the sum over TAMs of ``width x frequency_ratio`` may not
exceed the ATE's channel bandwidth (channels x base rate).

Model here:

* a TAM is a pair ``(width, ratio)`` with ``ratio`` from a small set of
  integer multipliers of the ATE base clock (1x, 2x, 4x);
* a core tested on a TAM of width ``w`` at ratio ``r`` finishes in
  ``ceil(tau(w) / r)`` ATE-clock cycles, provided its scan logic admits
  the frequency (``freq_limit``), otherwise the TAM is unusable for it;
* the search enumerates bandwidth partitions and, per part, every
  (width, ratio) factorization; scheduling is the paper's longest-first
  list heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.partition import iter_partitions
from repro.core.scheduler import TimeFn

DEFAULT_RATIOS: tuple[int, ...] = (1, 2, 4)

#: Sentinel duration for (core, TAM) pairs the core's frequency limit
#: forbids; large enough to lose every comparison without overflowing.
_FORBIDDEN = 1 << 60


@dataclass(frozen=True)
class FrequencyTam:
    """One TAM of the multi-frequency architecture."""

    width: int
    ratio: int

    @property
    def bandwidth(self) -> int:
        return self.width * self.ratio


@dataclass(frozen=True)
class MultiFrequencyPlan:
    """Best multi-frequency architecture found for a bandwidth budget."""

    bandwidth: int
    tams: tuple[FrequencyTam, ...]
    assignment: tuple[int, ...]  # per core (input order), TAM index
    makespan: int
    configurations_evaluated: int

    @property
    def total_wires(self) -> int:
        return sum(t.width for t in self.tams)


def _tam_options(part: int, ratios: Sequence[int]) -> list[FrequencyTam]:
    options = []
    for ratio in ratios:
        if ratio >= 1 and part % ratio == 0 and part // ratio >= 1:
            options.append(FrequencyTam(width=part // ratio, ratio=ratio))
    return options


def optimize_multifrequency(
    core_names: Sequence[str],
    bandwidth: int,
    time_of: TimeFn,
    *,
    ratios: Sequence[int] = DEFAULT_RATIOS,
    freq_limit: Mapping[str, int] | None = None,
    max_tams: int | None = None,
) -> MultiFrequencyPlan:
    """Search (width, ratio) TAM sets within an ATE bandwidth budget.

    ``time_of(name, width)`` gives the core's scan-clock test time at a
    TAM width; ``freq_limit[name]`` (default: unlimited) caps the clock
    ratio the core's scan chains tolerate.
    """
    if not core_names:
        raise ValueError("cannot plan zero cores")
    if bandwidth < 1:
        raise ValueError(f"bandwidth must be >= 1, got {bandwidth}")
    if any(r < 1 for r in ratios):
        raise ValueError(f"clock ratios must be >= 1, got {tuple(ratios)}")
    limits = dict(freq_limit or {})
    if max_tams is None:
        max_tams = min(len(core_names), 4)

    def duration(name: str, tam: FrequencyTam) -> int:
        if limits.get(name) is not None and tam.ratio > limits[name]:
            return _FORBIDDEN
        return -(-time_of(name, tam.width) // tam.ratio)

    best: MultiFrequencyPlan | None = None
    evaluated = 0
    for parts in iter_partitions(bandwidth, max_tams, 1):
        # Per part, every (width, ratio) factorization; combinations
        # across parts multiply, so walk them recursively.
        per_part_options = [_tam_options(part, ratios) for part in parts]

        def walk(index: int, chosen: list[FrequencyTam]) -> None:
            nonlocal best, evaluated
            if index == len(per_part_options):
                evaluated += 1
                plan = _schedule(core_names, tuple(chosen), duration)
                if plan is None:
                    return
                wires = sum(t.width for t in plan.tams)
                # Prefer faster plans; at equal speed, fewer on-chip
                # wires (the whole point of fast narrow TAMs).
                if best is None or (plan.makespan, wires) < (
                    best.makespan,
                    best.total_wires,
                ):
                    best = MultiFrequencyPlan(
                        bandwidth=bandwidth,
                        tams=plan.tams,
                        assignment=plan.assignment,
                        makespan=plan.makespan,
                        configurations_evaluated=0,
                    )
                return
            for option in per_part_options[index]:
                # Canonical order within equal parts avoids duplicates.
                if (
                    chosen
                    and parts[index] == parts[index - 1]
                    and option.ratio < chosen[-1].ratio
                ):
                    continue
                chosen.append(option)
                walk(index + 1, chosen)
                chosen.pop()

        walk(0, [])
    if best is None:
        raise ValueError("no feasible multi-frequency architecture")
    return MultiFrequencyPlan(
        bandwidth=best.bandwidth,
        tams=best.tams,
        assignment=best.assignment,
        makespan=best.makespan,
        configurations_evaluated=evaluated,
    )


@dataclass(frozen=True)
class _Scheduled:
    tams: tuple[FrequencyTam, ...]
    assignment: tuple[int, ...]
    makespan: int


def _schedule(core_names, tams, duration) -> _Scheduled | None:
    """Longest-first list scheduling over heterogeneous TAMs."""
    order = sorted(
        range(len(core_names)),
        key=lambda i: (
            -min(duration(core_names[i], t) for t in tams),
            core_names[i],
        ),
    )
    loads = [0] * len(tams)
    assignment = [-1] * len(core_names)
    for index in order:
        name = core_names[index]
        best_key = None
        best_tam = -1
        for t, tam in enumerate(tams):
            d = duration(name, tam)
            if d >= _FORBIDDEN:
                continue
            key = (loads[t] + d, t)
            if best_key is None or key < best_key:
                best_key = key
                best_tam = t
        if best_tam < 0:
            return None  # some core fits no TAM (frequency limits)
        assignment[index] = best_tam
        loads[best_tam] += duration(name, tams[best_tam])
    return _Scheduled(
        tams=tams, assignment=tuple(assignment), makespan=max(loads)
    )
