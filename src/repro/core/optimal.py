"""Exact (branch-and-bound) reference for small instances.

The paper's flow is a heuristic because test-architecture optimization
is NP-hard.  For small SOCs an exact optimum is still computable:
enumerate every TAM partition and solve each fixed-partition assignment
problem (minimum-makespan multiprocessor scheduling with
machine-dependent processing times) by depth-first branch-and-bound.

Used by the quality ablation (A5) to measure how far the longest-first
list heuristic lands from the true optimum, and by tests as ground
truth.  Guardrails keep it off industrial-size inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.partition import iter_partitions
from repro.core.scheduler import TimeFn

#: Exhaustive assignment is exponential; refuse bigger instances.
MAX_CORES = 12


@dataclass(frozen=True)
class OptimalOutcome:
    """Provably optimal partition + assignment for a width budget."""

    widths: tuple[int, ...]
    assignment: tuple[int, ...]  # per core (input order), TAM index
    makespan: int
    nodes_explored: int


def _optimal_assignment(
    durations: list[list[int]], upper_bound: int
) -> tuple[int, tuple[int, ...] | None, int]:
    """B&B over task->machine assignments.

    ``durations[i][t]`` is task i's time on machine t (tasks pre-sorted
    longest-first for strong early pruning).  Returns (best makespan,
    best assignment or None if nothing beat the bound, nodes explored).
    """
    n = len(durations)
    k = len(durations[0]) if n else 1
    best = upper_bound
    best_assignment: tuple[int, ...] | None = None
    loads = [0] * k
    assignment = [0] * n
    nodes = 0

    # Suffix lower bound: each remaining task needs at least its fastest
    # machine time; spreading perfectly cannot beat total/k growth.
    suffix_min = [0] * (n + 1)
    for i in range(n - 1, -1, -1):
        suffix_min[i] = suffix_min[i + 1] + min(durations[i])

    # Machines with identical duration columns are interchangeable;
    # group them so symmetric subtrees are explored once.
    column_class: list[int] = []
    for t in range(k):
        column = [durations[i][t] for i in range(n)]
        for t2 in range(t):
            if [durations[i][t2] for i in range(n)] == column:
                column_class.append(column_class[t2])
                break
        else:
            column_class.append(t)

    def dfs(i: int) -> None:
        nonlocal best, best_assignment, nodes
        nodes += 1
        if i == n:
            span = max(loads)
            if span < best:
                best = span
                best_assignment = tuple(assignment)
            return
        # Bound: even perfect balancing of the remaining fastest times
        # cannot push the busiest machine below this.
        bound = max(max(loads), (sum(loads) + suffix_min[i]) // k)
        if bound >= best:
            return
        seen: set[tuple[int, int]] = set()
        for t in range(k):
            key = (column_class[t], loads[t])
            if key in seen:
                continue  # symmetric to an explored branch
            seen.add(key)
            if loads[t] + durations[i][t] >= best:
                continue
            loads[t] += durations[i][t]
            assignment[i] = t
            dfs(i + 1)
            loads[t] -= durations[i][t]

    dfs(0)
    return best, best_assignment, nodes


def optimal_schedule(
    core_names: Sequence[str],
    total_width: int,
    time_of: TimeFn,
    *,
    max_parts: int | None = None,
    min_width: int = 1,
) -> OptimalOutcome:
    """Provably minimal makespan over partitions x assignments.

    Complexity is exponential in the core count; inputs beyond
    ``MAX_CORES`` cores are rejected.
    """
    n = len(core_names)
    if n == 0:
        raise ValueError("cannot schedule zero cores")
    if n > MAX_CORES:
        raise ValueError(
            f"exact search supports at most {MAX_CORES} cores, got {n}"
        )
    if max_parts is None:
        max_parts = min(n, 4)

    order = sorted(
        range(n), key=lambda i: -time_of(core_names[i], total_width)
    )

    best_span = None
    best_widths: tuple[int, ...] | None = None
    best_assignment: tuple[int, ...] | None = None
    total_nodes = 0
    for widths in iter_partitions(total_width, max_parts, min_width):
        durations = [
            [time_of(core_names[i], w) for w in widths] for i in order
        ]
        bound = best_span if best_span is not None else 1 << 62
        span, assignment, nodes = _optimal_assignment(durations, bound)
        total_nodes += nodes
        if assignment is not None and (best_span is None or span < best_span):
            best_span = span
            best_widths = widths
            remapped = [0] * n
            for pos, tam in enumerate(assignment):
                remapped[order[pos]] = tam
            best_assignment = tuple(remapped)

    assert best_span is not None and best_widths and best_assignment is not None
    return OptimalOutcome(
        widths=best_widths,
        assignment=best_assignment,
        makespan=best_span,
        nodes_explored=total_nodes,
    )
