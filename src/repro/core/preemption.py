"""Preemptive test scheduling (extension).

The SOC test-scheduling literature (e.g. Iyengar & Chakrabarty,
"System-on-a-Chip Test Scheduling With Precedence Relationships,
Preemption, and Power Constraints") allows a core's test to be *split*
at pattern boundaries: when a power budget blocks a long test, its
remainder can resume later, letting shorter tests fill the gap instead
of leaving the TAM idle.  Preemption costs bounded bookkeeping on the
ATE (each segment is a separate pattern burst), so the segment count
per core is capped.

:func:`schedule_preemptive` extends the constrained list scheduler: a
core placed on a TAM fills the earliest power-feasible windows
piecewise, up to ``max_segments`` pieces (the final piece runs to
completion contiguously once started).  With an unconstrained power
budget it degenerates to back-to-back non-preemptive scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.core.scheduler import TimeFn
from repro.core.timeline import PrecedenceError, _check_precedence

#: Windows smaller than this are not worth a preemption (ATE burst
#: setup dominates); expressed in cycles.
MIN_SEGMENT = 1


@dataclass(frozen=True)
class Segment:
    """One contiguous piece of a (possibly split) core test."""

    name: str
    tam: int
    start: int
    end: int
    power: float
    index: int  # 0-based segment number within the core's test

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class PreemptiveSchedule:
    """Outcome of preemptive constrained scheduling."""

    widths: tuple[int, ...]
    segments: tuple[Segment, ...]
    makespan: int
    peak_power: float

    def segments_for(self, name: str) -> tuple[Segment, ...]:
        return tuple(
            sorted(
                (s for s in self.segments if s.name == name),
                key=lambda s: s.start,
            )
        )

    @property
    def preemption_count(self) -> int:
        """Total number of splits across all cores."""
        by_name: dict[str, int] = {}
        for segment in self.segments:
            by_name[segment.name] = by_name.get(segment.name, 0) + 1
        return sum(count - 1 for count in by_name.values())


def _power_level_events(
    segments: Sequence[Segment],
) -> list[tuple[int, float]]:
    events: list[tuple[int, float]] = []
    for segment in segments:
        events.append((segment.start, segment.power))
        events.append((segment.end, -segment.power))
    events.sort()
    return events


def _feasible_windows(
    segments: Sequence[Segment],
    tam: int,
    ready: int,
    power: float,
    budget: float | None,
    horizon: int,
) -> list[tuple[int, int]]:
    """Windows >= ready where TAM ``tam`` is free and power admits ``power``.

    ``horizon`` is a time past every existing segment, so the last
    window always ends *exactly* at ``horizon``: every segment ends at
    or before ``horizon - 1``, which makes the final sweep interval
    TAM-free, and the caller pre-checks that ``power`` alone fits the
    budget.  Callers rely on that trailing window as the place where a
    test can always run to completion (the schedule simply grows past
    the horizon).
    """
    # Candidate boundaries: every segment start/end plus `ready`.
    points = {ready, horizon}
    for segment in segments:
        if segment.end > ready:
            points.add(max(ready, segment.start))
            points.add(segment.end)
    ordered = sorted(points)

    def ok(t0: int, t1: int) -> bool:
        for segment in segments:
            if segment.tam == tam and segment.start < t1 and t0 < segment.end:
                return False
        if budget is not None:
            level = power
            for segment in segments:
                if segment.start < t1 and t0 < segment.end:
                    level += segment.power
            if level > budget + 1e-9:
                return False
        return True

    windows: list[tuple[int, int]] = []
    for t0, t1 in zip(ordered, ordered[1:]):
        if t1 <= t0:
            continue
        if ok(t0, t1):
            if windows and windows[-1][1] == t0:
                windows[-1] = (windows[-1][0], t1)
            else:
                windows.append((t0, t1))
    assert windows and windows[-1][1] == horizon, (
        "feasible-window sweep must end with a window closing at the "
        f"horizon; got {windows} for horizon {horizon}"
    )
    return windows


def schedule_preemptive(
    core_names: Sequence[str],
    widths: Sequence[int],
    time_of: TimeFn,
    *,
    power_of: Mapping[str, float] | Callable[[str], float] | None = None,
    power_budget: float | None = None,
    precedence: Sequence[tuple[str, str]] = (),
    max_segments: int = 3,
) -> PreemptiveSchedule:
    """Constrained list scheduling with bounded preemption.

    Each core may split into at most ``max_segments`` contiguous pieces;
    the last piece always runs to completion.  Raises on malformed
    precedence and on per-core power exceeding the budget.
    """
    if not widths:
        raise ValueError("at least one TAM is required")
    if any(w < 1 for w in widths):
        raise ValueError(f"TAM widths must be >= 1, got {tuple(widths)}")
    if max_segments < 1:
        raise ValueError(f"max_segments must be >= 1, got {max_segments}")
    preds = _check_precedence(core_names, precedence)

    def power(name: str) -> float:
        if power_of is None:
            return 0.0
        if callable(power_of):
            return float(power_of(name))
        return float(power_of[name])

    if power_budget is not None:
        for name in core_names:
            if power(name) > power_budget:
                raise ValueError(
                    f"core {name!r} alone exceeds the power budget "
                    f"({power(name):.2f} > {power_budget:.2f})"
                )

    widest = max(widths)
    placed: list[Segment] = []
    finished: dict[str, int] = {}
    pending = set(core_names)

    while pending:
        ready_names = sorted(
            (n for n in pending if preds[n] <= set(finished)),
            key=lambda n: (-time_of(n, widest), n),
        )
        name = ready_names[0]
        ready_at = max((finished[p] for p in preds[name]), default=0)
        horizon = max((s.end for s in placed), default=0) + 1

        best_pieces: list[tuple[int, int]] | None = None
        best_tam = -1
        best_finish: int | None = None
        for tam, width in enumerate(widths):
            duration = time_of(name, width)
            windows = _feasible_windows(
                placed, tam, ready_at, power(name), power_budget, horizon
            )
            pieces: list[tuple[int, int]] = []
            remaining = duration
            for w_index, (t0, t1) in enumerate(windows):
                is_last_window = w_index == len(windows) - 1
                if len(pieces) == max_segments - 1 or is_last_window:
                    # Final allowed piece: must run to completion, so it
                    # needs an open-ended window.
                    if is_last_window:
                        pieces.append((t0, t0 + remaining))
                        remaining = 0
                        break
                    if t1 - t0 >= remaining:
                        pieces.append((t0, t0 + remaining))
                        remaining = 0
                        break
                    continue  # window too small for the final piece
                take = min(remaining, t1 - t0)
                if take < MIN_SEGMENT:
                    continue
                pieces.append((t0, t0 + take))
                remaining -= take
                if remaining == 0:
                    break
            if remaining:
                continue  # no feasible piecewise placement on this TAM
            finish = pieces[-1][1]
            if best_finish is None or finish < best_finish:
                best_finish = finish
                best_pieces = pieces
                best_tam = tam
        if best_pieces is None:
            raise ValueError(f"no feasible placement for core {name!r}")
        for index, (t0, t1) in enumerate(best_pieces):
            placed.append(
                Segment(
                    name=name,
                    tam=best_tam,
                    start=t0,
                    end=t1,
                    power=power(name),
                    index=index,
                )
            )
        finished[name] = best_pieces[-1][1]
        pending.discard(name)

    makespan = max((s.end for s in placed), default=0)
    level = 0.0
    peak = 0.0
    for _, delta in _power_level_events(placed):
        level += delta
        peak = max(peak, level)
    return PreemptiveSchedule(
        widths=tuple(widths),
        segments=tuple(placed),
        makespan=makespan,
        peak_power=peak,
    )
